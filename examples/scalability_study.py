#!/usr/bin/env python
"""Scalability study (Figure 6): mesh sizes 6x6 and up.

Measures Hybrid-TDM-VCt's saturation-throughput improvement and energy
saving (at 75% of the packet baseline's capacity) as the mesh grows.
Slot tables scale to 256 entries beyond 64 nodes, as in the paper.

Run:  python examples/scalability_study.py [--sizes 6,8]
      (a 16x16 run is accurate but slow in pure Python)
"""

import argparse

from repro.harness import experiments as E


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="6,8")
    parser.add_argument("--patterns",
                        default="uniform_random,tornado,transpose")
    args = parser.parse_args()
    sizes = tuple(int(s) for s in args.sizes.split(","))
    patterns = tuple(args.patterns.split(","))

    result = E.fig6(sizes=sizes, patterns=patterns)
    print(result.text)
    print()
    print("Paper reference: throughput improvement and energy saving hold")
    print("as the network scales for tornado/transpose; the uniform-random")
    print("benefit is small and becomes negligible at scale because the")
    print("number of communication pairs grows quadratically while slot")
    print("tables stay finite.")


if __name__ == "__main__":
    main()

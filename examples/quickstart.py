#!/usr/bin/env python
"""Quickstart: build a TDM hybrid-switched NoC and watch it work.

Walks through the two levels of the library:

1. the slot-table mechanics of Figure 1, driven directly;
2. a full 6x6 hybrid network (Table I configuration) under transpose
   traffic, showing circuits being set up automatically for frequent
   source-destination pairs and the resulting latency/energy win over
   the packet-switched baseline.

Run:  python examples/quickstart.py
"""

from repro import Simulator, build_network, compute_energy, scheme_config
from repro import table_i_summary
from repro.core.slot_table import RouterSlotState, SlotClock
from repro.harness.report import format_table
from repro.traffic import attach_synthetic_sources, make_pattern


def figure1_walkthrough() -> None:
    """The Figure-1 scenario: three setups against 4-entry slot tables."""
    print("=" * 72)
    print("Figure 1 walkthrough: slot-table state transitions")
    print("=" * 72)
    IN1, IN2, OUT3, OUT4 = 1, 2, 3, 4
    state = RouterSlotState(SlotClock(4), reserve_cap=1.0)

    ok = state.can_reserve(IN1, OUT4, start=3, duration=2)
    print(f"setup1: in_1 -> out_4, slot s3, duration 2 ... "
          f"{'succeed' if ok else 'fail'} (wraps modulo S: reserves s3+s0)")
    state.reserve(IN1, OUT4, 3, 2, conn=1)

    ok = state.can_reserve(IN1, OUT3, start=3, duration=1)
    print(f"setup2: in_1 -> out_3, slot s3 ............. "
          f"{'succeed' if ok else 'fail'} (slot already allocated)")

    ok = state.can_reserve(IN2, OUT4, start=3, duration=1)
    print(f"setup3: in_2 -> out_4, slot s3 ............. "
          f"{'succeed' if ok else 'fail'} (output-port conflict)")

    state.release(IN1, 3, 2, conn=1)
    ok = state.can_reserve(IN2, OUT4, start=3, duration=1)
    print(f"after teardown, setup3 retried ............. "
          f"{'succeed' if ok else 'fail'} (slots reusable)\n")


def run_scheme(scheme: str, rate: float = 0.25, seed: int = 7):
    cfg = scheme_config(scheme)
    sim = Simulator(seed=seed)
    net = build_network(cfg, sim)
    pattern = make_pattern("transpose", net.mesh, sim.rng)
    attach_synthetic_sources(net, pattern, injection_rate=rate,
                             rng=sim.rng)
    sim.run(2000)          # warm up
    net.reset_stats()
    sim.run(6000)          # measure
    return net, compute_energy(net)


def main() -> None:
    figure1_walkthrough()

    print("=" * 72)
    print("Table I router parameters")
    print("=" * 72)
    for key, value in table_i_summary(scheme_config("hybrid_tdm_vc4")):
        print(f"  {key:20s} {value}")
    print()

    print("=" * 72)
    print("Transpose traffic @ 0.25 flits/node/cycle, 6x6 mesh")
    print("=" * 72)
    rows = []
    baseline_energy = None
    for scheme in ("packet_vc4", "hybrid_tdm_vc4", "hybrid_tdm_vct"):
        net, energy = run_scheme(scheme)
        per_msg = energy.total / max(1, net.messages_delivered)
        if baseline_energy is None:
            baseline_energy = per_msg
        cs = net.cs_flit_fraction() if hasattr(net, "cs_flit_fraction") \
            else 0.0
        rows.append((scheme, net.accepted_load(), net.pkt_latency.mean,
                     cs, per_msg / 1000,
                     100 * (1 - per_msg / baseline_energy)))
    print(format_table(
        ("scheme", "accepted", "avg_latency", "cs_frac", "nJ/msg",
         "energy_save_%"), rows))
    print("\nCircuits were set up automatically: frequently communicating")
    print("transpose pairs qualified via the frequency trigger, and their")
    print("cache-line messages ride single-cycle-per-router circuits.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Load-latency and energy sweep over synthetic traffic (Figures 4/5).

Sweeps injection rate for a chosen pattern across the paper's four
schemes and prints the load-latency table plus an ASCII latency plot.

Run:  python examples/synthetic_sweep.py [pattern] [--rates 0.1,0.3,...]
      pattern in {uniform_random, tornado, transpose, ...}
"""

import argparse

from repro.harness.report import format_table
from repro.harness.runner import load_latency_sweep

SCHEMES = ("packet_vc4", "hybrid_sdm_vc4", "hybrid_tdm_vc4",
           "hybrid_tdm_vct")


def ascii_plot(curves, width=60, height=12):
    """Tiny ASCII latency-vs-load plot, one mark per scheme."""
    marks = {"packet_vc4": "P", "hybrid_sdm_vc4": "S",
             "hybrid_tdm_vc4": "T", "hybrid_tdm_vct": "t"}
    points = [(r.accepted, min(r.avg_latency, 200), marks[s])
              for s, runs in curves.items() for r in runs]
    if not points:
        return ""
    xmax = max(p[0] for p in points) or 1
    ymax = max(p[1] for p in points) or 1
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for x, y, m in points:
        col = int(x / xmax * width)
        row = height - int(y / ymax * height)
        grid[row][col] = m
    lines = ["latency"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + "> accepted load")
    lines.append("  marks: P=Packet-VC4  S=Hybrid-SDM  T=Hybrid-TDM "
                 " t=Hybrid-TDM-VCt")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pattern", nargs="?", default="transpose")
    parser.add_argument("--rates", default="0.05,0.15,0.25,0.35,0.45,0.55")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    rates = [float(r) for r in args.rates.split(",")]

    curves = {}
    rows = []
    for scheme in SCHEMES:
        runs = load_latency_sweep(scheme, args.pattern, rates=rates,
                                  seed=args.seed)
        curves[scheme] = runs
        for r in runs:
            rows.append((scheme, r.offered, r.accepted, r.avg_latency,
                         r.p99_latency, r.cs_fraction,
                         r.energy_per_message_pj / 1000))

    print(format_table(
        ("scheme", "offered", "accepted", "avg_lat", "p99_lat",
         "cs_frac", "nJ/msg"), rows,
        title=f"Load-latency sweep: {args.pattern}"))
    print()
    print(ascii_plot(curves))
    print()
    base = max(r.accepted for r in curves["packet_vc4"])
    for scheme in SCHEMES[1:]:
        best = max(r.accepted for r in curves[scheme])
        print(f"saturation throughput vs Packet-VC4: {scheme:18s} "
              f"{100 * (best / base - 1):+.1f}%")


if __name__ == "__main__":
    main()

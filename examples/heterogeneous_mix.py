#!/usr/bin/env python
"""One heterogeneous CPU+GPU workload mix across all network schemes.

Reproduces one column of Figure 8 (plus the Figure-9 style energy
breakdown) for a chosen SPEC-OMP CPU benchmark and GPU kernel on the
36-tile system of Figure 7.

Run:  python examples/heterogeneous_mix.py [CPU] [GPU]
      e.g. python examples/heterogeneous_mix.py ART BLACKSCHOLES
"""

import argparse

from repro.harness.report import format_table
from repro.hetero import CPU_BENCHMARKS, GPU_BENCHMARKS, HeteroSystem

SCHEMES = ("packet_vc4", "hybrid_tdm_vc4", "hybrid_tdm_hop_vc4",
           "hybrid_tdm_hop_vct")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cpu", nargs="?", default="ART",
                        choices=sorted(CPU_BENCHMARKS))
    parser.add_argument("gpu", nargs="?", default="BLACKSCHOLES",
                        choices=sorted(GPU_BENCHMARKS))
    parser.add_argument("--measure", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print(f"Workload mix: CPU={args.cpu} x GPU={args.gpu} "
          f"(Figure 7 system: 8 C / 12 A / 12 L2 / 4 M tiles)\n")

    results = {}
    for scheme in SCHEMES:
        system = HeteroSystem(scheme, args.cpu, args.gpu, seed=args.seed)
        results[scheme] = system.run(warmup=2000, measure=args.measure)

    base = results["packet_vc4"]
    rows = []
    for scheme in SCHEMES:
        r = results[scheme]
        rows.append((
            scheme,
            100 * (1 - r.energy.total / base.energy.total),
            r.cpu_ipc / base.cpu_ipc,
            r.gpu_throughput / base.gpu_throughput,
            r.cs_fraction,
            r.gpu_injection_rate,
            r.avg_pkt_latency,
        ))
    print(format_table(
        ("scheme", "energy_save_%", "cpu_speedup", "gpu_speedup",
         "cs_frac", "gpu_inj", "avg_lat"), rows,
        title="Figure 8 style summary (vs packet_vc4 baseline)"))

    print()
    breakdown_rows = []
    for scheme in ("packet_vc4", "hybrid_tdm_vc4"):
        e = results[scheme].energy
        for comp, dyn, sta in e.as_rows():
            breakdown_rows.append((scheme, comp, dyn / 1000, sta / 1000))
    print(format_table(("scheme", "component", "dynamic_nJ", "static_nJ"),
                       breakdown_rows,
                       title="Figure 9 style energy breakdown"))

    h = results["hybrid_tdm_vc4"].energy
    p = base.energy
    print(f"\nbuffer dynamic saving: "
          f"{100 * (1 - h.dynamic['buffer'] / p.dynamic['buffer']):.1f}% "
          f"(paper average: 51.3%)")
    print(f"CS dynamic overhead:   "
          f"{100 * h.dynamic_fraction('cs'):.2f}% (paper: 0.6%)")
    print(f"CS static overhead:    "
          f"{100 * h.static_fraction('cs'):.2f}% (paper: 2.1%)")


if __name__ == "__main__":
    main()

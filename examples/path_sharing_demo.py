#!/usr/bin/env python
"""Circuit-switched path sharing demonstration (Section III-A).

Builds a hybrid network with hitchhiker- and vicinity-sharing enabled,
establishes one circuit along a mesh row, and shows:

* the Destination Lookup Tables that intermediate nodes populate as the
  setup message passes their routers;
* a hitchhiker message from an intermediate node riding the circuit's
  idle slots;
* a vicinity message to a node adjacent to the circuit's endpoint,
  hopping off through the packet-switched network;
* contention with the circuit owner demoting a hitchhiker to packet
  switching (and the 2-bit failure counter escalating to a dedicated
  setup).

Run:  python examples/path_sharing_demo.py
"""

from repro import Simulator, build_network, scheme_config
from repro.core.circuit import ConnState
from repro.core.decision import always_circuit
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint


class Sink(Endpoint):
    def __init__(self, name):
        super().__init__()
        self.name = name
        self.got = []

    def on_message(self, msg, cycle):
        self.got.append((msg.id, cycle))
        print(f"    [{cycle:5d}] {self.name} received message #{msg.id}")


def main() -> None:
    cfg = scheme_config("hybrid_tdm_hop_vc4")
    sim = Simulator(seed=11)
    net = build_network(cfg, sim)
    for mgr in net.managers:
        mgr.decision_fn = always_circuit()

    src1, hitcher, dest = 0, 2, 5        # bottom row of the 6x6 mesh
    vicinity_dest = 11                   # north neighbour of node 5

    print("Step 1: establish a circuit 0 -> 5 along the bottom row")
    net.managers[src1]._maybe_setup(dest, sim.cycle)
    while True:
        conn = net.managers[src1].connections.get(dest)
        if conn is not None and conn.state is ConnState.ACTIVE:
            break
        sim.step()
    print(f"    circuit #{conn.conn_id} ACTIVE, source slot {conn.slot0}, "
          f"{conn.duration} consecutive slots (4 data + 1 vicinity header)")

    print("\nStep 2: DLTs of the nodes along the path")
    for node in (1, 2, 3, 4):
        entry = net.router(node).dlt.lookup(dest)
        if entry:
            print(f"    node {node}: circuit to {entry.dest} at local "
                  f"slot {entry.slot}, output port {entry.outport}")

    print("\nStep 3: node 2 hitchhikes to destination 5")
    sink = Sink("node 5")
    net.attach_endpoint(dest, sink)
    msg = Message(src=hitcher, dst=dest, mclass=MessageClass.DATA,
                  size_flits=5, create_cycle=sim.cycle)
    net.ni(hitcher).send(msg)
    sim.run(net.clock.active + 80)
    print(f"    hitchhike sends: "
          f"{int(net.ni(hitcher).counters['cs_send_hitchhike'])}")

    print("\nStep 4: vicinity message 0 -> 11 (adjacent to the circuit's "
          "endpoint 5)")
    vsink = Sink("node 11")
    net.attach_endpoint(vicinity_dest, vsink)
    vmsg = Message(src=src1, dst=vicinity_dest, mclass=MessageClass.DATA,
                   size_flits=5, create_cycle=sim.cycle)
    net.ni(src1).send(vmsg)
    sim.run(net.clock.active + 200)
    print(f"    vicinity sends: "
          f"{int(net.ni(src1).counters['cs_send_vicinity'])}, "
          f"hop-offs at node 5: "
          f"{int(net.ni(dest).counters['vicinity_hop_off'])}")

    print("\nStep 5: contention — owner and hitchhiker race for the same "
          "rounds")
    for i in range(8):
        net.ni(src1).send(Message(src=src1, dst=dest,
                                  mclass=MessageClass.DATA, size_flits=5,
                                  create_cycle=sim.cycle))
        net.ni(hitcher).send(Message(src=hitcher, dst=dest,
                                     mclass=MessageClass.DATA,
                                     size_flits=5,
                                     create_cycle=sim.cycle))
        sim.run(net.clock.active)
    sim.run(400)
    fallbacks = int(net.ni(hitcher).counters["cs_fallback"])
    own = net.managers[hitcher].connections.get(dest)
    print(f"    hitchhiker fallbacks to packet switching: {fallbacks}")
    if own is not None:
        print(f"    repeated failures escalated: node {hitcher} now owns "
              f"circuit #{own.conn_id} ({own.state.name})")
    print(f"\nAll messages delivered: node5={len(sink.got)}, "
          f"node11={len(vsink.got)}")


if __name__ == "__main__":
    main()

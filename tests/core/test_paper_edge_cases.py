"""Corner cases the paper's prose pins down exactly.

* slot ids advance +2 per hop **modulo the active wheel**, including
  reservations that wrap the wheel boundary and setups that straddle a
  dynamic table resize (Section II-B/II-C);
* vicinity sharing reserves ``duration + 1`` slots — the extra header
  slot carries the hop-off address (Section III-A2);
* the 2-bit saturating sharing-failure counters escalate to a dedicated
  setup exactly at the threshold (Section III-A1).
"""

from __future__ import annotations

from repro.core.sharing import DestinationLookupTable, SaturatingCounter
from repro.core.slot_table import RouterSlotState, SlotClock
from repro.network.topology import EAST, LOCAL

from tests.conftest import build
from tests.core.test_circuit import setup_connection, walk_circuit


# ---------------------------------------------------------------------------
# +2 (mod S) slot arithmetic at the wheel boundary
# ---------------------------------------------------------------------------
class TestSlotWraparound:
    def test_plus_two_wraps_modulo_active_not_max(self):
        clock = SlotClock(8, active=4)
        # the wheel is the ACTIVE prefix: 3 + 2 wraps to 1, not 5
        assert clock.wrap(3 + 2) == 1
        assert clock.slot(7) == 3

    def test_reservation_wraps_wheel_boundary(self):
        clock = SlotClock(8, active=4)
        st = RouterSlotState(clock)
        st.reserve(LOCAL, EAST, start=3, duration=2, conn=7)
        table = st.in_tables[LOCAL]
        assert [s for s in range(4) if table.valid[s]] == [0, 3]
        # the wrapped slot 0 really is occupied, input- and output-side
        assert not st.can_reserve(LOCAL, EAST, start=0, duration=1)
        assert st.output_reserved(EAST, 0)
        assert st.release(LOCAL, start=3, duration=2, conn=7) == EAST
        assert table.reserved_count(4) == 0

    def test_next_cycle_for_slot_respects_active_wheel(self):
        clock = SlotClock(16, active=4)
        # slot 1, not before cycle 7 (slot 3): next hit is cycle 9
        assert clock.next_cycle_for_slot(1, 7) == 9
        assert clock.slot(9) == 1

    def test_chain_wraps_across_wheel_on_long_path(self):
        """A path long enough that +2/hop exceeds the wheel forces at
        least one wrapped slot id; walk_circuit follows the chain with
        the same modular arithmetic and must reach the destination."""
        sim, net = build("hybrid_tdm_vc4", 6, 6, slot_table_size=8)
        net.clock.active = 8
        conn = setup_connection(sim, net, 0, 35)
        assert conn is not None
        path = walk_circuit(net, 0, conn)
        assert path[-1] == 35
        assert net.mesh.hops(0, 35) * 2 > net.clock.active  # really wrapped

    def test_inflight_setup_dropped_after_table_resize(self):
        """A setup whose generation stamp predates a resize must be
        consumed as stale — its modular arithmetic refers to the old
        wheel — after which the path setup procedure restarts with the
        new generation (the paper: "all slot tables are reset, and the
        path setup procedure restarts")."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        net.managers[0]._maybe_setup(35, sim.cycle)
        sim.run(2)  # the setup is somewhere mid-walk
        net.clock.generation += 1       # dynamic resize: tables reset
        net.clock.active = min(net.clock.max_size, net.clock.active * 2)
        for r in net.routers:
            r.slot_state.reset()
        sim.run(200)
        assert sum(r.counters["setup_stale"] for r in net.routers) >= 1
        # the resilience timeout retried with the new generation stamp:
        # the recovered circuit walks cleanly on the NEW wheel
        from repro.core.circuit import ConnState
        conn = net.managers[0].connections.get(35)
        assert conn is not None and conn.state is ConnState.ACTIVE
        assert walk_circuit(net, 0, conn)[-1] == 35

    def test_stale_teardown_is_a_no_op(self):
        """A teardown stamped with the pre-resize generation walks into
        reset tables; the generation guard must turn it into a no-op
        rather than let it clear someone else's fresh reservation."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 3)
        assert conn is not None
        # resize happens; a new connection is established on the new wheel
        net.clock.generation += 1
        for r in net.routers:
            r.slot_state.reset()
        net.managers[0].reset_all()
        conn2 = setup_connection(sim, net, 0, 3)
        assert conn2 is not None
        before = sum(r.slot_state.reserved_entries() for r in net.routers)
        # the stale teardown for the OLD connection arrives afterwards
        from repro.network.flit import ConfigPayload, ConfigType
        payload = ConfigPayload(ConfigType.TEARDOWN, 0, 3, conn.slot0,
                                conn.duration, conn.conn_id)
        payload.generation = net.clock.generation - 1
        assert net.router(0)._process_teardown(LOCAL, None, payload,
                                               sim.cycle) is None
        after = sum(r.slot_state.reserved_entries() for r in net.routers)
        assert after == before


# ---------------------------------------------------------------------------
# vicinity sharing: duration + 1 header slot
# ---------------------------------------------------------------------------
class TestVicinityHeaderSlot:
    def test_reserve_duration_adds_header_slot(self):
        sim, net = build("hybrid_tdm_hop_vc4", 6, 6)
        mgr = net.managers[0]
        assert net.router(0).cfg.circuit.vicinity
        assert mgr.reserve_duration == net.router(0).cfg.circuit.duration + 1

    def test_vicinity_setup_reserves_duration_plus_one_slots(self):
        sim, net = build("hybrid_tdm_hop_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 3)
        assert conn is not None
        table = net.router(0).slot_state.in_tables[LOCAL]
        reserved = table.reserved_count(net.clock.active)
        assert reserved == net.router(0).cfg.circuit.duration + 1

    def test_plain_tdm_has_no_header_slot(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        assert mgr.reserve_duration == net.router(0).cfg.circuit.duration

    def test_vicinity_packet_carries_header_flit(self):
        sim, net = build("hybrid_tdm_hop_vc4", 6, 6)
        cfg = net.router(0).cfg
        assert cfg.packet_size("cs_vicinity") == cfg.circuit.duration + 1


# ---------------------------------------------------------------------------
# 2-bit saturating sharing-failure counters
# ---------------------------------------------------------------------------
class TestSaturatingCounter:
    def test_escalates_exactly_at_threshold(self):
        c = SaturatingCounter(threshold=2)
        assert not c.up()           # 1: below threshold
        assert c.up()               # 2: trigger
        assert c.triggered

    def test_saturates_at_three(self):
        c = SaturatingCounter(threshold=2)
        for _ in range(10):
            c.up()
        assert c.value == 3
        c.down()
        assert c.value == 2

    def test_down_floors_at_zero(self):
        c = SaturatingCounter(threshold=2)
        c.down()
        assert c.value == 0
        c.up()
        c.down()
        c.down()
        assert c.value == 0

    def test_success_just_below_threshold_averts_escalation(self):
        c = SaturatingCounter(threshold=2)
        c.up()          # 1
        c.down()        # 0 — a success resets the streak partially
        assert not c.up()   # 1 again: still below threshold
        assert not c.triggered

    def test_dlt_escalation_drops_tracking_entry(self):
        dlt = DestinationLookupTable(capacity=4, fail_threshold=2)
        assert not dlt.note_failure(5)
        assert dlt.note_failure(5)          # threshold: dedicated setup
        # counter was dropped: the next failure starts a fresh streak
        assert not dlt.note_failure(5)

    def test_dlt_success_decrements_streak(self):
        dlt = DestinationLookupTable(capacity=4, fail_threshold=2)
        dlt.note_failure(5)
        dlt.note_success(5)
        assert not dlt.note_failure(5)      # 0 -> 1, below threshold

"""ConnectionManager unit tests: triggers, retries, eviction, windows."""

import pytest

from repro.core.circuit import ConnState
from repro.core.decision import always_circuit, never_circuit
from repro.network.flit import ConfigPayload, ConfigType, Message, MessageClass
from repro.network.topology import LOCAL

from tests.conftest import build


def data_msg(src, dst, cycle=0):
    return Message(src=src, dst=dst, mclass=MessageClass.DATA,
                   size_flits=5, create_cycle=cycle)


class TestFrequencyTrigger:
    def test_setup_after_threshold_messages(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        threshold = net.cfg.circuit.setup_msg_threshold
        for i in range(threshold - 1):
            mgr.plan_message(data_msg(0, 9), now=i)
        assert 9 not in mgr.connections
        mgr.plan_message(data_msg(0, 9), now=threshold)
        assert 9 in mgr.connections
        assert mgr.connections[9].state is ConnState.PENDING
        assert mgr.setups_sent == 1

    def test_window_rollover_resets_counts(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        window = net.cfg.circuit.freq_window
        threshold = net.cfg.circuit.setup_msg_threshold
        for i in range(threshold - 1):
            mgr.plan_message(data_msg(0, 9), now=i)
        # next message lands in a fresh window: count restarts at 1
        mgr.plan_message(data_msg(0, 9), now=window + 1)
        assert 9 not in mgr.connections

    def test_ineligible_messages_never_counted(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr.eligible_fn = lambda m: False
        for i in range(50):
            assert mgr.plan_message(data_msg(0, 9), now=i) is None
        assert not mgr.connections

    def test_ctrl_messages_not_eligible_by_default(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        ctrl = Message(src=0, dst=9, mclass=MessageClass.CTRL,
                       size_flits=1, create_cycle=0)
        for i in range(50):
            assert mgr.plan_message(ctrl, now=i) is None
        assert not mgr.connections

    def test_no_setup_to_self(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr._maybe_setup(0, 0)
        assert not mgr.connections


class TestPlanOwn:
    def _mgr_with_active(self, decision=None):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        if decision is not None:
            mgr.decision_fn = decision
        from tests.core.test_circuit import setup_connection
        conn = setup_connection(sim, net, 0, 7)
        assert conn.state is ConnState.ACTIVE
        return sim, net, mgr, conn

    def test_plan_books_next_round(self):
        sim, net, mgr, conn = self._mgr_with_active(always_circuit())
        now = sim.cycle
        plan = mgr.plan_message(data_msg(0, 7), now)
        assert plan is not None and plan.kind == "own"
        assert net.clock.slot(plan.t0) == conn.slot0
        assert conn.next_round_min == plan.t0 + net.clock.active

    def test_consecutive_plans_use_consecutive_rounds(self):
        sim, net, mgr, conn = self._mgr_with_active(always_circuit())
        now = sim.cycle
        p1 = mgr.plan_message(data_msg(0, 7), now)
        p2 = mgr.plan_message(data_msg(0, 7), now)
        assert p2.t0 - p1.t0 == net.clock.active

    def test_decision_rejection_sends_packet_switched(self):
        sim, net, mgr, conn = self._mgr_with_active(never_circuit())
        plan = mgr.plan_message(data_msg(0, 7), sim.cycle)
        assert plan is None
        assert conn.uses == 0

    def test_pending_connection_not_used(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr.decision_fn = always_circuit()
        mgr._maybe_setup(7, 0)  # pending, never acked (no sim steps)
        plan = mgr.plan_message(data_msg(0, 7), now=1)
        assert plan is None


class TestRetriesAndFailure:
    def _fail_payload(self, mgr, conn):
        p = ConfigPayload(ConfigType.ACK_FAIL, mgr.node, conn.dst,
                          conn.slot0, conn.duration, conn.conn_id)
        return p

    def test_ack_fail_triggers_retry_with_new_conn_id(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr._maybe_setup(9, 0)
        conn = mgr.connections[9]
        old_id = conn.conn_id
        mgr._on_ack(self._fail_payload(mgr, conn), cycle=10, success=False)
        assert conn.conn_id != old_id
        assert conn.retries == 1
        assert conn.state is ConnState.PENDING
        assert mgr.setups_sent == 2
        assert mgr.teardowns_sent == 0  # failure teardown is via config

    def test_retries_exhaust_and_connection_dropped(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr._maybe_setup(9, 0)
        for i in range(net.cfg.circuit.max_setup_retries + 1):
            conn = mgr.connections.get(9)
            if conn is None:
                break
            mgr._on_ack(self._fail_payload(mgr, conn), cycle=10 + i,
                        success=False)
        assert 9 not in mgr.connections
        assert mgr.setups_failed == net.cfg.circuit.max_setup_retries + 1

    def test_stale_ack_sends_cleanup_teardown(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        payload = ConfigPayload(ConfigType.ACK_SUCCESS, 0, 9, 5, 4,
                                conn_id=424242)
        before = len(net.ni(0).ps_queue)
        mgr.on_config(payload, cycle=50)
        assert len(net.ni(0).ps_queue) == before + 1  # the teardown

    def test_setup_result_reported_to_size_controller(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        ctl = net.size_controller
        start = ctl._consecutive_failures
        mgr._maybe_setup(9, 0)
        conn = mgr.connections[9]
        mgr._on_ack(self._fail_payload(mgr, conn), cycle=10, success=False)
        assert ctl._consecutive_failures == start + 1


class TestEviction:
    def test_idle_connection_evicted_when_table_crowded(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        from tests.core.test_circuit import setup_connection
        # shrink the wheel so few connections crowd the local table
        net.clock.active = 16
        c1 = setup_connection(sim, net, 0, 1)
        c2 = setup_connection(sim, net, 0, 2)
        assert c1.state is ConnState.ACTIVE
        assert c2.state is ConnState.ACTIVE
        # make c1 ancient, then provoke a new setup
        c1.last_used = -10_000
        mgr._maybe_setup(3, sim.cycle)
        assert 1 not in mgr.connections  # evicted
        assert mgr.teardowns_sent >= 1

    def test_recent_connections_not_evicted(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        from tests.core.test_circuit import setup_connection
        net.clock.active = 16
        c1 = setup_connection(sim, net, 0, 1)
        c1.last_used = sim.cycle
        mgr._maybe_setup(3, sim.cycle)
        assert 1 in mgr.connections


class TestResetAll:
    def test_reset_clears_state(self):
        sim, net = build("hybrid_tdm_hop_vc4", 6, 6)
        mgr = net.managers[0]
        from tests.core.test_circuit import setup_connection
        setup_connection(sim, net, 0, 7)
        mgr.reset_all()
        assert not mgr.connections
        assert not mgr.by_id
        assert len(mgr.dlt) == 0


class TestResizeStaleAck:
    def test_resize_while_setup_in_flight_leaves_no_ghost(self):
        """A table resize drops every connection record; the setup that
        was already in flight must resolve through the stale-ack path
        without resurrecting a connection or leaking reservations."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr._maybe_setup(9, sim.cycle)
        conn = mgr.connections[9]
        stale_id = conn.conn_id
        sim.run(4)                       # SETUP is mid-flight, no ack yet
        assert mgr.connections[9].state is ConnState.PENDING
        ctl = net.size_controller
        net.clock.active = 64            # leave headroom so resize fires
        ctl._resize_pending = True
        old_gen = net.clock.generation
        ctl.control(sim.cycle)
        assert net.clock.generation == old_gen + 1
        assert not mgr.connections       # reset_all dropped the record
        sim.run(300)
        assert 9 not in mgr.connections  # no ghost connection appeared
        assert stale_id not in mgr.by_id
        assert mgr.setups_ok == 0
        active = net.clock.active
        reserved = sum(t.reserved_count(active)
                       for r in net.routers for t in r.slot_state.in_tables)
        assert reserved == 0             # cleanup teardown walked the path


class TestChooseSlot:
    def _fill_all_but(self, net, mgr, free_start):
        table = net.routers[0].slot_state.in_tables[LOCAL]
        active = net.clock.active
        duration = mgr.reserve_duration
        free = {(free_start + i) % active for i in range(duration)}
        for s in range(active):
            if s not in free:
                table.set(s, LOCAL, 999)

    def test_base_protocol_probes_may_give_up(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        assert not mgr.ccfg.resilience_enabled
        net.clock.active = net.clock.max_size   # make probe hits rare
        free_start = net.clock.active - mgr.reserve_duration
        self._fill_all_but(net, mgr, free_start)
        results = [mgr._choose_slot(mgr.reserve_duration)
                   for _ in range(20)]
        assert None in results                  # the 8 probes gave up
        assert set(results) <= {None, free_start}

    def test_resilience_scan_always_finds_the_free_window(self):
        from dataclasses import replace

        from repro.config import scheme_config
        from repro.network.network import build_network
        from repro.sim.kernel import Simulator

        cfg = scheme_config("hybrid_tdm_vc4", width=6, height=6)
        cfg = replace(cfg, circuit=replace(cfg.circuit, setup_timeout=64))
        sim = Simulator(seed=1)
        net = build_network(cfg, sim)
        mgr = net.managers[0]
        net.clock.active = net.clock.max_size
        free_start = net.clock.active - mgr.reserve_duration
        self._fill_all_but(net, mgr, free_start)
        for _ in range(20):
            assert mgr._choose_slot(mgr.reserve_duration) == free_start

"""Hybrid router datapath tests: demux, stealing, priority, orphans."""

from dataclasses import replace

import pytest

from repro.core.circuit import ConnState
from repro.core.decision import always_circuit
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.topology import EAST, LOCAL

from tests.conftest import build
from tests.core.test_circuit import Collector, setup_connection


def active_circuit(sim, net, src, dst):
    mgr = net.managers[src]
    mgr.decision_fn = always_circuit()
    conn = setup_connection(sim, net, src, dst)
    assert conn is not None and conn.state is ConnState.ACTIVE
    return mgr, conn


class TestTimeSlotStealing:
    def _run(self, stealing):
        """Node 0 holds a circuit 0->2 (east chain); node 0 also sends
        heavy PS traffic 0->2 that wants the same east outputs."""
        overrides = {}
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        if not stealing:
            for r in net.routers:
                r.cfg = replace(r.cfg, circuit=replace(
                    r.cfg.circuit, slot_stealing=False))
        mgr, conn = active_circuit(sim, net, 0, 2)
        sink = Collector()
        net.attach_endpoint(2, sink)
        # circuit idle: inject PS messages along the reserved route
        for _ in range(10):
            msg = Message(src=0, dst=2, mclass=MessageClass.DATA,
                          size_flits=5, create_cycle=sim.cycle)
            net.ni(0).enqueue_ps(msg)
        sim.run(600)
        return net, sink

    def test_ps_flits_steal_idle_reserved_slots(self):
        net, sink = self._run(stealing=True)
        assert len(sink.received) == 10
        steals = sum(r.counters["slot_steal"] for r in net.routers)
        assert steals > 0

    def test_without_stealing_reserved_slots_stay_idle(self):
        net, sink = self._run(stealing=False)
        assert len(sink.received) == 10  # still delivered, just slower
        steals = sum(r.counters["slot_steal"] for r in net.routers)
        assert steals == 0

    def test_stealing_improves_latency(self):
        net_on, _ = self._run(stealing=True)
        net_off, _ = self._run(stealing=False)
        assert net_on.pkt_latency.mean <= net_off.pkt_latency.mean


class TestCircuitPriority:
    def test_circuit_flit_blocks_ps_on_same_output(self):
        """When a circuit flit traverses, PS flits must not use that
        output in the same cycle (checked via the cs_out_used path by
        construction); here we verify both kinds still get through."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr, conn = active_circuit(sim, net, 0, 2)
        sink = Collector()
        net.attach_endpoint(2, sink)
        n_msgs = 6
        for _ in range(n_msgs):
            cs_msg = Message(src=0, dst=2, mclass=MessageClass.DATA,
                             size_flits=5, create_cycle=sim.cycle)
            net.ni(0).send(cs_msg)       # circuit-switched (always_circuit)
            ps_msg = Message(src=0, dst=2, mclass=MessageClass.DATA,
                             size_flits=5, create_cycle=sim.cycle)
            net.ni(0).enqueue_ps(ps_msg)  # force packet-switched
            sim.run(80)
        sim.run(400)
        assert len(sink.received) == 2 * n_msgs
        assert net.ni(2).counters["cs_flit_ejected"] == 4 * n_msgs
        assert net.ni(2).counters["ps_flit_ejected"] >= 5 * n_msgs


class TestOrphanHandling:
    def test_orphan_circuit_flit_reaches_destination_via_hop_off(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr, conn = active_circuit(sim, net, 0, 4)
        sink = Collector()
        net.attach_endpoint(4, sink)
        msg = Message(src=0, dst=4, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(0).send(msg)
        # let the first flit depart, then break the path mid-route
        t0 = net.clock.next_cycle_for_slot(conn.slot0, sim.cycle + 1)
        while sim.cycle <= t0 + 1:
            sim.step()
        mid = net.mesh.neighbor(0, EAST)
        net.router(mid).slot_state.reset()
        sim.run(500)
        assert [m.id for m, _ in sink.received] == [msg.id]
        orphans = sum(r.counters["cs_orphan"] for r in net.routers)
        assert orphans >= 1


class TestConfigVA:
    def test_setup_rejected_at_saturated_router_consumes_packet(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        # saturate router 1's east output across all slots
        r1 = net.router(1)
        active = net.clock.active
        st_ = r1.slot_state
        for s in range(0, int(0.9 * active) - 1, 1):
            if st_.can_reserve(LOCAL, EAST, s, 1):
                st_.reserve(LOCAL, EAST, s, 1, conn=9999)
        mgr = net.managers[0]
        mgr._maybe_setup(2, sim.cycle)
        sim.run(300)
        conn = mgr.connections.get(2)
        # the source retried and either gave up or routed around via the
        # adaptive candidates; either way nothing dangles
        if conn is not None:
            assert conn.state in (ConnState.ACTIVE, ConnState.PENDING)
        assert sum(r.counters["setup_rejected"] for r in net.routers) >= 0

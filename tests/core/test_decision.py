"""Switching-decision policy tests (Sections II-A, V-A2)."""

from repro.core.decision import (
    always_circuit,
    estimate_cs_latency,
    estimate_ps_latency,
    never_circuit,
    slack_decision,
    stall_threshold_decision,
)
from repro.network.flit import Message, MessageClass


def msg(slack=None):
    m = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=5,
                create_cycle=0)
    if slack is not None:
        m.meta["slack"] = slack
    return m


class TestStallThreshold:
    def test_accepts_short_wait_when_circuit_faster(self):
        d = stall_threshold_decision(16)
        assert d(msg(), wait=4, cs_lat=15, ps_lat=20)

    def test_rejects_long_wait(self):
        d = stall_threshold_decision(16)
        assert not d(msg(), wait=17, cs_lat=15, ps_lat=100)

    def test_rejects_when_packet_faster(self):
        d = stall_threshold_decision(16)
        assert not d(msg(), wait=4, cs_lat=30, ps_lat=20)

    def test_boundary_wait_accepted(self):
        d = stall_threshold_decision(16)
        assert d(msg(), wait=16, cs_lat=10, ps_lat=10)


class TestSlackDecision:
    def test_circuit_faster_always_accepted(self):
        d = slack_decision()
        assert d(msg(slack=0), wait=0, cs_lat=10, ps_lat=12)

    def test_slack_covers_penalty(self):
        d = slack_decision()
        assert d(msg(slack=5), wait=0, cs_lat=15, ps_lat=12)

    def test_slack_insufficient(self):
        d = slack_decision()
        assert not d(msg(slack=2), wait=0, cs_lat=15, ps_lat=12)

    def test_default_slack_used_when_unset(self):
        d = slack_decision(default_slack=100)
        assert d(msg(), wait=0, cs_lat=50, ps_lat=12)


class TestTrivialPolicies:
    def test_always(self):
        assert always_circuit()(msg(), 999, 999, 0)

    def test_never(self):
        assert not never_circuit()(msg(), 0, 0, 999)


class TestLatencyEstimates:
    def test_ps_estimate_matches_measured_zero_load(self):
        """The measured 1-flit/1-hop latency in the simulator is 9 cycles
        (see test_router); the estimate counts the router portion (8) --
        it excludes the 1-cycle NI injection link."""
        assert estimate_ps_latency(hops=1, pipeline_latency=2, size=1) == 8

    def test_cs_estimate(self):
        # 1 hop => 2 routers x 2 cycles + wait + serialisation
        assert estimate_cs_latency(hops=1, wait=5, size=4) == 5 + 4 + 3

    def test_cs_beats_ps_for_data_at_zero_wait(self):
        h = 3
        cs = estimate_cs_latency(h, wait=0, size=4)
        ps = estimate_ps_latency(h, pipeline_latency=2, size=5)
        assert cs < ps

"""Aggressive VC power gating tests (Section III-B)."""

import pytest

from repro.config import VCGatingConfig
from repro.core.vc_gating import VCGatingController

from tests.conftest import build, run_traffic


class FakeRouter:
    """Minimal router stand-in for controller unit tests."""

    class RCfg:
        num_vcs = 4

    rcfg = RCfg()

    def __init__(self):
        self.active_vcs = 4
        self.powered_vcs = 4
        self._util = 0.0
        self._drainable = True
        self.power_log = []

    def pop_utilisation(self):
        return self._util

    def vc_drainable(self, index):
        return self._drainable

    def set_powered_vcs(self, n, cycle):
        self.powered_vcs = n
        self.power_log.append((cycle, n))


def make(util=0.0, min_vcs=2, epoch=10):
    cfg = VCGatingConfig(enabled=True, epoch=epoch, threshold_high=0.55,
                         threshold_low=0.20, min_vcs=min_vcs)
    r = FakeRouter()
    r._util = util
    return r, VCGatingController(r, cfg)


class TestControllerUnit:
    def test_low_utilisation_deactivates_one_set(self):
        r, ctl = make(util=0.05)
        ctl.tick(10)
        assert r.active_vcs == 3
        assert ctl.draining_vc == 3
        # drain completes on a later tick
        ctl.tick(11)
        assert r.powered_vcs == 3
        assert ctl.deactivations == 1

    def test_high_utilisation_activates_one_set(self):
        r, ctl = make(util=0.9)
        r.active_vcs = 2
        r.powered_vcs = 2
        ctl.tick(10)
        assert r.active_vcs == 3
        assert r.powered_vcs == 3
        assert ctl.activations == 1

    def test_never_below_min_vcs(self):
        r, ctl = make(util=0.0, min_vcs=2, epoch=5)
        for t in range(5, 200, 5):
            ctl.tick(t)
        assert r.active_vcs == 2

    def test_never_above_max_vcs(self):
        r, ctl = make(util=1.0, epoch=5)
        for t in range(5, 200, 5):
            ctl.tick(t)
        assert r.active_vcs == 4

    def test_drain_waits_for_evacuation(self):
        """The VC must be evacuated before it is power-gated."""
        r, ctl = make(util=0.05)
        r._drainable = False
        ctl.tick(10)
        assert r.active_vcs == 3       # advertised immediately
        ctl.tick(11)
        assert r.powered_vcs == 4      # still powered: not drained
        r._drainable = True
        ctl.tick(12)
        assert r.powered_vcs == 3

    def test_reactivation_cancels_drain(self):
        r, ctl = make(util=0.05, epoch=10)
        r._drainable = False
        ctl.tick(10)                   # start draining VC 3
        r._util = 0.9
        ctl.tick(20)                   # traffic spike: reactivate
        assert r.active_vcs == 4
        assert r.powered_vcs == 4
        assert ctl.draining_vc == -1

    def test_epoch_pacing(self):
        r, ctl = make(util=0.0, epoch=100)
        ctl.tick(50)
        assert r.active_vcs == 4       # epoch not reached
        ctl.tick(100)
        assert r.active_vcs == 3


class TestGatingInNetwork:
    def test_idle_network_gates_down_to_min(self):
        sim, net = build("hybrid_tdm_vct")
        sim.run(3000)
        min_vcs = net.cfg.vc_gating.min_vcs
        assert all(r.active_vcs == min_vcs for r in net.routers)
        assert all(r.powered_vcs == min_vcs for r in net.routers)

    def test_heavy_load_keeps_vcs_active(self):
        sim, net, _ = run_traffic("hybrid_tdm_vct", "uniform_random", 0.6,
                                  warmup=1500, measure=1500)
        # at saturation most routers should have re-activated VCs
        avg_active = sum(r.active_vcs for r in net.routers) / len(net.routers)
        assert avg_active > net.cfg.vc_gating.min_vcs

    def test_gating_reduces_powered_vc_integral(self):
        _, idle_net = build("hybrid_tdm_vct")
        sim_idle = idle_net  # unpack properly below
        sim, net = build("hybrid_tdm_vct")
        simb, netb = build("hybrid_tdm_vc4")
        sim.run(3000)
        simb.run(3000)
        gated = sum(r.vc_power_integral.finalize(3000) for r in net.routers)
        ungated = sum(r.vc_power_integral.finalize(3000)
                      for r in netb.routers)
        assert gated < ungated

    def test_upstream_respects_downstream_active_vcs(self):
        sim, net = build("hybrid_tdm_vct")
        sim.run(3000)  # everyone gated to min
        r0 = net.router(0)
        from repro.network.topology import EAST
        assert r0._downstream_active_vcs(EAST) == net.cfg.vc_gating.min_vcs

    def test_traffic_still_flows_with_gating(self):
        sim, net, sources = run_traffic("hybrid_tdm_vct", "transpose", 0.2,
                                        warmup=1000, measure=2000)
        assert net.messages_delivered > 0
        assert net.pkt_latency.mean > 0

"""End-to-end circuit path configuration protocol tests (Section II-B).

These drive the real network: setup/teardown/ack messages travel the
packet-switched escape VC through actual routers and reserve real slot
table entries.
"""

import pytest

from repro.core.circuit import ConnState
from repro.core.decision import always_circuit
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.topology import LOCAL

from tests.conftest import build


class Collector(Endpoint):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg, cycle):
        self.received.append((msg, cycle))


def setup_connection(sim, net, src, dst, max_cycles=200):
    """Issue a setup from src to dst and run until it resolves."""
    mgr = net.managers[src]
    mgr._maybe_setup(dst, sim.cycle)
    for _ in range(max_cycles):
        conn = mgr.connections.get(dst)
        if conn is not None and conn.state is ConnState.ACTIVE:
            return conn
        sim.step()
    return mgr.connections.get(dst)


def walk_circuit(net, src, conn):
    """Follow a connection's reservations hop by hop; returns the node
    list ending at the destination."""
    clock = net.clock
    node, inport, slot = src, LOCAL, conn.slot0
    path = [src]
    for _ in range(net.mesh.num_nodes + 1):
        hit = net.router(node).slot_state.lookup_in(inport, clock.wrap(slot))
        assert hit is not None, f"chain broken at node {node}"
        outport, owner = hit
        assert owner == conn.conn_id
        if outport == LOCAL:
            return path
        nxt = net.mesh.neighbor(node, outport)
        from repro.network.topology import opposite_port
        node, inport, slot = nxt, opposite_port(outport), slot + 2
        path.append(node)
    raise AssertionError("circuit chain does not terminate")


class TestSetupProtocol:
    def test_setup_registers_active_connection(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 35)
        assert conn is not None
        assert conn.state is ConnState.ACTIVE
        assert net.managers[0].setups_ok == 1

    def test_reservation_chain_reaches_destination(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 35)
        path = walk_circuit(net, 0, conn)
        assert path[-1] == 35
        assert len(path) == net.mesh.hops(0, 35) + 1  # minimal route

    def test_slot_ids_increment_by_two_per_hop(self):
        """The chain in walk_circuit advances slots by +2 because the
        circuit pipeline is two-stage (Section II-B); reaching the
        destination proves every router honoured it."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 7)
        walk_circuit(net, 0, conn)  # asserts internally

    def test_duration_slots_reserved(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 3)
        table = net.router(0).slot_state.in_tables[LOCAL]
        active = net.clock.active
        reserved = [s for s in range(active) if table.valid[s]]
        assert len(reserved) == conn.duration == 4

    def test_teardown_clears_whole_path(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        conn = setup_connection(sim, net, 0, 35)
        mgr = net.managers[0]
        mgr.teardown(conn, sim.cycle)
        sim.run(150)
        for r in net.routers:
            assert r.slot_state.reserved_entries() == 0

    def test_config_traffic_is_single_flit_packets(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        setup_connection(sim, net, 0, 15)
        # setup + ack crossed the network: some config flits ejected
        total_cfg = sum(ni.counters["ps_flit_ejected"]
                        for ni in net.interfaces)
        assert total_cfg >= 2


class TestSetupConflicts:
    def test_conflicting_setup_retries_and_lands_elsewhere(self):
        """Two sources racing for the same output slots: both must end
        ACTIVE (retry with a different slot id, Section II-B)."""
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        c1 = setup_connection(sim, net, 0, 3)
        c2 = setup_connection(sim, net, 4, 3)
        assert c1 is not None and c1.state is ConnState.ACTIVE
        assert c2 is not None and c2.state is ConnState.ACTIVE
        # both chains must be intact simultaneously
        walk_circuit(net, 0, c1)
        walk_circuit(net, 4, c2)

    def test_failed_setup_sends_nack_and_cleans_partials(self):
        """Saturate a router's tables so a setup must fail."""
        sim, net = build("hybrid_tdm_vc4", 6, 6, slot_table_size=8)
        # active wheel == 8 with no dynamic room: cap 0.9*8=7 slots,
        # one 4-slot connection fits, a second cannot
        net.clock.active = 8
        c1 = setup_connection(sim, net, 0, 1)
        assert c1.state is ConnState.ACTIVE
        mgr = net.managers[0]
        mgr._maybe_setup(2, sim.cycle)  # shares the first-hop link 0->1
        sim.run(400)
        # either it failed at the source local table (choose_slot) or
        # via NACK; in both cases no dangling PENDING reservation leaks
        conn2 = mgr.connections.get(2)
        if conn2 is not None and conn2.state is ConnState.ACTIVE:
            walk_circuit(net, 0, conn2)  # fine: it found room
        else:
            # no partial reservations left behind anywhere
            for r in net.routers:
                for t in r.slot_state.in_tables:
                    for s in range(net.clock.active):
                        if t.valid[s]:
                            assert t.conn[s] in {c.conn_id for m in
                                                 net.managers for c in
                                                 m.by_id.values()}


class TestCircuitTransmission:
    def _active_net(self):
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr.decision_fn = always_circuit()
        sink = Collector()
        net.attach_endpoint(7, sink)
        conn = setup_connection(sim, net, 0, 7)
        assert conn.state is ConnState.ACTIVE
        return sim, net, mgr, sink

    def test_circuit_message_delivered_as_circuit_flits(self):
        sim, net, mgr, sink = self._active_net()
        msg = Message(src=0, dst=7, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(net.clock.active + 60)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(7).counters["cs_flit_ejected"] == 4  # 4-flit CS data
        assert mgr.cs_messages == 1

    def test_circuit_packet_is_4_flits_not_5(self):
        sim, net, mgr, sink = self._active_net()
        before = net.flits_ejected
        net.reset_stats()
        msg = Message(src=0, dst=7, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(net.clock.active + 60)
        assert net.flits_ejected == 4

    def test_circuit_hop_latency_is_2_cycles(self):
        """From entering the source router to ejection: 2 cycles per
        router plus the final ejection link."""
        sim, net, mgr, sink = self._active_net()
        conn = mgr.connections[7]
        msg = Message(src=0, dst=7, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(net.clock.active + 60)
        _, cycle = sink.received[0]
        hops = net.mesh.hops(0, 7)
        t0 = net.clock.next_cycle_for_slot(conn.slot0, msg.create_cycle + 1)
        # last flit enters the source router at t0+3, advances one router
        # every 2 cycles (Section II-D: T -> T+2), and the destination
        # router's traversal feeds the 2-cycle ejection link
        expected = t0 + 3 + 2 * hops + 2
        assert cycle == expected

    def test_repeated_use_same_connection(self):
        sim, net, mgr, sink = self._active_net()
        for _ in range(5):
            msg = Message(src=0, dst=7, mclass=MessageClass.DATA,
                          size_flits=5, create_cycle=sim.cycle)
            net.ni(0).send(msg)
            sim.run(net.clock.active + 40)
        assert len(sink.received) == 5
        assert mgr.connections[7].uses == 5

    def test_stale_connection_falls_back_to_packet(self):
        """Tear the path down behind the manager's back: the scheduled
        circuit flits must fall back and still be delivered."""
        sim, net, mgr, sink = self._active_net()
        conn = mgr.connections[7]
        msg = Message(src=0, dst=7, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(0).send(msg)
        # invalidate the local reservation before the first flit departs
        net.router(0).slot_state.release(LOCAL, conn.slot0, conn.duration,
                                         conn.conn_id)
        sim.run(300)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(0).counters["cs_fallback"] >= 1

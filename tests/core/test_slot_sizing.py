"""Dynamic time-division granularity tests (Section II-C)."""

import pytest

from repro.config import SlotTableConfig
from repro.core.slot_sizing import SlotSizeController
from repro.core.slot_table import SlotClock

from tests.conftest import build, run_traffic


class FakeRouter:
    def __init__(self):
        self.resets = 0
        self.dlt = None

    @property
    def slot_state(self):
        outer = self

        class _S:
            def reset(self):
                outer.resets += 1

        return _S()


class FakeManager:
    def __init__(self):
        self.resets = 0

    def reset_all(self):
        self.resets += 1


def make(threshold=4, size=64, active=16, dynamic=True):
    cfg = SlotTableConfig(size=size, dynamic_sizing=dynamic,
                          initial_active=active,
                          resize_fail_threshold=threshold)
    clock = SlotClock(size, active=active)
    routers = [FakeRouter() for _ in range(4)]
    managers = [FakeManager() for _ in range(4)]
    return clock, SlotSizeController(clock, cfg, routers, managers), \
        routers, managers


class TestController:
    def test_doubles_after_consecutive_failures(self):
        clock, ctl, routers, managers = make(threshold=3)
        for _ in range(3):
            ctl.note_setup_result(False)
        ctl.control(cycle=100)
        assert clock.active == 32
        assert ctl.resizes == 1
        assert all(r.resets == 1 for r in routers)
        assert all(m.resets == 1 for m in managers)

    def test_success_resets_failure_streak(self):
        clock, ctl, *_ = make(threshold=3)
        ctl.note_setup_result(False)
        ctl.note_setup_result(False)
        ctl.note_setup_result(True)
        ctl.note_setup_result(False)
        ctl.control(100)
        assert clock.active == 16

    def test_capped_at_max_size(self):
        clock, ctl, *_ = make(threshold=1, size=32, active=32)
        ctl.note_setup_result(False)
        ctl.control(100)
        assert clock.active == 32
        assert ctl.resizes == 0

    def test_disabled_when_static(self):
        clock, ctl, *_ = make(threshold=1, dynamic=False)
        for _ in range(10):
            ctl.note_setup_result(False)
        ctl.control(100)
        assert clock.active == 16

    def test_entries_integral_tracks_growth(self):
        clock, ctl, *_ = make(threshold=1)
        ctl.note_setup_result(False)
        ctl.control(100)           # 16 entries for 100 cycles, then 32
        assert ctl.entries_integral.finalize(200) == 16 * 100 + 32 * 100

    def test_reset_integral(self):
        clock, ctl, *_ = make()
        ctl.entries_integral.finalize(50)
        ctl.reset_integral(50)
        assert ctl.entries_integral.finalize(60) == 16 * 10


class TestInNetwork:
    def test_wheel_grows_under_uniform_random_pressure(self):
        """UR forms many pairs; the wheel must grow beyond its initial
        size (the paper's explanation for UR's large tables)."""
        sim, net, _ = run_traffic("hybrid_tdm_vc4", "uniform_random", 0.5,
                                  width=6, height=6, warmup=3000,
                                  measure=3000)
        assert net.clock.active > net.cfg.slot_table.initial_active

    def test_wheel_stays_small_for_tornado(self):
        sim, net, _ = run_traffic("hybrid_tdm_vc4", "tornado", 0.3,
                                  width=6, height=6, warmup=2000,
                                  measure=2000)
        assert net.clock.active == net.cfg.slot_table.initial_active

    def test_resize_drops_connections_but_traffic_survives(self):
        sim, net, sources = run_traffic("hybrid_tdm_vc4", "uniform_random",
                                        0.5, width=6, height=6,
                                        warmup=3000, measure=2000)
        assert net.messages_delivered > 0
        # quiesce so in-flight teardown/ack config messages settle
        for src in sources:
            src.msg_prob = 0.0
        sim.run(2500)
        if net.size_controller.resizes:
            # any reservations present must belong to live connections
            live = {c.conn_id for m in net.managers
                    for c in m.by_id.values()}
            for r in net.routers:
                for t in r.slot_state.in_tables:
                    for s in range(net.clock.active):
                        if t.valid[s]:
                            assert t.conn[s] in live

"""Slot-table tests, including the exact Figure-1 scenario."""

import pytest
from hypothesis import given, strategies as st

from repro.core.slot_table import RouterSlotState, SlotClock, SlotTable
from repro.network.topology import NUM_PORTS


class TestSlotClock:
    def test_slot_wraps_modulo_active(self):
        clock = SlotClock(128, active=16)
        assert clock.slot(0) == 0
        assert clock.slot(17) == 1

    def test_next_cycle_for_slot(self):
        clock = SlotClock(128, active=8)
        assert clock.next_cycle_for_slot(3, not_before=0) == 3
        assert clock.next_cycle_for_slot(3, not_before=4) == 11
        assert clock.next_cycle_for_slot(3, not_before=11) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotClock(1)
        with pytest.raises(ValueError):
            SlotClock(16, active=32)

    @given(st.integers(2, 128), st.integers(0, 1000), st.integers(0, 127))
    def test_next_cycle_properties(self, active, not_before, slot):
        clock = SlotClock(128, active=active)
        t = clock.next_cycle_for_slot(slot, not_before)
        assert t >= not_before
        assert clock.slot(t) == clock.wrap(slot)
        assert t - not_before < active


class TestFigure1:
    """Figure 1: slot-table state transitions of one router responding
    to three setup messages (4-entry tables, two input ports in_1/in_2,
    output out_4 and out_3)."""

    IN1, IN2 = 1, 2
    OUT3, OUT4 = 3, 4

    def make_state(self):
        clock = SlotClock(4)  # s0..s3
        return RouterSlotState(clock, reserve_cap=1.0)

    def test_setup1_succeeds_with_modulo_wrap(self):
        """setup1: in_1 -> out_4, slot s3, duration 2 => s3 and s0."""
        st_ = self.make_state()
        assert st_.can_reserve(self.IN1, self.OUT4, start=3, duration=2)
        st_.reserve(self.IN1, self.OUT4, start=3, duration=2, conn=1)
        t = st_.in_tables[self.IN1]
        assert t.valid[3] and t.valid[0]
        assert not t.valid[1] and not t.valid[2]
        assert t.outport[3] == self.OUT4 and t.outport[0] == self.OUT4

    def test_setup2_fails_input_slot_taken(self):
        """setup2: in_1 -> out_3 at s3 fails; the slot is already
        allocated at input port in_1."""
        st_ = self.make_state()
        st_.reserve(self.IN1, self.OUT4, 3, 2, conn=1)
        assert not st_.can_reserve(self.IN1, self.OUT3, start=3, duration=1)
        # tables unchanged
        assert st_.in_tables[self.IN1].outport[3] == self.OUT4

    def test_setup3_fails_output_conflict(self):
        """setup3: in_2 -> out_4 at s3 fails; out_4 is reserved for in_1
        at slot s3 (conflict at the output port)."""
        st_ = self.make_state()
        st_.reserve(self.IN1, self.OUT4, 3, 2, conn=1)
        assert st_.in_tables[self.IN2].reserved_count(4) == 0
        assert not st_.can_reserve(self.IN2, self.OUT4, start=3, duration=1)

    def test_setup3_would_succeed_on_other_slot(self):
        st_ = self.make_state()
        st_.reserve(self.IN1, self.OUT4, 3, 2, conn=1)
        assert st_.can_reserve(self.IN2, self.OUT4, start=1, duration=1)

    def test_teardown_frees_slots_for_reuse(self):
        st_ = self.make_state()
        st_.reserve(self.IN1, self.OUT4, 3, 2, conn=1)
        out = st_.release(self.IN1, 3, 2, conn=1)
        assert out == self.OUT4
        assert st_.can_reserve(self.IN2, self.OUT4, start=3, duration=1)


class TestRouterSlotState:
    def test_release_wrong_conn_is_noop(self):
        clock = SlotClock(8)
        st_ = RouterSlotState(clock)
        st_.reserve(1, 2, 0, 4, conn=7)
        assert st_.release(1, 0, 4, conn=99) is None
        assert st_.in_tables[1].valid[0]

    def test_reserve_requires_can_reserve(self):
        clock = SlotClock(8)
        st_ = RouterSlotState(clock)
        st_.reserve(1, 2, 0, 4, conn=1)
        with pytest.raises(ValueError):
            st_.reserve(1, 3, 0, 1, conn=2)

    def test_cap_prevents_starvation(self):
        """Section II-B: allocation prohibited beyond 90% of entries."""
        clock = SlotClock(16)
        st_ = RouterSlotState(clock, reserve_cap=0.5)
        st_.reserve(1, 2, 0, 8, conn=1)   # exactly at the 50% cap
        assert not st_.can_reserve(1, 3, 8, 1)

    def test_lookup_in(self):
        clock = SlotClock(8)
        st_ = RouterSlotState(clock)
        st_.reserve(0, 4, 2, 1, conn=3)
        assert st_.lookup_in(0, 2) == (4, 3)
        assert st_.lookup_in(0, 3) is None

    def test_output_reserved(self):
        clock = SlotClock(8)
        st_ = RouterSlotState(clock)
        st_.reserve(0, 4, 2, 2, conn=3)
        assert st_.output_reserved(4, 2)
        assert st_.output_reserved(4, 3)
        assert not st_.output_reserved(4, 4)
        assert not st_.output_reserved(3, 2)

    def test_reset_clears_everything(self):
        clock = SlotClock(8)
        st_ = RouterSlotState(clock)
        st_.reserve(0, 4, 0, 4, conn=1)
        st_.reset()
        assert st_.reserved_entries() == 0
        assert not st_.output_reserved(4, 0)

    @given(st.data())
    def test_in_out_tables_stay_consistent(self, data):
        """out_owner[out][slot] == inport iff in_tables[inport][slot]
        routes to out, under random reserve/release sequences."""
        clock = SlotClock(16)
        st_ = RouterSlotState(clock, reserve_cap=1.0)
        live = {}
        for _ in range(data.draw(st.integers(1, 25))):
            if live and data.draw(st.booleans()):
                conn, (inport, start, dur) = data.draw(
                    st.sampled_from(sorted(live.items())))
                st_.release(inport, start, dur, conn)
                del live[conn]
            else:
                inport = data.draw(st.integers(0, NUM_PORTS - 1))
                outport = data.draw(st.integers(0, NUM_PORTS - 1))
                start = data.draw(st.integers(0, 15))
                dur = data.draw(st.integers(1, 4))
                conn = len(live) + 1000 + data.draw(st.integers(0, 10**6))
                if st_.can_reserve(inport, outport, start, dur) \
                        and conn not in live:
                    st_.reserve(inport, outport, start, dur, conn)
                    live[conn] = (inport, start, dur)
            # invariant check
            for out in range(NUM_PORTS):
                for slot in range(16):
                    owner = st_.out_owner[out][slot]
                    if owner != -1:
                        hit = st_.lookup_in(owner, slot)
                        assert hit is not None and hit[0] == out
            total = sum(t.reserved_count(16) for t in st_.in_tables)
            owned = sum(1 for out in range(NUM_PORTS) for s in range(16)
                        if st_.out_owner[out][s] != -1)
            assert total == owned


class TestSlotTable:
    def test_set_clear_lookup(self):
        t = SlotTable(8)
        t.set(3, outport=2, conn=5)
        assert t.lookup(3) == (2, 5)
        t.clear(3)
        assert t.lookup(3) is None

    def test_reserved_count_respects_active_window(self):
        t = SlotTable(8)
        t.set(1, 0, 1)
        t.set(6, 0, 2)
        assert t.reserved_count(8) == 2
        assert t.reserved_count(4) == 1

"""End-to-end hitchhiker- and vicinity-sharing tests (Section III-A)."""

import pytest

from repro.core.circuit import ConnState
from repro.core.decision import always_circuit
from repro.network.flit import Message, MessageClass

from tests.conftest import build
from tests.core.test_circuit import Collector, setup_connection, walk_circuit


def hop_net(**kw):
    sim, net = build("hybrid_tdm_hop_vc4", 6, 6, **kw)
    return sim, net


class TestDLTPopulation:
    def test_intermediate_nodes_learn_passing_circuits(self):
        sim, net = hop_net()
        conn = setup_connection(sim, net, 0, 5)  # straight east row
        path = walk_circuit(net, 0, conn)
        intermediates = path[1:-1]
        assert intermediates
        for node in intermediates:
            entry = net.router(node).dlt.lookup(5)
            assert entry is not None
            assert entry.conn == conn.conn_id
            assert entry.dest == 5

    def test_source_and_destination_not_required_in_dlt(self):
        sim, net = hop_net()
        conn = setup_connection(sim, net, 0, 5)
        assert net.router(0).dlt.lookup(5) is None  # source knows anyway

    def test_teardown_removes_dlt_entries(self):
        sim, net = hop_net()
        conn = setup_connection(sim, net, 0, 5)
        path = walk_circuit(net, 0, conn)
        net.managers[0].teardown(conn, sim.cycle)
        sim.run(150)
        for node in path[1:-1]:
            assert net.router(node).dlt.lookup(5) is None

    def test_vicinity_reservations_are_5_slots(self):
        """With vicinity sharing on, one extra header slot is reserved."""
        sim, net = hop_net()
        conn = setup_connection(sim, net, 0, 5)
        assert conn.duration == 5
        from repro.network.topology import LOCAL
        table = net.router(0).slot_state.in_tables[LOCAL]
        reserved = sum(table.valid[s] for s in range(net.clock.active))
        assert reserved == 5


class TestHitchhiker:
    def _net_with_circuit(self):
        sim, net = hop_net()
        # circuit 0 -> 5 along the bottom row; node 2 sits on the path
        for m in net.managers:
            m.decision_fn = always_circuit()
        conn = setup_connection(sim, net, 0, 5)
        walk_circuit(net, 0, conn)
        sink = Collector()
        net.attach_endpoint(5, sink)
        return sim, net, conn, sink

    def test_intermediate_node_rides_the_circuit(self):
        sim, net, conn, sink = self._net_with_circuit()
        msg = Message(src=2, dst=5, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=sim.cycle)
        net.ni(2).send(msg)
        sim.run(net.clock.active + 80)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(2).counters["cs_send_hitchhike"] == 1
        assert net.ni(5).counters["cs_flit_ejected"] >= 4

    def test_hitchhiker_loses_to_owner_and_falls_back(self):
        sim, net, conn, sink = self._net_with_circuit()
        # owner and hitchhiker aim for the same round
        owner_msg = Message(src=0, dst=5, mclass=MessageClass.DATA,
                            size_flits=5, create_cycle=sim.cycle)
        net.ni(0).send(owner_msg)
        hitch_msg = Message(src=2, dst=5, mclass=MessageClass.DATA,
                            size_flits=5, create_cycle=sim.cycle)
        net.ni(2).send(hitch_msg)
        sim.run(net.clock.active * 3 + 200)
        got = sorted(m.id for m, _ in sink.received)
        assert got == sorted([owner_msg.id, hitch_msg.id])

    def test_repeated_hitchhike_failures_escalate_to_setup(self):
        sim, net, conn, sink = self._net_with_circuit()
        mgr2 = net.managers[2]
        # keep colliding: the owner books every round
        for _ in range(12):
            net.ni(0).send(Message(src=0, dst=5, mclass=MessageClass.DATA,
                                   size_flits=5, create_cycle=sim.cycle))
            net.ni(2).send(Message(src=2, dst=5, mclass=MessageClass.DATA,
                                   size_flits=5, create_cycle=sim.cycle))
            sim.run(net.clock.active)
        sim.run(400)
        # node 2 should eventually own a dedicated circuit to 5
        conn2 = mgr2.connections.get(5)
        fallbacks = net.ni(2).counters["cs_fallback"]
        assert conn2 is not None or fallbacks == 0


class TestVicinity:
    def test_message_to_adjacent_destination_uses_circuit(self):
        sim, net = hop_net()
        for m in net.managers:
            m.decision_fn = always_circuit()
        conn = setup_connection(sim, net, 0, 4)
        sink = Collector()
        dest2 = 10  # node adjacent to 4 (north neighbour in 6x6)
        assert net.mesh.are_adjacent(4, dest2)
        net.attach_endpoint(dest2, sink)
        msg = Message(src=0, dst=dest2, mclass=MessageClass.DATA,
                      size_flits=5, create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(net.clock.active + 300)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(0).counters["cs_send_vicinity"] == 1
        assert net.ni(4).counters["vicinity_hop_off"] == 1

    def test_non_adjacent_destination_not_shared(self):
        sim, net = hop_net()
        for m in net.managers:
            m.decision_fn = always_circuit()
        setup_connection(sim, net, 0, 4)
        sink = Collector()
        net.attach_endpoint(20, sink)  # far from node 4
        msg = Message(src=0, dst=20, mclass=MessageClass.DATA,
                      size_flits=5, create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(300)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(0).counters["cs_send_vicinity"] == 0

"""Tests for the paper's future-work extensions.

* FeedbackDecision — performance-monitor-driven switching (Section
  V-B2: "accurate performance monitors can be referred in order to
  avoid performance penalty").
* queue-delay VC gating metric (Section V-B4: "activating and
  deactivating VCs based on more accurate metrics, for example, packet
  latency").
"""

from dataclasses import replace

import pytest

from repro.config import VCGatingConfig, scheme_config
from repro.core.decision import FeedbackDecision
from repro.core.hybrid_network import build_hybrid_network
from repro.network.flit import Message, MessageClass
from repro.sim.kernel import Simulator

from tests.conftest import build, run_traffic


def msg(slack=0):
    m = Message(src=0, dst=5, mclass=MessageClass.DATA, size_flits=5,
                create_cycle=0)
    m.meta["slack"] = slack
    return m


class FakeNI:
    def __init__(self, ps=0.0, cs=0.0):
        self.ps_latency_ewma = ps
        self.cs_latency_ewma = cs


class TestFeedbackDecision:
    def test_unbound_uses_estimates(self):
        d = FeedbackDecision()
        assert d(msg(), wait=0, cs_lat=10, ps_lat=20)
        assert not d(msg(), wait=0, cs_lat=30, ps_lat=20)

    def test_observed_cs_latency_overrides_estimate(self):
        d = FeedbackDecision().bind(FakeNI(ps=20.0, cs=25.0))
        # estimate says circuit is cheap, observation says it is not
        assert not d(msg(), wait=0, cs_lat=10, ps_lat=20)

    def test_observed_ps_latency_raises_packet_cost(self):
        d = FeedbackDecision().bind(FakeNI(ps=100.0, cs=12.0))
        assert d(msg(), wait=40, cs_lat=999, ps_lat=20)

    def test_slack_and_margin(self):
        d = FeedbackDecision(margin=5).bind(FakeNI(ps=10.0, cs=12.0))
        assert d(msg(slack=0), wait=0, cs_lat=12, ps_lat=10)   # margin 5
        assert not d(msg(slack=0), wait=10, cs_lat=0, ps_lat=10)
        assert d(msg(slack=10), wait=10, cs_lat=0, ps_lat=10)

    def test_manager_binds_per_node_copies(self):
        cfg = scheme_config("hybrid_tdm_vc4")
        sim = Simulator(seed=1)
        net = build_hybrid_network(cfg, sim,
                                   decision_fn=FeedbackDecision())
        d0 = net.managers[0].decision_fn
        d1 = net.managers[1].decision_fn
        assert d0 is not d1
        assert d0.ni is net.interfaces[0]
        assert d1.ni is net.interfaces[1]

    def test_end_to_end_with_feedback_policy(self):
        cfg = scheme_config("hybrid_tdm_vc4")
        sim = Simulator(seed=4)
        net = build_hybrid_network(cfg, sim,
                                   decision_fn=FeedbackDecision())
        from repro.traffic import attach_synthetic_sources, make_pattern
        pat = make_pattern("tornado", net.mesh, sim.rng)
        sources = attach_synthetic_sources(net, pat, injection_rate=0.25,
                                           rng=sim.rng)
        sim.run(1500)
        net.reset_stats()
        sim.run(3000)
        assert net.messages_delivered > 0
        assert net.cs_flit_fraction() > 0  # the policy does use circuits


class TestQueueDelayGating:
    def _cfg(self):
        cfg = scheme_config("hybrid_tdm_vct")
        return replace(cfg, vc_gating=replace(cfg.vc_gating,
                                              metric="queue_delay"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VCGatingConfig(metric="vibes")
        with pytest.raises(ValueError):
            VCGatingConfig(delay_low=5.0, delay_high=2.0)

    def test_idle_network_gates_down(self):
        from repro.network.network import build_network
        sim = Simulator(seed=1)
        net = build_network(self._cfg(), sim)
        sim.run(3000)
        min_vcs = net.cfg.vc_gating.min_vcs
        assert all(r.active_vcs == min_vcs for r in net.routers)

    def test_congestion_reactivates(self):
        from repro.network.network import build_network
        from repro.traffic import attach_synthetic_sources, make_pattern
        sim = Simulator(seed=1)
        net = build_network(self._cfg(), sim)
        pat = make_pattern("transpose", net.mesh, sim.rng)
        attach_synthetic_sources(net, pat, injection_rate=0.5,
                                 rng=sim.rng)
        sim.run(4000)
        avg_active = sum(r.active_vcs for r in net.routers) / len(net.routers)
        assert avg_active > net.cfg.vc_gating.min_vcs

    def test_traffic_flows_and_conserves(self):
        from repro.network.network import build_network
        from repro.traffic import attach_synthetic_sources, make_pattern
        from tests.conftest import drain
        sim = Simulator(seed=2)
        net = build_network(self._cfg(), sim)
        pat = make_pattern("uniform_random", net.mesh, sim.rng)
        sources = attach_synthetic_sources(net, pat, injection_rate=0.2,
                                           rng=sim.rng)
        sim.run(1200)
        assert drain(sim, net, max_cycles=10_000)
        assert sum(s.messages_received for s in sources) == \
            sum(s.messages_generated for s in sources)


class TestRouterQueueDelayProbe:
    def test_pop_queue_delay_resets(self):
        sim, net, _ = run_traffic("hybrid_tdm_vct", "transpose", 0.3,
                                  warmup=500, measure=500)
        r = net.routers[7]
        d1 = r.pop_queue_delay()
        assert d1 >= 0
        assert r.pop_queue_delay() == 0.0

"""DLT and saturating-counter tests (Section III-A)."""

from repro.core.sharing import (
    DestinationLookupTable,
    SaturatingCounter,
    vicinity_candidate,
)
from repro.network.topology import Mesh


class TestSaturatingCounter:
    def test_saturates_at_three(self):
        c = SaturatingCounter()
        for _ in range(10):
            c.up()
        assert c.value == 3

    def test_threshold_at_two(self):
        """The paper triggers a dedicated setup at state '10' (== 2)."""
        c = SaturatingCounter(threshold=2)
        assert not c.up()
        assert c.up()
        assert c.triggered

    def test_down_decrements_to_zero(self):
        c = SaturatingCounter()
        c.up()
        c.down()
        c.down()
        assert c.value == 0


class TestDLT:
    def test_add_and_lookup(self):
        dlt = DestinationLookupTable(capacity=4)
        dlt.add(dest=9, slot=3, duration=4, outport=2, conn=1)
        e = dlt.lookup(9)
        assert e is not None
        assert (e.slot, e.duration, e.outport, e.conn) == (3, 4, 2, 1)
        assert dlt.lookup(8) is None

    def test_capacity_evicts_oldest(self):
        dlt = DestinationLookupTable(capacity=2)
        dlt.add(1, 0, 4, 1, conn=1)
        dlt.add(2, 0, 4, 1, conn=2)
        dlt.add(3, 0, 4, 1, conn=3)
        assert len(dlt) == 2
        assert dlt.lookup(1) is None
        assert dlt.lookup(3) is not None

    def test_re_add_same_conn_replaces(self):
        dlt = DestinationLookupTable(capacity=4)
        dlt.add(1, 0, 4, 1, conn=7)
        dlt.add(2, 5, 4, 1, conn=7)
        assert len(dlt) == 1
        assert dlt.lookup(1) is None
        assert dlt.lookup(2).slot == 5

    def test_remove_conn(self):
        dlt = DestinationLookupTable()
        dlt.add(1, 0, 4, 1, conn=7)
        dlt.remove_conn(7)
        assert dlt.lookup(1) is None

    def test_failure_escalation(self):
        dlt = DestinationLookupTable(fail_threshold=2)
        assert not dlt.note_failure(5)
        assert dlt.note_failure(5)      # second failure escalates
        assert not dlt.note_failure(5)  # counter was reset after trigger

    def test_success_decrements_failures(self):
        dlt = DestinationLookupTable(fail_threshold=2)
        dlt.note_failure(5)
        dlt.note_success(5)
        assert not dlt.note_failure(5)  # back to 1, not triggered

    def test_clear(self):
        dlt = DestinationLookupTable()
        dlt.add(1, 0, 4, 1, conn=7)
        dlt.note_failure(2)
        dlt.clear()
        assert len(dlt) == 0

    def test_lookup_counts_tracked(self):
        dlt = DestinationLookupTable()
        dlt.add(1, 0, 4, 1, conn=7)
        dlt.lookup(1)
        dlt.lookup(2)
        assert dlt.lookups == 2
        assert dlt.updates == 1


class TestVicinityCandidates:
    def test_adjacent_is_candidate(self):
        m = Mesh(4, 4)
        assert vicinity_candidate(m, 5, 6)
        assert vicinity_candidate(m, 5, 1)

    def test_self_and_far_are_not(self):
        m = Mesh(4, 4)
        assert not vicinity_candidate(m, 5, 5)
        assert not vicinity_candidate(m, 5, 7)

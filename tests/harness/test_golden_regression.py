"""Golden-regression fixtures for the paper-artefact generators.

The rendered output of small pinned fig4/fig5/table3 runs is committed
under ``tests/fixtures/golden/``; the tests assert byte-identical
output.  Any behavioural drift in the simulator — router arbitration,
slot allocation, energy accounting, RNG consumption order — shows up
here as a diff of the actual table, which is far easier to act on than
a failed statistical bound.

To regenerate after an INTENDED behaviour change:

    PYTHONPATH=src python tests/harness/test_golden_regression.py --regen

and commit the updated fixtures together with the change that caused
them.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

#: The experiment runs are pinned: explicit seeds, reduced
#: pattern/rate/benchmark grids, and REPRO_SCALE fixed to 0.1 so the
#: fixtures stay cheap enough for tier-1.
PINNED_SCALE = "0.1"


def _fig4_small() -> str:
    from repro.harness import experiments
    return experiments.fig4(patterns=("transpose",),
                            schemes=("packet_vc4", "hybrid_tdm_vc4"),
                            rates=(0.1, 0.3), seed=1).text


def _fig5_small() -> str:
    from repro.harness import experiments
    return experiments.fig5(patterns=("tornado",), rates=(0.15,),
                            seed=1).text


def _table3_small() -> str:
    from repro.harness import experiments
    return experiments.table3(gpu_benchmarks=("BLACKSCHOLES", "STO"),
                              seed=3).text


CASES = {
    "fig4_small.txt": _fig4_small,
    "fig5_small.txt": _fig5_small,
    "table3_small.txt": _table3_small,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_output_is_byte_identical(name, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", PINNED_SCALE)
    fixture = GOLDEN_DIR / name
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; regenerate with "
        f"PYTHONPATH=src python {__file__} --regen")
    expected = fixture.read_text()
    actual = CASES[name]()
    assert actual == expected, (
        f"{name} drifted from the committed golden output; if the "
        f"change is intended, regenerate with --regen and commit the "
        f"new fixture")


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_output_is_byte_identical_under_batch_engine(
        name, monkeypatch):
    """The batch engine must regenerate every committed artefact
    byte-for-byte: the fixtures double as an end-to-end engine-
    equivalence oracle over the full experiment pipeline (``fig4``'s
    sweeps, ``fig5``'s energy accounting, ``table3``'s hetero system),
    which no synthetic verify workload covers in one piece.  The
    ``REPRO_ENGINE`` override reaches every ``Simulator`` the
    experiments construct without threading a parameter through them.
    """
    monkeypatch.setenv("REPRO_SCALE", PINNED_SCALE)
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    fixture = GOLDEN_DIR / name
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; regenerate with "
        f"PYTHONPATH=src python {__file__} --regen")
    expected = fixture.read_text()
    actual = CASES[name]()
    assert actual == expected, (
        f"{name} under engine=batch drifted from the committed golden "
        f"output — the batch engine is not bit-equivalent on this "
        f"experiment pipeline")


def _regenerate() -> None:
    os.environ["REPRO_SCALE"] = PINNED_SCALE
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, fn in sorted(CASES.items()):
        out = fn()
        (GOLDEN_DIR / name).write_text(out)
        print(f"wrote {GOLDEN_DIR / name} ({len(out)} bytes)")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)

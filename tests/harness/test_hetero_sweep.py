"""Heterogeneous and trace-replay point families in supervised sweeps."""

from __future__ import annotations

from repro.config import CheckpointConfig, SupervisorConfig
from repro.harness.supervisor import (
    build_hetero_points,
    build_replay_points,
    load_results,
    run_supervised_sweep,
    sweep_config_hash,
)
from repro.hetero import HeteroSystem
from repro.traffic import MessageTraceRecorder


def _sup(**kw):
    kw.setdefault("timeout_s", 120.0)
    kw.setdefault("max_retries", 1)
    kw.setdefault("backoff_s", 0.01)
    kw.setdefault("backoff_cap_s", 0.05)
    return SupervisorConfig(enabled=True, **kw)


def _record_trace(tmp_path):
    rec = MessageTraceRecorder()
    HeteroSystem("hybrid_tdm_vc4", "ART", "BLACKSCHOLES", seed=3) \
        .run(warmup=300, measure=700, recorder=rec)
    path = str(tmp_path / "sweep.trace.jsonl")
    rec.save(path)
    return path


class TestPointBuilders:
    def test_hetero_grid_shape(self):
        pts = build_hetero_points(["packet_vc4", "hybrid_tdm_vc4"],
                                  ["ART", "EQUAKE"], ["BLACKSCHOLES"],
                                  warmup=100, measure=200)
        assert len(pts) == 4
        assert all("cpu_benchmark" in p and "gpu_benchmark" in p
                   for p in pts)
        assert all("pattern" not in p for p in pts)

    def test_hetero_points_hashable(self):
        pts = build_hetero_points(["packet_vc4"], ["ART"], ["BLACKSCHOLES"],
                                  phased=True)
        assert sweep_config_hash(pts, CheckpointConfig())

    def test_replay_points_carry_abs_trace_path(self, tmp_path):
        path = _record_trace(tmp_path)
        pts = build_replay_points(["packet_vc4", "hybrid_tdm_vc4"], path)
        assert len(pts) == 2
        assert all(p["trace"] == path for p in pts)


class TestSupervisedHetero:
    def test_hetero_sweep_completes(self, tmp_path):
        pts = build_hetero_points(["packet_vc4", "hybrid_tdm_vc4"],
                                  ["ART"], ["BLACKSCHOLES"],
                                  warmup=300, measure=700, phased=True)
        summary = run_supervised_sweep(pts, str(tmp_path / "run"), _sup())
        assert summary["completed"] == 2 and not summary["failures"]
        rows = [r["row"] for r in load_results(str(tmp_path / "run"))]
        by_scheme = {r["scheme"]: r for r in rows}
        assert by_scheme["packet_vc4"]["cs_fraction"] == 0
        assert by_scheme["hybrid_tdm_vc4"]["cs_fraction"] > 0
        assert all(r["cpu_benchmark"] == "ART" for r in rows)
        assert all(r["messages_delivered"] > 0 for r in rows)

    def test_replay_sweep_completes(self, tmp_path):
        path = _record_trace(tmp_path)
        pts = build_replay_points(["packet_vc4", "hybrid_tdm_vc4"], path,
                                  warmup=300, measure=700)
        summary = run_supervised_sweep(pts, str(tmp_path / "run"), _sup())
        assert summary["completed"] == 2 and not summary["failures"]
        rows = [r["row"] for r in load_results(str(tmp_path / "run"))]
        by_scheme = {r["scheme"]: r for r in rows}
        assert by_scheme["hybrid_tdm_vc4"]["cs_fraction"] > 0
        assert by_scheme["packet_vc4"]["cs_fraction"] == 0

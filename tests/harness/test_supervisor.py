"""Supervised sweep runner: isolation, retry, leases, manifest, resume."""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.config import SupervisorConfig
from repro.harness import store
from repro.harness.executor import LocalProcessExecutor, WorkerStatus
from repro.harness.runner import run_synthetic
from repro.harness.supervisor import (
    SweepConfigError,
    amend_sweep_points,
    build_sweep_points,
    lease_path,
    load_results,
    resume_sweep,
    run_supervised_sweep,
    validate_result,
)


def _points(n_extra=0, **overrides):
    pts = build_sweep_points(["packet_vc4"], "uniform_random",
                            [0.1, 0.2][:1 + n_extra], width=3, height=3,
                            slot_table_size=32, warmup=200, measure=200)
    for p in pts:
        p.update(overrides)
    return pts


def _sup(**kw):
    kw.setdefault("timeout_s", 60.0)
    kw.setdefault("max_retries", 1)
    kw.setdefault("backoff_s", 0.01)
    kw.setdefault("backoff_cap_s", 0.05)
    return SupervisorConfig(enabled=True, **kw)


class TestSupervisedSweep:
    def test_clean_sweep_completes(self, tmp_path):
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(_points(n_extra=1), run_dir, _sup())
        assert summary["completed"] == 2
        assert summary["failures"] == []
        results = load_results(run_dir)
        assert len(results) == 2
        assert all(r["status"] == "ok" for r in results)
        assert all(r["row"]["messages_delivered"] > 0 for r in results)

    def test_injected_livelock_point_does_not_stop_sweep(self, tmp_path):
        pts = _points(n_extra=1)
        pts[0]["_test_fail"] = "livelock"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(pts, run_dir, _sup())
        # the livelocked point is recorded, the other point still ran
        assert len(summary["failures"]) == 1
        failure = summary["failures"][0]
        assert failure["outcome"] == "livelock"
        assert failure["attempts"] == 1, "livelock must not be retried"
        results = load_results(run_dir)
        assert len(results) == 2
        assert results[0]["status"] == "livelock"
        assert "livelock@" in results[0]["row"]["note"]
        assert results[1]["status"] == "ok"

        manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
        assert manifest["total_points"] == 2
        assert manifest["failures"][0]["outcome"] == "livelock"

    def test_crash_is_retried_then_recorded(self, tmp_path):
        pts = _points()
        pts[0]["_test_fail"] = "crash"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(pts, run_dir, _sup(max_retries=2))
        assert summary["completed"] == 0
        failure = summary["failures"][0]
        assert failure["outcome"] == "crash"
        assert failure["attempts"] == 3  # initial try + 2 retries

    def test_hang_times_out(self, tmp_path):
        pts = _points()
        pts[0]["_test_fail"] = "hang"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(
            pts, run_dir, _sup(timeout_s=1.0, max_retries=0))
        failure = summary["failures"][0]
        assert failure["outcome"] == "timeout"
        assert failure["attempts"] == 1

    def test_resume_skips_completed_points(self, tmp_path):
        run_dir = str(tmp_path / "run")
        first = run_supervised_sweep(_points(n_extra=1), run_dir, _sup())
        assert first["skipped"] == 0
        resumed = resume_sweep(run_dir)
        assert resumed["skipped"] == 2
        assert resumed["completed"] == 2
        assert resumed["failures"] == []

    def test_resume_requires_sweep_json(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resume_sweep(str(tmp_path / "nonexistent"))


class TestParallelSweep:
    """jobs > 1 must change wall-clock behaviour only — never results."""

    def _grid(self, n=5, **overrides):
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.05 * (i + 1) for i in range(n)],
                                 width=3, height=3, slot_table_size=32,
                                 warmup=150, measure=150)
        for p in pts:
            p.update(overrides)
        return pts

    def test_parallel_matches_serial_results(self, tmp_path):
        pts = self._grid()
        serial = run_supervised_sweep(pts, str(tmp_path / "serial"),
                                      _sup(jobs=1))
        par = run_supervised_sweep(pts, str(tmp_path / "par"),
                                   _sup(jobs=4))
        assert serial["failures"] == par["failures"] == []
        assert serial["completed"] == par["completed"] == len(pts)
        # identical rows, in point-index order, regardless of the order
        # in which the parallel workers finished
        assert [r["row"] for r in serial["results"]] \
            == [r["row"] for r in par["results"]]

    def test_parallel_run_is_deterministic(self, tmp_path):
        pts = self._grid(n=4)
        a = run_supervised_sweep(pts, str(tmp_path / "a"), _sup(jobs=4))
        b = run_supervised_sweep(pts, str(tmp_path / "b"), _sup(jobs=4))
        assert [r["row"] for r in a["results"]] \
            == [r["row"] for r in b["results"]]

    def test_parallel_failures_ordered_and_retried(self, tmp_path):
        pts = self._grid(n=4)
        pts[2]["_test_fail"] = "crash"
        pts[0]["_test_fail"] = "livelock"
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       _sup(jobs=4, max_retries=1))
        assert [f["index"] for f in summary["failures"]] == [0, 2]
        by_index = {f["index"]: f for f in summary["failures"]}
        assert by_index[0]["outcome"] == "livelock"
        assert by_index[0]["attempts"] == 1   # livelock never retried
        assert by_index[2]["outcome"] == "crash"
        assert by_index[2]["attempts"] == 2   # initial try + 1 retry
        # healthy points all completed despite the two failures
        assert summary["completed"] == 3      # 2 ok + livelock partial

        manifest = json.load(
            open(os.path.join(str(tmp_path / "run"), "manifest.json")))
        assert [f["index"] for f in manifest["failures"]] == [0, 2]

    def test_resume_partial_parallel_run(self, tmp_path):
        pts = self._grid(n=4)
        run_dir = str(tmp_path / "run")
        # simulate a sweep killed mid-way: run points 1 and 3 only, as a
        # parallel run would have completed them out of order
        first = run_supervised_sweep([pts[1], pts[3]],
                                     str(tmp_path / "pre"), _sup(jobs=2))
        os.makedirs(os.path.join(run_dir, "points"))
        # a result is only trusted together with its checksum sidecar
        for got, idx in ((0, 1), (1, 3)):
            for suffix in (".json", ".json.sha256"):
                os.rename(
                    os.path.join(str(tmp_path / "pre"), "points",
                                 f"point-{got:04d}{suffix}"),
                    os.path.join(run_dir, "points",
                                 f"point-{idx:04d}{suffix}"))
        summary = run_supervised_sweep(pts, run_dir, _sup(jobs=4))
        assert summary["skipped"] == 2
        assert summary["completed"] == 4
        assert summary["failures"] == []
        rows = [r["row"]["offered"] for r in summary["results"]]
        assert rows == sorted(rows)
        assert first["failures"] == []

    def test_resume_honours_jobs_override(self, tmp_path):
        pts = self._grid(n=2)
        run_dir = str(tmp_path / "run")
        run_supervised_sweep(pts[:1], run_dir, _sup(jobs=1))
        # sweep.json only recorded one point; grow it to the full grid
        # through the sanctioned amendment path (hand-editing the file
        # trips its integrity hash by design — see TestResumeValidation)
        amend_sweep_points(run_dir, pts)
        summary = resume_sweep(run_dir, jobs=4)
        assert summary["skipped"] == 1
        assert summary["completed"] == 2


class TestResumeValidation:
    """``resume_sweep`` must refuse specs it cannot trust (satellite:
    manifest config-hash + schema validation with clear errors)."""

    def _ran(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_supervised_sweep(_points(), run_dir, _sup())
        return run_dir

    def test_hand_edited_sweep_json_refused(self, tmp_path):
        run_dir = self._ran(tmp_path)
        path = os.path.join(run_dir, "sweep.json")
        spec = json.load(open(path))
        spec["points"][0]["rate"] = 0.99
        json.dump(spec, open(path, "w"))
        with pytest.raises(SweepConfigError, match="integrity"):
            resume_sweep(run_dir)

    def test_truncated_sweep_json_refused(self, tmp_path):
        run_dir = self._ran(tmp_path)
        path = os.path.join(run_dir, "sweep.json")
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(SweepConfigError, match="integrity"):
            resume_sweep(run_dir)

    def test_unsupported_schema_refused(self, tmp_path):
        run_dir = self._ran(tmp_path)
        path = os.path.join(run_dir, "sweep.json")
        spec = store.read_json_self_hashed(path)
        spec["schema"] = 1
        store.write_json_self_hashed(path, spec)
        with pytest.raises(SweepConfigError, match="schema"):
            resume_sweep(run_dir)

    def test_stale_config_hash_refused(self, tmp_path):
        # intact self-hash but a config_hash that no longer matches the
        # recorded points: the spec was swapped wholesale, refuse it
        run_dir = self._ran(tmp_path)
        path = os.path.join(run_dir, "sweep.json")
        spec = store.read_json_self_hashed(path)
        spec["points"][0]["rate"] = 0.99   # config_hash left stale
        store.write_json_self_hashed(path, spec)
        with pytest.raises(SweepConfigError, match="config hash"):
            resume_sweep(run_dir)

    def test_foreign_run_dir_refused(self, tmp_path):
        # launching a *different* grid into an existing run directory
        # must fail loudly, not silently mis-skip points
        run_dir = self._ran(tmp_path)
        other = _points()
        other[0]["rate"] = 0.42
        with pytest.raises(SweepConfigError, match="different config"):
            run_supervised_sweep(other, run_dir, _sup())

    def test_amended_spec_resumes(self, tmp_path):
        run_dir = self._ran(tmp_path)
        pts = _points(n_extra=1)
        amend_sweep_points(run_dir, pts)
        summary = resume_sweep(run_dir)
        assert summary["skipped"] == 1      # original point still valid
        assert summary["completed"] == 2


class TestCorruptionResume:
    """Resume after artifact corruption: detect, re-run, converge
    (parametrized over serial and parallel resume)."""

    def _grid(self):
        # trace + metrics per point: the sidecar then covers artifact
        # files as well as the result row
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.1, 0.2], width=3, height=3,
                                 slot_table_size=32, warmup=150,
                                 measure=150, trace=True, metrics=True)
        return pts

    def _run(self, tmp_path):
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(self._grid(), run_dir, _sup())
        assert summary["failures"] == []
        return run_dir, [r["row"] for r in summary["results"]]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_truncated_manifest_rebuilt(self, tmp_path, jobs):
        run_dir, rows = self._run(tmp_path)
        path = os.path.join(run_dir, "manifest.json")
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 3])
        summary = resume_sweep(run_dir, jobs=jobs)
        # nothing re-ran: the per-point files still validate, and the
        # corrupt manifest was quarantined and rebuilt from them
        assert summary["skipped"] == 2
        assert os.path.exists(path + ".corrupt")
        rebuilt = store.read_json_self_hashed(path)
        assert rebuilt["completed"] == 2
        assert [r["row"] for r in summary["results"]] == rows

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_bitflipped_result_rerun(self, tmp_path, jobs):
        run_dir, rows = self._run(tmp_path)
        path = os.path.join(run_dir, "points", "point-0001.json")
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x10
        open(path, "wb").write(bytes(data))
        assert validate_result(run_dir, 1)[0] is None
        summary = resume_sweep(run_dir, jobs=jobs)
        assert summary["skipped"] == 1      # point 0 untouched
        assert summary["completed"] == 2    # point 1 re-ran
        assert [r["row"] for r in summary["results"]] == rows
        assert validate_result(run_dir, 1)[0] is not None

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_missing_trace_sidecar_rerun(self, tmp_path, jobs):
        run_dir, rows = self._run(tmp_path)
        os.remove(os.path.join(run_dir, "points",
                               "point-0000.trace.jsonl"))
        data, reason = validate_result(run_dir, 0)
        assert data is None and "missing artifact" in reason
        summary = resume_sweep(run_dir, jobs=jobs)
        assert summary["skipped"] == 1
        assert summary["completed"] == 2
        assert [r["row"] for r in summary["results"]] == rows
        assert os.path.exists(os.path.join(run_dir, "points",
                                           "point-0000.trace.jsonl"))


class _LostExitExecutor(LocalProcessExecutor):
    """A transport that never observes worker exits (host loss): the
    supervisor can only make progress through lease expiry."""

    def poll(self, handle):
        return WorkerStatus.LOST

    def wait_any(self, handles, timeout):
        time.sleep(min(timeout, 0.05))


class TestLeaseExpiry:
    def _sup(self, **kw):
        return _sup(jobs=2, max_retries=3, lease_ttl_s=1.0,
                    heartbeat_interval_s=0.2, **kw)

    def test_sigkilled_worker_reclaimed_and_rerun(self, tmp_path):
        """SIGKILL a real subprocess worker mid-point; its lease must
        expire, the point re-run, and the results match a clean run."""
        pts = _points(n_extra=1)
        ref = run_supervised_sweep(pts, str(tmp_path / "ref"), _sup())

        run_dir = str(tmp_path / "run")
        killed = []

        def killer():
            deadline = time.time() + 30
            while not killed and time.time() < deadline:
                lease = store.read_json(lease_path(run_dir, 0))
                if lease and lease.get("pid"):
                    try:
                        os.kill(int(lease["pid"]), signal.SIGKILL)
                        killed.append(int(lease["pid"]))
                    except OSError:
                        pass
                time.sleep(0.02)

        thread = threading.Thread(target=killer)
        thread.start()
        summary = run_supervised_sweep(pts, run_dir, self._sup(),
                                       executor=_LostExitExecutor())
        thread.join()
        assert killed, "the killer never saw a leased worker"
        assert summary["completed"] == 2
        assert summary["failures"] == []
        assert [r["row"] for r in summary["results"]] \
            == [r["row"] for r in ref["results"]]
        manifest = store.read_json_self_hashed(
            os.path.join(run_dir, "manifest.json"))
        assert manifest["points"]["0"]["attempts"] >= 2, \
            "the killed point must have been re-executed"

    def test_wedged_worker_expires(self, tmp_path):
        """A worker that stays alive but stops heartbeating (stuck in
        uninterruptible IO, say) is reclaimed by lease expiry alone."""
        pts = _points()
        pts[0]["_test_fail"] = "wedge_once"
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       self._sup())
        assert summary["completed"] == 1
        assert summary["failures"] == []
        manifest = store.read_json_self_hashed(
            os.path.join(str(tmp_path / "run"), "manifest.json"))
        assert manifest["points"]["0"]["attempts"] == 2

    def test_lease_ttl_zero_disables_expiry(self, tmp_path):
        # with expiry disabled the hang must fall back to the timeout
        pts = _points()
        pts[0]["_test_fail"] = "hang"
        summary = run_supervised_sweep(
            pts, str(tmp_path / "run"),
            _sup(timeout_s=1.5, max_retries=0, lease_ttl_s=0.0,
                 heartbeat_interval_s=0.2))
        assert summary["failures"][0]["outcome"] == "timeout"


class TestQuarantine:
    def test_poison_point_quarantined_with_evidence(self, tmp_path):
        pts = _points(n_extra=1)
        pts[0]["_test_fail"] = "crash"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(pts, run_dir,
                                       _sup(max_retries=1, jobs=2))
        failure = summary["failures"][0]
        assert failure["outcome"] == "crash"
        assert failure["attempts"] == 2
        # the healthy point completed: the sweep degraded, not died
        assert summary["completed"] == 1
        # evidence preserved: stderr tail inline + full copy on disk
        assert "injected crash" in failure["stderr_tail"]
        qdir = os.path.join(run_dir, failure["quarantine_dir"])
        assert os.path.exists(os.path.join(qdir, "stderr.txt"))
        # the failure manifest is atomic + self-hashed like the manifest
        failures_doc = store.read_json_self_hashed(
            os.path.join(run_dir, "failures.json"))
        assert failures_doc["failures"][0]["index"] == 0
        manifest = store.read_json_self_hashed(
            os.path.join(run_dir, "manifest.json"))
        assert manifest["points"]["0"]["status"] == "quarantined"

    def test_crash_once_recovers_on_retry(self, tmp_path):
        pts = _points()
        pts[0]["_test_fail"] = "crash_once"
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       _sup(max_retries=2))
        assert summary["completed"] == 1
        assert summary["failures"] == []


class TestSweepControl:
    def test_cancel_kills_in_flight_workers(self, tmp_path):
        """cancel() is the deadline/cancel path: hung workers are
        killed now, nothing retries, and the summary says so."""
        from repro.harness.supervisor import SweepControl
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.05, 0.1, 0.15], width=3, height=3,
                                 slot_table_size=32, warmup=200,
                                 measure=200)
        for p in pts:
            p["_test_fail"] = "hang"
        control = SweepControl()
        timer = threading.Timer(0.5, control.cancel)
        timer.start()
        start = time.monotonic()
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       _sup(jobs=3), control=control)
        timer.join()
        assert time.monotonic() - start < 30.0
        assert summary["stopped"] == "cancelled"
        assert summary["completed"] == 0
        assert summary["remaining"] == 3
        assert summary["failures"] == []

    def test_yield_before_start_launches_nothing(self, tmp_path):
        from repro.harness.supervisor import SweepControl
        control = SweepControl()
        control.request_yield()
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.05, 0.1, 0.15], width=3, height=3,
                                 slot_table_size=32, warmup=200,
                                 measure=200)
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       _sup(), control=control)
        assert summary["stopped"] == "preempted"
        assert summary["completed"] == 0
        assert summary["remaining"] == 3

    def test_yield_finishes_in_flight_point_then_stops(self, tmp_path):
        """request_yield() is QoS preemption: the slot is handed back
        between points, never mid-point, and the untouched points stay
        runnable afterwards."""
        from repro.harness.supervisor import SweepControl
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.05, 0.1, 0.15], width=3, height=3,
                                 slot_table_size=32, warmup=300,
                                 measure=20000)
        run_dir = str(tmp_path / "run")
        control = SweepControl()
        timer = threading.Timer(0.3, control.request_yield)
        timer.start()
        summary = run_supervised_sweep(pts, run_dir, _sup(jobs=1),
                                       control=control)
        timer.join()
        assert summary["stopped"] == "preempted"
        assert summary["failures"] == []
        # whatever was in flight at yield time finished cleanly...
        assert summary["completed"] >= 1
        assert summary["remaining"] >= 1
        assert summary["completed"] + summary["remaining"] == 3
        # ...and a later scheduling of the same sweep picks up only the
        # remainder (completed points skip on checksum validation)
        done = run_supervised_sweep(pts, run_dir, _sup(jobs=1))
        assert done["stopped"] is None
        assert done["skipped"] == summary["completed"]
        assert done["completed"] == 3       # includes the skipped points
        assert len(load_results(run_dir)) == 3


class TestRunnerCheckpointResume:
    def test_checkpointed_rerun_matches_uninterrupted(self, tmp_path):
        kw = dict(warmup=200, measure=300, seed=3, width=3, height=3,
                  slot_table_size=32)
        ref = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2, **kw)

        ckpt = str(tmp_path / "ckpt")
        first = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2,
                              checkpoint_dir=ckpt, checkpoint_cycles=100,
                              **kw)
        assert os.listdir(ckpt), "no snapshots written"
        # second invocation resumes from the last snapshot (as after a
        # crash) and must land on the same results as the clean runs
        second = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2,
                               checkpoint_dir=ckpt, checkpoint_cycles=100,
                               **kw)
        for run in (first, second):
            assert run.messages_delivered == ref.messages_delivered
            assert run.avg_latency == ref.avg_latency
            assert run.accepted == ref.accepted
            assert run.energy.total == ref.energy.total

"""Supervised sweep runner: isolation, retry, manifest, resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SupervisorConfig
from repro.harness.runner import run_synthetic
from repro.harness.supervisor import (
    build_sweep_points,
    load_results,
    resume_sweep,
    run_supervised_sweep,
)


def _points(n_extra=0, **overrides):
    pts = build_sweep_points(["packet_vc4"], "uniform_random",
                            [0.1, 0.2][:1 + n_extra], width=3, height=3,
                            slot_table_size=32, warmup=200, measure=200)
    for p in pts:
        p.update(overrides)
    return pts


def _sup(**kw):
    kw.setdefault("timeout_s", 60.0)
    kw.setdefault("max_retries", 1)
    kw.setdefault("backoff_s", 0.01)
    kw.setdefault("backoff_cap_s", 0.05)
    return SupervisorConfig(enabled=True, **kw)


class TestSupervisedSweep:
    def test_clean_sweep_completes(self, tmp_path):
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(_points(n_extra=1), run_dir, _sup())
        assert summary["completed"] == 2
        assert summary["failures"] == []
        results = load_results(run_dir)
        assert len(results) == 2
        assert all(r["status"] == "ok" for r in results)
        assert all(r["row"]["messages_delivered"] > 0 for r in results)

    def test_injected_livelock_point_does_not_stop_sweep(self, tmp_path):
        pts = _points(n_extra=1)
        pts[0]["_test_fail"] = "livelock"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(pts, run_dir, _sup())
        # the livelocked point is recorded, the other point still ran
        assert len(summary["failures"]) == 1
        failure = summary["failures"][0]
        assert failure["outcome"] == "livelock"
        assert failure["attempts"] == 1, "livelock must not be retried"
        results = load_results(run_dir)
        assert len(results) == 2
        assert results[0]["status"] == "livelock"
        assert "livelock@" in results[0]["row"]["note"]
        assert results[1]["status"] == "ok"

        manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
        assert manifest["total_points"] == 2
        assert manifest["failures"][0]["outcome"] == "livelock"

    def test_crash_is_retried_then_recorded(self, tmp_path):
        pts = _points()
        pts[0]["_test_fail"] = "crash"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(pts, run_dir, _sup(max_retries=2))
        assert summary["completed"] == 0
        failure = summary["failures"][0]
        assert failure["outcome"] == "crash"
        assert failure["attempts"] == 3  # initial try + 2 retries

    def test_hang_times_out(self, tmp_path):
        pts = _points()
        pts[0]["_test_fail"] = "hang"
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(
            pts, run_dir, _sup(timeout_s=1.0, max_retries=0))
        failure = summary["failures"][0]
        assert failure["outcome"] == "timeout"
        assert failure["attempts"] == 1

    def test_resume_skips_completed_points(self, tmp_path):
        run_dir = str(tmp_path / "run")
        first = run_supervised_sweep(_points(n_extra=1), run_dir, _sup())
        assert first["skipped"] == 0
        resumed = resume_sweep(run_dir)
        assert resumed["skipped"] == 2
        assert resumed["completed"] == 2
        assert resumed["failures"] == []

    def test_resume_requires_sweep_json(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resume_sweep(str(tmp_path / "nonexistent"))


class TestParallelSweep:
    """jobs > 1 must change wall-clock behaviour only — never results."""

    def _grid(self, n=5, **overrides):
        pts = build_sweep_points(["packet_vc4"], "uniform_random",
                                 [0.05 * (i + 1) for i in range(n)],
                                 width=3, height=3, slot_table_size=32,
                                 warmup=150, measure=150)
        for p in pts:
            p.update(overrides)
        return pts

    def test_parallel_matches_serial_results(self, tmp_path):
        pts = self._grid()
        serial = run_supervised_sweep(pts, str(tmp_path / "serial"),
                                      _sup(jobs=1))
        par = run_supervised_sweep(pts, str(tmp_path / "par"),
                                   _sup(jobs=4))
        assert serial["failures"] == par["failures"] == []
        assert serial["completed"] == par["completed"] == len(pts)
        # identical rows, in point-index order, regardless of the order
        # in which the parallel workers finished
        assert [r["row"] for r in serial["results"]] \
            == [r["row"] for r in par["results"]]

    def test_parallel_run_is_deterministic(self, tmp_path):
        pts = self._grid(n=4)
        a = run_supervised_sweep(pts, str(tmp_path / "a"), _sup(jobs=4))
        b = run_supervised_sweep(pts, str(tmp_path / "b"), _sup(jobs=4))
        assert [r["row"] for r in a["results"]] \
            == [r["row"] for r in b["results"]]

    def test_parallel_failures_ordered_and_retried(self, tmp_path):
        pts = self._grid(n=4)
        pts[2]["_test_fail"] = "crash"
        pts[0]["_test_fail"] = "livelock"
        summary = run_supervised_sweep(pts, str(tmp_path / "run"),
                                       _sup(jobs=4, max_retries=1))
        assert [f["index"] for f in summary["failures"]] == [0, 2]
        by_index = {f["index"]: f for f in summary["failures"]}
        assert by_index[0]["outcome"] == "livelock"
        assert by_index[0]["attempts"] == 1   # livelock never retried
        assert by_index[2]["outcome"] == "crash"
        assert by_index[2]["attempts"] == 2   # initial try + 1 retry
        # healthy points all completed despite the two failures
        assert summary["completed"] == 3      # 2 ok + livelock partial

        manifest = json.load(
            open(os.path.join(str(tmp_path / "run"), "manifest.json")))
        assert [f["index"] for f in manifest["failures"]] == [0, 2]

    def test_resume_partial_parallel_run(self, tmp_path):
        pts = self._grid(n=4)
        run_dir = str(tmp_path / "run")
        # simulate a sweep killed mid-way: run points 1 and 3 only, as a
        # parallel run would have completed them out of order
        first = run_supervised_sweep([pts[1], pts[3]],
                                     str(tmp_path / "pre"), _sup(jobs=2))
        os.makedirs(os.path.join(run_dir, "points"))
        for got, idx in ((0, 1), (1, 3)):
            os.rename(
                os.path.join(str(tmp_path / "pre"), "points",
                             f"point-{got:04d}.json"),
                os.path.join(run_dir, "points", f"point-{idx:04d}.json"))
        summary = run_supervised_sweep(pts, run_dir, _sup(jobs=4))
        assert summary["skipped"] == 2
        assert summary["completed"] == 4
        assert summary["failures"] == []
        rows = [r["row"]["offered"] for r in summary["results"]]
        assert rows == sorted(rows)
        assert first["failures"] == []

    def test_resume_honours_jobs_override(self, tmp_path):
        pts = self._grid(n=2)
        run_dir = str(tmp_path / "run")
        run_supervised_sweep(pts[:1], run_dir, _sup(jobs=1))
        # sweep.json only recorded one point; rewrite it with the full
        # grid as a killed full sweep would have
        spec = json.load(open(os.path.join(run_dir, "sweep.json")))
        spec["points"] = pts
        json.dump(spec, open(os.path.join(run_dir, "sweep.json"), "w"))
        summary = resume_sweep(run_dir, jobs=4)
        assert summary["skipped"] == 1
        assert summary["completed"] == 2


class TestRunnerCheckpointResume:
    def test_checkpointed_rerun_matches_uninterrupted(self, tmp_path):
        kw = dict(warmup=200, measure=300, seed=3, width=3, height=3,
                  slot_table_size=32)
        ref = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2, **kw)

        ckpt = str(tmp_path / "ckpt")
        first = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2,
                              checkpoint_dir=ckpt, checkpoint_cycles=100,
                              **kw)
        assert os.listdir(ckpt), "no snapshots written"
        # second invocation resumes from the last snapshot (as after a
        # crash) and must land on the same results as the clean runs
        second = run_synthetic("hybrid_tdm_vc4", "transpose", 0.2,
                               checkpoint_dir=ckpt, checkpoint_cycles=100,
                               **kw)
        for run in (first, second):
            assert run.messages_delivered == ref.messages_delivered
            assert run.avg_latency == ref.avg_latency
            assert run.accepted == ref.accepted
            assert run.energy.total == ref.energy.total

"""Harness tests: runner primitives, report rendering, experiments."""

import os

import pytest

from repro.harness import experiments as E
from repro.harness.report import format_table, write_csv
from repro.harness.runner import (
    DEFAULT_RATES,
    SynthRun,
    load_latency_sweep,
    run_synthetic,
    saturation_throughput,
    scale,
    scaled,
)


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")


class TestScaling:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale() == 2.5
        assert scaled(1000) == 2500

    def test_scale_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        assert scale() == 1.0

    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert scaled(1000) >= 200


class TestRunner:
    def test_run_synthetic_returns_complete_record(self):
        r = run_synthetic("hybrid_tdm_vc4", "tornado", 0.2, seed=2)
        assert isinstance(r, SynthRun)
        assert r.scheme == "hybrid_tdm_vc4"
        assert r.accepted > 0
        assert r.avg_latency > 0
        assert r.p99_latency >= r.avg_latency
        assert r.energy.total > 0
        assert r.slot_wheel >= 2
        assert r.energy_per_message_pj > 0

    def test_packet_run_has_no_cs(self):
        r = run_synthetic("packet_vc4", "tornado", 0.2, seed=2)
        assert r.cs_fraction == 0.0
        assert r.slot_wheel == 0

    def test_sweep_covers_rates(self):
        runs = load_latency_sweep("packet_vc4", "neighbor",
                                  rates=(0.05, 0.2), seed=2)
        assert [r.offered for r in runs] == [0.05, 0.2]

    def test_saturation_at_least_single_probe(self):
        sat = saturation_throughput("packet_vc4", "neighbor",
                                    probe_rates=(0.5,), seed=2)
        assert sat > 0.2

    def test_default_rates_ascending(self):
        assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)

    def test_state_hash_independent_of_process_history(self):
        """The canonical state hash must be a function of the run, not
        of how many objects this process allocated before it: a forked
        worker and a fresh interpreter have to agree on it (the service
        chaos campaign compares exactly those two)."""
        kw = dict(width=3, height=3, slot_table_size=32,
                  warmup=150, measure=250, seed=1,
                  with_state_hash=True)
        first = run_synthetic("packet_vc4", "uniform_random", 0.1, **kw)
        # pollute the global allocators as a long test session would
        from repro.network.flit import Message, MessageClass
        for _ in range(1000):
            Message(0, 1, MessageClass.DATA, 1, 0)
        second = run_synthetic("packet_vc4", "uniform_random", 0.1, **kw)
        assert first.state_hash
        assert first.state_hash == second.state_hash
        assert first.messages_delivered == second.messages_delivered


class TestLivelockSurvival:
    """A livelocked point degrades to a failed SynthRun, never an abort."""

    @pytest.fixture
    def livelock_everything(self, monkeypatch):
        from repro.sim.kernel import LivelockError, Simulator

        def boom(self, cycles):
            raise LivelockError(self.cycle, 3, 100, {"injected": True})

        monkeypatch.setattr(Simulator, "run", boom)

    def test_run_synthetic_survives_livelock(self, livelock_everything):
        r = run_synthetic("packet_vc4", "tornado", 0.2, seed=2)
        assert r.failed
        assert r.note.startswith("livelock@")
        assert r.messages_delivered == 0

    def test_sweep_keeps_going_past_livelock(self, livelock_everything):
        runs = load_latency_sweep("packet_vc4", "neighbor",
                                  rates=(0.05, 0.2), seed=2)
        assert len(runs) == 2
        assert all(r.failed for r in runs)

    def test_saturation_survives_livelock(self, livelock_everything):
        sat = saturation_throughput("packet_vc4", "neighbor",
                                    probe_rates=(0.5,), seed=2)
        assert sat == 0.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("a", "beta"), [(1, 2.5), (10, 0.001)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "beta" in lines[1]
        assert len(lines) == 5

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ("x", "y"), [(1, 2), (3, 4)])
        content = open(path).read().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1:] == ["1,2", "3,4"]

    def test_nan_renders_as_na_in_tables(self):
        nan, inf = float("nan"), float("inf")
        text = format_table(("lat",), [(nan,), (inf,), (1.5,)])
        cells = [line.strip() for line in text.splitlines()[2:]]
        assert cells == ["n/a", "n/a", "1.500"]
        assert "nan" not in text and "inf" not in text

    def test_nan_csv_round_trip(self, tmp_path):
        """Livelocked points write an *empty* cell, never 'nan', and the
        emptiness survives a csv read-back."""
        import csv

        path = str(tmp_path / "out.csv")
        write_csv(path, ("rate", "lat"),
                  [(0.1, 12.5), (0.9, float("nan"))])
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["rate", "lat"], ["0.1", "12.5"], ["0.9", ""]]


class TestExperiments:
    """Each experiment entry point must run end to end (tiny sizes)."""

    def test_fig4_smoke(self):
        res = E.fig4(patterns=("tornado",),
                     schemes=("packet_vc4", "hybrid_tdm_vc4"),
                     rates=(0.1, 0.45), seed=2)
        assert res.rows
        assert "saturation" in res.notes
        assert "tornado" in str(res.extra["curves"].keys()) or \
            ("tornado", "packet_vc4") in res.extra["curves"]
        assert res.text

    def test_fig5_smoke(self):
        res = E.fig5(patterns=("tornado",), rates=(0.2,), seed=2)
        assert len(res.rows) == 1
        row = res.rows[0]
        assert row[0] == "TOR"

    def test_fig6_smoke(self):
        res = E.fig6(sizes=(4,), patterns=("tornado",), seed=2)
        assert len(res.rows) == 1
        mesh, pattern, sat_p, sat_h, thr, esave, cs = res.rows[0]
        assert mesh == "4x4"
        assert sat_p > 0 and sat_h > 0

    def test_fig8_smoke(self):
        res = E.fig8(gpu_benchmarks=("HOTSPOT",),
                     cpu_benchmarks=("EQUAKE",),
                     schemes=("packet_vc4", "hybrid_tdm_vc4"),
                     measure=1500, seed=2)
        assert any(r[0] == "AVG" for r in res.rows)
        data_rows = [r for r in res.rows if r[0] != "AVG"]
        assert len(data_rows) == 1

    def test_fig9_smoke(self):
        res = E.fig9(gpu_benchmarks=("HOTSPOT",), cpu_benchmarks=("ART",),
                     measure=1500, seed=2)
        comps = {r[2] for r in res.rows}
        assert comps == {"buffer", "cs", "xbar", "arbiter", "clock",
                         "link"}
        assert "51.3" in res.notes  # paper reference numbers quoted

    def test_table3_smoke(self):
        res = E.table3(gpu_benchmarks=("STO",), measure=1500, seed=2)
        assert len(res.rows) == 1
        gpu, inj, inj_paper, cs, cs_paper = res.rows[0]
        assert gpu == "STO"
        assert inj_paper == 0.05
        assert cs_paper == 18.5

    def test_ablation_slot_table(self):
        res = E.ablation_slot_table(sizes=(8, 64), rate=0.2, seed=2)
        assert len(res.rows) == 2

    def test_ablation_stealing(self):
        res = E.ablation_stealing(rate=0.2, seed=2)
        assert {r[0] for r in res.rows} == {"on", "off"}

    def test_ablation_sharing(self):
        res = E.ablation_sharing(gpu_benchmarks=("HOTSPOT",),
                                 measure=1200, seed=2)
        assert len(res.rows) == 2

    def test_ablation_vc_gating(self):
        res = E.ablation_vc_gating(measure=1200, seed=2)
        assert len(res.rows) == 2
        labels = {r[0] for r in res.rows}
        assert "packet_vc4+gating" in labels

"""Chaos harness smoke: induced failure must not change results."""

from __future__ import annotations

import os

import pytest

from repro.harness.chaos import (ChaosConfig, chaos_points, run_chaos,
                                 validate_chaos_run)
from repro.harness import store


class TestChaosConfig:
    def test_needs_a_clean_final_cycle(self):
        with pytest.raises(ValueError):
            ChaosConfig(cycles=1)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_rate=-0.1)


class TestChaosCampaign:
    def test_small_campaign_converges_identical(self, tmp_path):
        """The flagship invariant, at smoke scale: kills + corruption +
        disk-full over two resume cycles, then a clean cycle, and the
        result is point-for-point identical to the serial reference."""
        cfg = ChaosConfig(points=3, cycles=3, jobs=2, seed=0,
                          kill_rate=1.0, corrupt_rate=0.5,
                          diskfull_rate=0.15, supervisor_kill_rate=0.5,
                          timeout_s=60.0)
        report = run_chaos(cfg, str(tmp_path / "campaign"))
        assert report["ok"], report["problems"]
        assert report["cycles_run"] == 3
        # the report itself is a durable artifact
        assert os.path.exists(
            os.path.join(str(tmp_path / "campaign"), "chaos-report.json"))

    def test_validation_catches_tampering(self, tmp_path):
        """validate_chaos_run is only trustworthy if it actually fails
        on a manipulated run directory."""
        cfg = ChaosConfig(points=2, cycles=2, jobs=2, seed=1,
                          kill_rate=0.0, corrupt_rate=0.0,
                          diskfull_rate=0.0, supervisor_kill_rate=0.0)
        run_dir = str(tmp_path / "campaign")
        report = run_chaos(cfg, run_dir)
        assert report["ok"], report["problems"]

        points = chaos_points(cfg.points, seed=1, metrics=cfg.metrics)
        chaos_dir = os.path.join(run_dir, "chaos")
        from repro.harness.supervisor import load_results
        reference = load_results(os.path.join(run_dir, "reference"))
        assert validate_chaos_run(points, chaos_dir, reference) == []

        # flip one byte in a result: the invariant check must notice
        path = os.path.join(chaos_dir, "points", "point-0000.json")
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x04
        open(path, "wb").write(bytes(data))
        problems = validate_chaos_run(points, chaos_dir, reference)
        assert any("point 0" in p for p in problems)

    def test_chaos_points_hash_like_clean_points(self):
        """Chaos injection knobs must not change what a point *is* —
        otherwise the chaos run could never validate against clean
        specs or reuse results across cycles."""
        from repro.harness.supervisor import point_spec_hash
        clean = chaos_points(2, seed=1)
        dirty = [dict(p, _chaos_diskfull=0.5, _chaos_seed=7)
                 for p in clean]
        assert [point_spec_hash(p) for p in clean] \
            == [point_spec_hash(p) for p in dirty]


class TestChaosReportShape:
    def test_report_written_even_on_reference_failure(self, tmp_path,
                                                      monkeypatch):
        # poison the reference by making every worker crash: the
        # campaign must bail out with ok=False and a written report
        from repro.harness import chaos as chaos_mod

        def bad_points(n, seed=0, metrics=True):
            pts = chaos_points(n, seed=seed, metrics=metrics)
            for p in pts:
                p["_test_fail"] = "crash"
            return pts

        monkeypatch.setattr(chaos_mod, "chaos_points", bad_points)
        cfg = ChaosConfig(points=1, cycles=2, seed=0, kill_rate=0.0,
                          corrupt_rate=0.0, diskfull_rate=0.0,
                          supervisor_kill_rate=0.0, max_retries=0)
        report = run_chaos(cfg, str(tmp_path / "campaign"))
        assert not report["ok"]
        assert "reference run failed" in report["problems"][0]
        doc = store.read_json(
            os.path.join(str(tmp_path / "campaign"), "chaos-report.json"))
        assert doc is not None and not doc["ok"]


class TestServiceChaos:
    def test_small_service_campaign_survives_server_kill(self, tmp_path):
        """The service-layer flagship, at smoke scale: SIGKILL the job
        server mid-run, restart it, replay the submissions, and every
        accepted job still reaches one terminal state with results
        identical to a serial reference."""
        from repro.harness.chaos import ServiceChaosConfig, \
            run_service_chaos

        cfg = ServiceChaosConfig(points=3, kills=1, server_kill_rate=0.5,
                                 seed=0, timeout_s=120.0)
        report = run_service_chaos(cfg, str(tmp_path / "campaign"))
        assert report["ok"], report["problems"]
        assert report["server_kills"] >= 1, \
            "the campaign never actually killed the server"
        assert report["final_shutdown_exit"] == 0
        assert os.path.exists(os.path.join(
            str(tmp_path / "campaign"), "service-chaos-report.json"))

    def test_config_rejects_bad_knobs(self):
        from repro.harness.chaos import ServiceChaosConfig

        with pytest.raises(ValueError):
            ServiceChaosConfig(points=0)
        with pytest.raises(ValueError):
            ServiceChaosConfig(server_kill_rate=-0.1)

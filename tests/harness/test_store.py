"""Content-addressed store: atomic writes, checksums, self-healing."""

from __future__ import annotations

import json
import os

import pytest

from repro.harness import store


class TestCanonicalJson:
    def test_byte_stable_across_key_order(self):
        a = store.canonical_json({"b": 1, "a": [1, 2]})
        b = store.canonical_json({"a": [1, 2], "b": 1})
        assert a == b
        assert a.endswith(b"\n")

class TestAtomicWriters:
    def test_write_returns_content_hash(self, tmp_path):
        path = str(tmp_path / "f.json")
        sha = store.write_json_atomic(path, {"x": 1})
        assert store.sha256_file(path) == sha
        assert sha == store.sha256_bytes(store.canonical_json({"x": 1}))
        assert json.load(open(path)) == {"x": 1}

    def test_no_tmp_litter_on_success(self, tmp_path):
        store.write_bytes_atomic(str(tmp_path / "out"), b"data")
        assert sorted(os.listdir(tmp_path)) == ["out"]

    def test_read_json_none_on_garbage(self, tmp_path):
        assert store.read_json(str(tmp_path / "missing")) is None
        path = str(tmp_path / "bad")
        open(path, "w").write("{not json")
        assert store.read_json(path) is None


class TestSelfHashedDocuments:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "doc.json")
        store.write_json_self_hashed(path, {"a": 1})
        doc = store.read_json_self_hashed(path)
        assert doc["a"] == 1
        assert store.SELF_HASH_KEY in doc

    def test_missing_is_none(self, tmp_path):
        assert store.read_json_self_hashed(str(tmp_path / "no")) is None

    def test_bitflip_detected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        store.write_json_self_hashed(path, {"a": 1, "b": "payload"})
        data = bytearray(open(path, "rb").read())
        data[data.index(b"payload"[0])] ^= 0x01
        open(path, "wb").write(bytes(data))
        with pytest.raises(store.StoreCorruptError, match="self-hash"):
            store.read_json_self_hashed(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        store.write_json_self_hashed(path, {"a": list(range(100))})
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(store.StoreCorruptError, match="unparseable"):
            store.read_json_self_hashed(path)

    def test_hand_edit_detected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        store.write_json_self_hashed(path, {"a": 1})
        doc = json.load(open(path))
        doc["a"] = 2
        json.dump(doc, open(path, "w"))
        with pytest.raises(store.StoreCorruptError):
            store.read_json_self_hashed(path)


class TestArtifactStore:
    def test_put_and_verify(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        src = str(tmp_path / "src")
        open(src, "wb").write(b"hello world")
        sha = art.put(src)
        assert art.has(sha) and art.verify(sha)
        assert open(art.object_path(sha), "rb").read() == b"hello world"

    def test_put_refuses_checksum_mismatch(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        src = str(tmp_path / "src")
        open(src, "wb").write(b"hello")
        with pytest.raises(store.StoreCorruptError):
            art.put(src, sha="0" * 64)
        assert art.fsck() == []          # nothing poisoned the store

    def test_put_heals_corrupt_object(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        src = str(tmp_path / "src")
        open(src, "wb").write(b"payload")
        sha = art.put(src)
        open(art.object_path(sha), "wb").write(b"rotted")
        assert not art.verify(sha)
        art.put(src, sha)                # re-ingest repairs in place
        assert art.verify(sha)

    def test_restore_refuses_corrupt_object(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        sha = art.put_bytes(b"data")
        dest = str(tmp_path / "out")
        assert art.restore(sha, dest)
        assert open(dest, "rb").read() == b"data"
        open(art.object_path(sha), "wb").write(b"bad")
        assert not art.restore(sha, str(tmp_path / "out2"))
        assert not os.path.exists(str(tmp_path / "out2"))

    def test_fsck_reports_missing_and_corrupt(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        good = art.put_bytes(b"good")
        bad = art.put_bytes(b"bad-to-be")
        open(art.object_path(bad), "wb").write(b"flipped")
        missing = "f" * 64
        assert set(art.fsck([good, bad, missing])) == {bad, missing}
        assert art.fsck() == [bad]       # full scan finds the rot too

    def test_fsck_missing_objects_dir_is_clean(self, tmp_path):
        """A store that never ingested anything has no objects/ — a
        full-scan fsck on it is an empty report, not a crash."""
        art = store.ArtifactStore(str(tmp_path / "never-used"))
        assert art.fsck() == []
        # ...but an explicit expectation against it still fails loudly
        assert art.fsck(["a" * 64]) == ["a" * 64]

    def test_fsck_empty_objects_dir_is_clean(self, tmp_path):
        art = store.ArtifactStore(str(tmp_path / "store"))
        os.makedirs(os.path.join(art.root, "objects"))
        assert art.fsck() == []

    def test_fsck_ignores_stray_files_in_objects_dir(self, tmp_path):
        """Temp droppings at the fan-out level (not inside an <aa>/
        bucket) are not objects and must not appear in the report."""
        art = store.ArtifactStore(str(tmp_path / "store"))
        good = art.put_bytes(b"good")
        objdir = os.path.join(art.root, "objects")
        open(os.path.join(objdir, "stray.tmp"), "wb").write(b"x")
        assert art.fsck() == []
        assert art.verify(good)


class TestDiskFullHook:
    def teardown_method(self):
        store.install_diskfull(0, 0)     # never leak into other tests

    def test_injected_enospc_leaves_no_final_file(self, tmp_path):
        store.install_diskfull(1.0, seed=7)
        path = str(tmp_path / "out.json")
        with pytest.raises(OSError, match="disk full"):
            store.write_json_atomic(path, {"x": 1})
        assert not os.path.exists(path), \
            "a failed write must never create the final name"
        assert os.path.exists(path + ".tmp"), "partial spill expected"

    def test_seeded_fraction_fails(self, tmp_path):
        store.install_diskfull(0.5, seed=3)
        outcomes = []
        for i in range(40):
            try:
                store.write_bytes_atomic(str(tmp_path / f"f{i}"), b"x")
                outcomes.append(True)
            except OSError:
                outcomes.append(False)
        assert 5 < sum(outcomes) < 35    # both branches taken

    def test_disarm(self, tmp_path):
        store.install_diskfull(1.0, seed=1)
        store.install_diskfull(0, 0)
        store.write_bytes_atomic(str(tmp_path / "ok"), b"fine")

"""Executor transport edge cases: reap idempotency, wait_any bounds.

The supervisor's reclaim paths call ``kill``/``reap``/``poll``
unconditionally on handles in any state — these tests pin the contract
that none of those calls can raise on a worker that already exited or
was already reaped.
"""

from __future__ import annotations

import time

from repro.harness.executor import (Executor, LocalProcessExecutor,
                                    WorkerStatus, WorkSpec)
from repro.harness.supervisor import build_sweep_points


def _spec(tmp_path, name="p0", job=None, **point_overrides):
    point = build_sweep_points(["packet_vc4"], "uniform_random", [0.1],
                               width=3, height=3, slot_table_size=32,
                               warmup=50, measure=50)[0]
    point.update(point_overrides)
    return WorkSpec(index=0, point=point,
                    out_path=str(tmp_path / f"{name}.json"),
                    ckpt_dir=None, checkpoint_cycles=0, job=job)


def _wait_exit(ex, handle, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while ex.poll(handle) is WorkerStatus.RUNNING:
        assert time.monotonic() < deadline, "worker never exited"
        ex.wait_any([handle], 0.05)


class TestWaitAny:
    def test_no_handles_returns_promptly(self):
        """An idle supervisor tick with nothing in flight must not
        sleep the full timeout — it bounds the nap and re-polls."""
        ex = LocalProcessExecutor()
        start = time.monotonic()
        ex.wait_any([], 5.0)
        assert time.monotonic() - start < 1.0

    def test_default_transport_bounds_the_sleep(self):
        start = time.monotonic()
        Executor.wait_any(Executor(), [], 5.0)
        assert time.monotonic() - start < 1.0

    def test_live_worker_respects_timeout(self, tmp_path):
        """With only a hung worker in flight, wait_any returns at the
        timeout instead of blocking until the worker dies."""
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path, _test_fail="hang"))
        try:
            start = time.monotonic()
            ex.wait_any([handle], 0.2)
            assert time.monotonic() - start < 5.0
            assert ex.poll(handle) is WorkerStatus.RUNNING
        finally:
            ex.kill(handle)
            ex.reap(handle)


class TestReapIdempotency:
    def test_reap_twice_is_harmless(self, tmp_path):
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path))
        _wait_exit(ex, handle)
        ex.reap(handle)
        ex.reap(handle)                  # second reap: already closed

    def test_poll_after_reap_reports_exited(self, tmp_path):
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path))
        _wait_exit(ex, handle)
        ex.reap(handle)
        assert ex.poll(handle) is WorkerStatus.EXITED

    def test_kill_after_reap_is_harmless(self, tmp_path):
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path))
        _wait_exit(ex, handle)
        ex.reap(handle)
        ex.kill(handle)                  # reclaim path calls blindly

    def test_pid_after_reap_is_none(self, tmp_path):
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path))
        assert isinstance(ex.pid(handle), int)
        _wait_exit(ex, handle)
        ex.reap(handle)
        assert ex.pid(handle) is None


class TestKillJob:
    def test_kill_job_signals_only_its_workers(self, tmp_path):
        ex = LocalProcessExecutor()
        doomed = ex.submit(_spec(tmp_path, "doomed", job="job-a",
                                 _test_fail="hang"))
        spared = ex.submit(_spec(tmp_path, "spared", job="job-b",
                                 _test_fail="hang"))
        try:
            assert ex.kill_job("job-a") == 1
            _wait_exit(ex, doomed)
            assert ex.poll(spared) is WorkerStatus.RUNNING
        finally:
            for h in (doomed, spared):
                ex.kill(h)
                ex.reap(h)

    def test_kill_job_unknown_job_is_zero(self):
        ex = LocalProcessExecutor()
        assert ex.kill_job("no-such-job") == 0

    def test_reap_forgets_job_membership(self, tmp_path):
        """A reaped handle must leave the job index, or a later
        deadline kill would signal a recycled process object."""
        ex = LocalProcessExecutor()
        handle = ex.submit(_spec(tmp_path, job="job-a"))
        _wait_exit(ex, handle)
        ex.reap(handle)
        assert ex.kill_job("job-a") == 0

"""Table-II system configuration tests."""

from repro.hetero.config import (
    AcceleratorConfig,
    CPUConfig,
    DEFAULT_SYSTEM,
    L2Config,
    MemoryConfig,
    SystemConfig,
    table_ii_summary,
)
from repro.hetero.memory import DRAM_LATENCY, L2_LATENCY
from repro.hetero.workloads import GPU_BENCHMARKS


class TestTableII:
    def test_processor(self):
        c = CPUConfig()
        assert c.issue_width == 4
        assert c.int_fus == 6
        assert c.fp_fus == 4
        assert c.rob_entries == 128

    def test_l1(self):
        c = CPUConfig()
        assert c.l1_size_kb == 64
        assert c.l1_assoc == 2
        assert c.l1_block_bytes == 64
        assert c.l1_latency == 1

    def test_l2(self):
        c = L2Config()
        assert c.total_size_mb == 16
        assert c.assoc == 4
        assert c.access_latency == 8
        assert c.banks == 12  # one bank per L2 tile of Figure 7

    def test_accelerator(self):
        c = AcceleratorConfig()
        assert c.simd_width == 32
        assert c.threads == 1024
        assert c.shared_memory_kb == 32
        assert c.warps == 32

    def test_memory(self):
        c = MemoryConfig()
        assert c.dram_size_gb == 4
        assert c.access_latency == 200
        assert c.controllers == 4

    def test_models_consume_table_ii_latencies(self):
        assert L2_LATENCY == DEFAULT_SYSTEM.l2.access_latency == 8
        assert DRAM_LATENCY == DEFAULT_SYSTEM.memory.access_latency == 200

    def test_gpu_profiles_use_table_ii_warp_count(self):
        warps = AcceleratorConfig().warps
        assert all(p.warps == warps for p in GPU_BENCHMARKS.values())

    def test_summary_renders_all_rows(self):
        rows = dict(table_ii_summary())
        assert "128-entry ROB" in rows["Processor"]
        assert "16M banked" in rows["L2 Cache"]
        assert "1024 threads" in rows["Accelerator"]
        assert "200 cycle" in rows["Memory"]

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_SYSTEM.cpu.issue_width = 8

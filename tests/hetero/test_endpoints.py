"""CPU/GPU/L2/MC endpoint model tests."""

import numpy as np
import pytest

from repro.config import scheme_config
from repro.hetero.cpu import CPUCoreEndpoint
from repro.hetero.gpu import GPUCoreEndpoint
from repro.hetero.memory import (
    DRAM_LATENCY,
    L2_LATENCY,
    L2BankEndpoint,
    MemoryControllerEndpoint,
)
from repro.hetero.tiles import HeteroLayout
from repro.hetero.workloads import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.network.flit import Message, MessageClass
from repro.network.topology import Mesh


class FakeNI:
    """Captures endpoint sends without a network."""

    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)


def make_cpu(profile="ART", node=0):
    cfg = scheme_config("packet_vc4")
    layout = HeteroLayout(Mesh(6, 6))
    ep = CPUCoreEndpoint(node, cfg, layout, CPU_BENCHMARKS[profile],
                         np.random.default_rng(0))
    ep.ni = FakeNI()
    return ep, layout


def make_gpu(profile="BLACKSCHOLES", node=2):
    cfg = scheme_config("packet_vc4")
    layout = HeteroLayout(Mesh(6, 6))
    ep = GPUCoreEndpoint(node, cfg, layout, GPU_BENCHMARKS[profile],
                         np.random.default_rng(0))
    ep.ni = FakeNI()
    return ep, layout


def reply_for(req, cycle=0):
    r = Message(src=req.dst, dst=req.src, mclass=MessageClass.DATA,
                size_flits=5, create_cycle=cycle)
    r.meta.update(kind="data_reply", warp=req.meta.get("warp"),
                  critical=req.meta.get("critical", False))
    return r


class TestCPUCore:
    def test_retires_instructions_when_unblocked(self):
        ep, _ = make_cpu("GAFORT")
        for c in range(100):
            ep.tick(c)
        assert ep.instructions_retired > 0

    def test_misses_target_l2_banks(self):
        ep, layout = make_cpu("ART")
        for c in range(500):
            ep.tick(c)
        assert ep.ni.sent
        for msg in ep.ni.sent:
            assert msg.dst in layout.l2_nodes
            assert not msg.meta.get("gpu", True)

    def test_blocks_on_mlp_saturation(self):
        ep, _ = make_cpu("ART")
        for c in range(3000):
            ep.tick(c)  # no replies ever arrive
        assert ep.blocked
        assert ep.outstanding <= ep.profile.mlp
        retired_at_block = ep.instructions_retired
        for c in range(3000, 3100):
            ep.tick(c)
        assert ep.instructions_retired == retired_at_block
        assert ep.stall_cycles > 0

    def test_reply_unblocks(self):
        ep, _ = make_cpu("ART")
        for c in range(3000):
            ep.tick(c)
        assert ep.blocked
        reqs = [m for m in ep.ni.sent if m.meta["kind"] == "read_req"]
        for req in reqs:
            ep.on_message(reply_for(req), 3000)
        assert not ep.blocked

    def test_miss_rate_tracks_profile(self):
        ep, _ = make_cpu("GAFORT")  # low miss rate: never blocks long
        for c in range(5000):
            ep.tick(c)
            reqs = [m for m in ep.ni.sent if m.meta["kind"] == "read_req"]
            for req in reqs:
                ep.on_message(reply_for(req), c)
            ep.ni.sent.clear()
        per_instr = ep.requests_sent / ep.instructions_retired
        assert per_instr == pytest.approx(ep.profile.miss_rate, rel=0.3)


class TestGPUCore:
    def test_warps_issue_requests(self):
        ep, layout = make_gpu()
        for c in range(50):
            ep.tick(c)
        reqs = [m for m in ep.ni.sent if m.meta["kind"] == "read_req"]
        assert reqs
        for r in reqs:
            assert r.dst in ep.banks
            assert r.meta["gpu"] is True
            assert "slack" in r.meta

    def test_warp_waits_until_reply(self):
        ep, _ = make_gpu()
        for c in range(200):
            ep.tick(c)
        assert ep.waiting == ep.profile.warps  # all stuck waiting
        assert ep.available_warps == 0

    def test_reply_restarts_compute_and_counts_iteration(self):
        ep, _ = make_gpu()
        for c in range(200):
            ep.tick(c)
        req = next(m for m in ep.ni.sent if m.meta["kind"] == "read_req")
        ep.on_message(reply_for(req), 200)
        assert ep.iterations == 1
        assert ep.available_warps == 1

    def test_slack_proportional_to_available_warps(self):
        ep, _ = make_gpu()
        full = ep.slack_estimate()
        assert full == ep.profile.warps * ep.profile.slack_per_warp
        for c in range(200):
            ep.tick(c)
        assert ep.slack_estimate() == 0

    def test_closed_loop_rate_matches_target(self):
        """With the nominal round trip latency, the SM's injected flits
        approximate the Table-III target."""
        from repro.hetero.workloads import NOMINAL_ROUND_TRIP
        ep, _ = make_gpu("BLACKSCHOLES")
        pending = []  # (deliver_cycle, reply)
        cycles = 8000
        flits = 0
        for c in range(cycles):
            ep.tick(c)
            for m in ep.ni.sent:
                flits += 1 if m.mclass == MessageClass.CTRL else 5
                if m.meta["kind"] == "read_req":
                    pending.append((c + NOMINAL_ROUND_TRIP, reply_for(m)))
            ep.ni.sent.clear()
            while pending and pending[0][0] <= c:
                ep.on_message(pending.pop(0)[1], c)
        rate = flits / cycles
        assert rate == pytest.approx(0.18, rel=0.35)


class TestMemoryEndpoints:
    def _wire(self):
        cfg = scheme_config("packet_vc4")
        layout = HeteroLayout(Mesh(6, 6))
        rng = np.random.default_rng(0)
        bank = L2BankEndpoint(layout.l2_nodes[0], cfg, layout, rng)
        bank.ni = FakeNI()
        mc = MemoryControllerEndpoint(layout.mem_nodes[0], cfg, rng)
        mc.ni = FakeNI()
        return bank, mc

    def _request(self, bank, miss_p):
        req = Message(src=5, dst=bank.node, mclass=MessageClass.CTRL,
                      size_flits=1, create_cycle=0)
        req.meta.update(kind="read_req", requester=5, gpu=True, warp=3,
                        slack=10, miss_p=miss_p)
        return req

    def test_hit_replies_after_l2_latency(self):
        bank, _ = self._wire()
        bank.on_message(self._request(bank, miss_p=0.0), 0)
        for c in range(L2_LATENCY):
            bank.tick(c)
            assert not bank.ni.sent
        bank.tick(L2_LATENCY)
        assert len(bank.ni.sent) == 1
        reply = bank.ni.sent[0]
        assert reply.meta["kind"] == "data_reply"
        assert reply.dst == 5
        assert reply.meta["warp"] == 3
        assert bank.hits == 1

    def test_miss_goes_to_memory_and_back(self):
        bank, mc = self._wire()
        bank.on_message(self._request(bank, miss_p=1.0), 0)
        for c in range(L2_LATENCY + 1):
            bank.tick(c)
        fill = bank.ni.sent[0]
        assert fill.meta["kind"] == "mem_req"
        assert fill.dst == mc.node or fill.dst in (fill.dst,)
        assert bank.misses == 1
        # deliver to the MC
        mc.on_message(fill, 10)
        for c in range(10, 10 + DRAM_LATENCY):
            mc.tick(c)
            assert not mc.ni.sent
        mc.tick(10 + DRAM_LATENCY)
        dram = mc.ni.sent[0]
        assert dram.meta["kind"] == "mem_reply"
        # and back through the bank to the requester
        bank.ni.sent.clear()
        bank.on_message(dram, 300)
        assert bank.ni.sent[0].meta["kind"] == "data_reply"
        assert bank.ni.sent[0].dst == 5

    def test_mshr_limit_queues_excess_requests(self):
        bank, _ = self._wire()
        bank.mshrs = 2
        for _ in range(5):
            bank.on_message(self._request(bank, miss_p=0.0), 0)
        assert bank._in_service == 2
        assert len(bank._waiting) == 3
        assert bank.max_queue == 3
        # serve the two in flight: replies free MSHRs, queue drains
        for c in range(0, 4 * L2_LATENCY + 1):
            bank.tick(c)
        assert len(bank.ni.sent) == 5
        assert not bank._waiting

    def test_miss_holds_mshr_until_fill_returns(self):
        bank, _ = self._wire()
        bank.mshrs = 1
        bank.on_message(self._request(bank, miss_p=1.0), 0)
        bank.on_message(self._request(bank, miss_p=0.0), 0)
        for c in range(L2_LATENCY + 1):
            bank.tick(c)
        # the miss went to memory; its MSHR is still held, so the second
        # request is still waiting
        assert len(bank._waiting) == 1
        fill = bank.ni.sent[0]
        assert fill.meta["kind"] == "mem_req"
        # fake the DRAM fill coming back
        from repro.network.flit import Message, MessageClass
        dram = Message(src=9, dst=bank.node, mclass=MessageClass.DATA,
                       size_flits=5, create_cycle=300)
        dram.meta.update(kind="mem_reply", orig=fill.meta["orig"])
        bank.on_message(dram, 300)
        assert not bank._waiting  # second request admitted

    def test_store_consumed_silently(self):
        bank, _ = self._wire()
        store = Message(src=5, dst=bank.node, mclass=MessageClass.DATA,
                        size_flits=5, create_cycle=0)
        store.meta.update(kind="store", gpu=True)
        bank.on_message(store, 0)
        assert bank.stores == 1
        assert not bank.ni.sent

"""Record/replay fidelity for heterogeneous runs.

The acceptance bar from the trace-pipeline work: a recorded hetero run
replayed on the *same* scheme reproduces ``cs_fraction`` (bit-identical
here, well within the 5% criterion) with identical message counts, and
the same trace replays deterministically on *other* schemes.
"""

import pytest

from repro.hetero import HeteroSystem, run_hetero_replay
from repro.traffic import MessageTraceRecorder

WARMUP, MEASURE = 500, 1500


def _record(scheme, seed=3):
    rec = MessageTraceRecorder()
    system = HeteroSystem(scheme, "ART", "BLACKSCHOLES", seed=seed)
    res = system.run(warmup=WARMUP, measure=MEASURE, recorder=rec)
    return rec, res


class TestSameSchemeFidelity:
    def test_hybrid_replay_reproduces_cs_fraction(self, tmp_path):
        rec, recorded = _record("hybrid_tdm_vc4")
        assert recorded.cs_fraction > 0, \
            "recorded hybrid run must circuit-switch (meta survived)"
        path = str(tmp_path / "hybrid.trace.jsonl")
        rec.save(path)
        replayed = run_hetero_replay("hybrid_tdm_vc4", path,
                                     warmup=WARMUP, measure=MEASURE, seed=3)
        # same scheme + same seed: the fabric stream (sim.net_rng) is a
        # function of the seed alone, so replay is bit-identical
        assert replayed.cs_fraction == pytest.approx(recorded.cs_fraction,
                                                     rel=0.05)
        assert replayed.messages_delivered == recorded.messages_delivered

    def test_replay_is_deterministic(self, tmp_path):
        rec, _ = _record("hybrid_tdm_vc4")
        path = str(tmp_path / "t.trace.jsonl")
        rec.save(path)
        a = run_hetero_replay("hybrid_tdm_vc4", path,
                              warmup=WARMUP, measure=MEASURE, seed=3)
        b = run_hetero_replay("hybrid_tdm_vc4", path,
                              warmup=WARMUP, measure=MEASURE, seed=3)
        assert a.cs_fraction == b.cs_fraction
        assert a.avg_pkt_latency == b.avg_pkt_latency
        assert a.messages_delivered == b.messages_delivered


class TestCrossScheme:
    def test_same_trace_across_schemes(self, tmp_path):
        """One recorded workload, replayed against the hybrid scheme and
        the packet baseline: identical offered traffic, only the fabric
        differs (the paper's controlled-comparison methodology)."""
        rec, _ = _record("hybrid_tdm_vc4")
        path = str(tmp_path / "x.trace.jsonl")
        rec.save(path)
        hybrid = run_hetero_replay("hybrid_tdm_vc4", path,
                                   warmup=WARMUP, measure=MEASURE, seed=3)
        packet = run_hetero_replay("packet_vc4", path,
                                   warmup=WARMUP, measure=MEASURE, seed=3)
        assert hybrid.cs_fraction > 0
        assert packet.cs_fraction == 0          # packet never sets up CS
        # both replays consumed the same event list
        assert abs(hybrid.messages_delivered
                   - packet.messages_delivered) <= max(
            5, hybrid.messages_delivered // 20)

    def test_replay_accepts_event_list(self):
        rec, _ = _record("packet_vc4")
        res = run_hetero_replay("packet_vc4", rec.events,
                                warmup=WARMUP, measure=MEASURE, seed=3)
        assert res.messages_delivered > 0

"""Full heterogeneous system integration tests (Section V)."""

import pytest

from repro.hetero import HeteroSystem
from repro.hetero.system import gpu_data_eligible
from repro.network.flit import Message, MessageClass


class TestEligibility:
    def test_only_gpu_data_is_hybrid_switched(self):
        gpu_data = Message(src=0, dst=1, mclass=MessageClass.DATA,
                           size_flits=5, create_cycle=0)
        gpu_data.meta["gpu"] = True
        cpu_data = Message(src=0, dst=1, mclass=MessageClass.DATA,
                           size_flits=5, create_cycle=0)
        cpu_data.meta["gpu"] = False
        gpu_req = Message(src=0, dst=1, mclass=MessageClass.CTRL,
                          size_flits=1, create_cycle=0)
        gpu_req.meta["gpu"] = True
        assert gpu_data_eligible(gpu_data)
        assert not gpu_data_eligible(cpu_data)
        assert not gpu_data_eligible(gpu_req)


class TestSystemRuns:
    @pytest.mark.parametrize("scheme", ["packet_vc4", "hybrid_tdm_vc4",
                                        "hybrid_sdm_vc4",
                                        "hybrid_tdm_hop_vct"])
    def test_all_schemes_make_progress(self, scheme):
        system = HeteroSystem(scheme, "EQUAKE", "HOTSPOT", seed=5)
        res = system.run(warmup=400, measure=1200)
        assert res.cpu_instructions > 0
        assert res.gpu_iterations > 0
        assert res.energy.total > 0
        assert res.cycles == 1200

    def test_cpu_traffic_never_circuit_switched(self):
        system = HeteroSystem("hybrid_tdm_vc4", "ART", "BLACKSCHOLES",
                              seed=5)
        system.run(warmup=500, measure=2000)
        # no CPU tile ever scheduled a circuit message
        for node in system.layout.cpu_nodes:
            ni = system.net.ni(node)
            assert ni.counters["cs_send_own"] == 0
            assert ni.counters["cs_send_hitchhike"] == 0

    def test_gpu_traffic_uses_circuits(self):
        system = HeteroSystem("hybrid_tdm_vc4", "ART", "BLACKSCHOLES",
                              seed=5)
        res = system.run(warmup=1000, measure=3000)
        assert res.cs_fraction > 0.05

    def test_sto_low_injection(self):
        lo = HeteroSystem("packet_vc4", "GAFORT", "STO", seed=5) \
            .run(warmup=800, measure=2500)
        hi = HeteroSystem("packet_vc4", "GAFORT", "LPS", seed=5) \
            .run(warmup=800, measure=2500)
        assert lo.gpu_injection_rate < hi.gpu_injection_rate

    def test_injection_rates_roughly_match_table3(self):
        res = HeteroSystem("packet_vc4", "EQUAKE", "BLACKSCHOLES",
                           seed=5).run(warmup=1000, measure=3000)
        assert res.gpu_injection_rate == pytest.approx(0.18, rel=0.4)

    def test_memory_hierarchy_exercised(self):
        system = HeteroSystem("packet_vc4", "SWIM", "LPS", seed=5)
        system.run(warmup=500, measure=2000)
        assert sum(b.hits for b in system.l2s.values()) > 0
        assert sum(b.misses for b in system.l2s.values()) > 0
        assert sum(m.accesses for m in system.mcs.values()) > 0

    def test_deterministic_given_seed(self):
        r1 = HeteroSystem("hybrid_tdm_vc4", "ART", "NN", seed=11) \
            .run(warmup=400, measure=1000)
        r2 = HeteroSystem("hybrid_tdm_vc4", "ART", "NN", seed=11) \
            .run(warmup=400, measure=1000)
        assert r1.cpu_instructions == r2.cpu_instructions
        assert r1.gpu_iterations == r2.gpu_iterations
        assert r1.energy.total == r2.energy.total

    def test_result_properties(self):
        res = HeteroSystem("packet_vc4", "AMMP", "NN", seed=5) \
            .run(warmup=300, measure=900)
        assert res.cpu_ipc == pytest.approx(res.cpu_instructions / 900)
        assert res.gpu_throughput == pytest.approx(
            res.gpu_iterations / 900)


class TestPerformanceCoupling:
    def test_network_latency_feeds_gpu_throughput(self):
        """A slower network (tiny buffers) must reduce GPU progress."""
        from dataclasses import replace
        from repro.config import scheme_config
        fast = HeteroSystem("packet_vc4", "GAFORT", "LPS", seed=5)
        rfast = fast.run(warmup=600, measure=2000)
        cfg = scheme_config("packet_vc4")
        cfg = replace(cfg, router=replace(cfg.router, num_vcs=1,
                                          vc_depth=1,
                                          ps_pipeline_latency=6))
        slow = HeteroSystem("packet_vc4", "GAFORT", "LPS", seed=5, cfg=cfg)
        rslow = slow.run(warmup=600, measure=2000)
        assert rslow.gpu_throughput < rfast.gpu_throughput

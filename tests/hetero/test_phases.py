"""Phase-structured workload layer: phases, kernel bursts, hotspots."""

import numpy as np
import pytest

from repro.hetero import (
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    HeteroSystem,
    HotspotLayout,
    PhaseConfig,
    PhasedCPUCoreEndpoint,
    PhasedGPUCoreEndpoint,
)
from repro.config import scheme_config
from repro.hetero.tiles import default_layout
from repro.network.topology import Mesh


def _layout(width=6, height=6):
    cfg = scheme_config("packet_vc4", width=width, height=height)
    return cfg, default_layout(Mesh(width, height))


class TestPhaseConfig:
    def test_defaults_valid(self):
        PhaseConfig()

    @pytest.mark.parametrize("kw", [
        {"cpu_phase_len": 0},
        {"gpu_kernel_len": 0},
        {"gpu_gap_len": -1},
        {"hotspot_bias": 1.5},
        {"hotspot_fraction": 0.0},
    ])
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            PhaseConfig(**kw)


class TestPhasedCPU:
    def test_miss_scale_alternates(self):
        cfg, layout = _layout()
        pc = PhaseConfig(cpu_phase_len=100)
        ep = PhasedCPUCoreEndpoint(layout.cpu_nodes[0], cfg, layout,
                                   CPU_BENCHMARKS["ART"],
                                   np.random.default_rng(0), pc)
        base = ep.phase_index(0)
        scales = {ep.miss_scale(c) for c in range(0, 400)}
        assert scales == {pc.cpu_compute_scale, pc.cpu_memory_scale}
        assert ep.phase_index(0) == base            # pure function of cycle
        # consecutive phases flip parity
        assert ep.miss_scale(0) != ep.miss_scale(pc.cpu_phase_len)

    def test_offsets_decorrelate_nodes(self):
        cfg, layout = _layout()
        pc = PhaseConfig()
        eps = [PhasedCPUCoreEndpoint(n, cfg, layout, CPU_BENCHMARKS["ART"],
                                     np.random.default_rng(0), pc)
               for n in layout.cpu_nodes]
        assert len({e._phase_offset for e in eps}) > 1


class TestPhasedGPU:
    def test_kernel_window_lengths(self):
        cfg, layout = _layout()
        pc = PhaseConfig(gpu_kernel_len=50, gpu_gap_len=10)
        ep = PhasedGPUCoreEndpoint(layout.accel_nodes[0], cfg, layout,
                                   GPU_BENCHMARKS["BLACKSCHOLES"],
                                   np.random.default_rng(0), pc)
        period = pc.gpu_kernel_len + pc.gpu_gap_len
        active = sum(ep.kernel_active(c) for c in range(10 * period))
        assert active == 10 * pc.gpu_kernel_len

    def test_zero_gap_always_active(self):
        cfg, layout = _layout()
        pc = PhaseConfig(gpu_kernel_len=50, gpu_gap_len=0)
        ep = PhasedGPUCoreEndpoint(layout.accel_nodes[0], cfg, layout,
                                   GPU_BENCHMARKS["BLACKSCHOLES"],
                                   np.random.default_rng(0), pc)
        assert all(ep.kernel_active(c) for c in range(500))


class TestHotspotLayout:
    def test_hot_banks_are_nearest_memory(self):
        _cfg, layout = _layout()
        pc = PhaseConfig(hotspot_fraction=0.25)
        hot = HotspotLayout(layout, pc, np.random.default_rng(0))
        assert hot.hot_banks
        assert set(hot.hot_banks) <= set(layout.l2_nodes)
        worst_hot = max(min(layout.mesh.hops(b, m)
                            for m in layout.mem_nodes)
                        for b in hot.hot_banks)
        cold = [b for b in layout.l2_nodes if b not in hot.hot_banks]
        best_cold = min(min(layout.mesh.hops(b, m)
                            for m in layout.mem_nodes)
                        for b in cold)
        assert worst_hot <= best_cold

    def test_full_bias_always_hot(self):
        _cfg, layout = _layout()
        hot = HotspotLayout(layout, PhaseConfig(hotspot_bias=1.0),
                            np.random.default_rng(0))
        for addr in range(200):
            assert hot.bank_for_address(addr) in hot.hot_banks

    def test_zero_bias_delegates(self):
        _cfg, layout = _layout()
        hot = HotspotLayout(layout, PhaseConfig(hotspot_bias=0.0),
                            np.random.default_rng(0))
        for addr in range(50):
            assert hot.bank_for_address(addr) == \
                layout.bank_for_address(addr)

    def test_proxy_delegates_attributes(self):
        _cfg, layout = _layout()
        hot = HotspotLayout(layout, PhaseConfig(), np.random.default_rng(0))
        assert hot.cpu_nodes == layout.cpu_nodes
        assert hot.mesh is layout.mesh


class TestPhasedSystem:
    def test_phased_run_differs_from_plain(self):
        plain = HeteroSystem("hybrid_tdm_vc4", "ART", "BLACKSCHOLES",
                             seed=3).run(warmup=400, measure=1200)
        phased = HeteroSystem("hybrid_tdm_vc4", "ART", "BLACKSCHOLES",
                              seed=3, phases=PhaseConfig()) \
            .run(warmup=400, measure=1200)
        assert phased.cpu_instructions > 0
        assert phased.gpu_iterations > 0
        assert (phased.cs_fraction, phased.cpu_ipc) \
            != (plain.cs_fraction, plain.cpu_ipc)

    def test_phased_run_deterministic(self):
        kw = dict(seed=7, phases=PhaseConfig())
        a = HeteroSystem("packet_vc4", "ART", "BLACKSCHOLES", **kw) \
            .run(warmup=300, measure=900)
        b = HeteroSystem("packet_vc4", "ART", "BLACKSCHOLES", **kw) \
            .run(warmup=300, measure=900)
        assert a.cpu_ipc == b.cpu_ipc
        assert a.messages_delivered == b.messages_delivered

"""Floorplan tests (Figure 7)."""

import pytest

from repro.hetero.tiles import (
    FLOORPLAN_6X6,
    HeteroLayout,
    TileType,
    default_layout,
)
from repro.network.topology import Mesh


class TestFloorplan6x6:
    def setup_method(self):
        self.layout = HeteroLayout(Mesh(6, 6))

    def test_tile_counts(self):
        """8 CPU, 12 accelerator, 12 L2, 4 memory-controller tiles."""
        assert len(self.layout.cpu_nodes) == 8
        assert len(self.layout.accel_nodes) == 12
        assert len(self.layout.l2_nodes) == 12
        assert len(self.layout.mem_nodes) == 4

    def test_every_node_typed(self):
        assert set(self.layout.tile_of) == set(range(36))

    def test_memory_on_edges(self):
        m = Mesh(6, 6)
        for node in self.layout.mem_nodes:
            x, _ = m.coords(node)
            assert x in (0, 5)

    def test_bank_hash_deterministic_and_in_banks(self):
        for addr in range(200):
            bank = self.layout.bank_for_address(addr)
            assert bank in self.layout.l2_nodes
            assert bank == self.layout.bank_for_address(addr)

    def test_mem_for_bank_is_a_controller(self):
        for bank in self.layout.l2_nodes:
            assert self.layout.mem_for_bank(bank) in self.layout.mem_nodes

    def test_banks_for_accel_fraction(self):
        accel = self.layout.accel_nodes[0]
        few = self.layout.banks_for_accel(accel, 0.2)
        many = self.layout.banks_for_accel(accel, 1.0)
        assert len(few) == 2       # ceil-ish of 0.2 * 12
        assert len(many) == 12
        assert set(few) <= set(self.layout.l2_nodes)

    def test_banks_differ_across_accelerators(self):
        a0, a1 = self.layout.accel_nodes[:2]
        assert self.layout.banks_for_accel(a0, 0.25) != \
            self.layout.banks_for_accel(a1, 0.25)

    def test_mismatched_floorplan_rejected(self):
        with pytest.raises(ValueError):
            HeteroLayout(Mesh(4, 4), FLOORPLAN_6X6)


class TestGeneratedFloorplans:
    @pytest.mark.parametrize("size", [4, 8, 10])
    def test_scaled_layout_has_all_types(self, size):
        layout = default_layout(Mesh(size, size))
        assert layout.cpu_nodes
        assert layout.accel_nodes
        assert layout.l2_nodes
        assert layout.mem_nodes
        total = (len(layout.cpu_nodes) + len(layout.accel_nodes)
                 + len(layout.l2_nodes) + len(layout.mem_nodes))
        assert total == size * size

    def test_default_6x6_uses_paper_floorplan(self):
        layout = default_layout(Mesh(6, 6))
        assert len(layout.cpu_nodes) == 8


class TestTileType:
    def test_enum_values(self):
        assert TileType.CPU.value == "C"
        assert TileType.MEM.value == "M"

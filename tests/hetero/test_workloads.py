"""Workload profile tests (Table III calibration inputs)."""

import pytest

from repro.hetero.workloads import (
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    workload_mixes,
)


class TestBenchmarkSets:
    def test_eight_cpu_benchmarks(self):
        assert len(CPU_BENCHMARKS) == 8
        assert set(CPU_BENCHMARKS) == {"AMMP", "APPLU", "ART", "EQUAKE",
                                       "GAFORT", "MGRID", "SWIM",
                                       "WUPWISE"}

    def test_seven_gpu_benchmarks(self):
        assert len(GPU_BENCHMARKS) == 7
        assert set(GPU_BENCHMARKS) == {"BLACKSCHOLES", "HOTSPOT", "LIB",
                                       "LPS", "NN", "PATHFINDER", "STO"}

    def test_56_workload_mixes(self):
        mixes = workload_mixes()
        assert len(mixes) == 56
        assert len(set(mixes)) == 56


class TestTableIIITargets:
    @pytest.mark.parametrize("name,target", [
        ("BLACKSCHOLES", 0.18), ("HOTSPOT", 0.09), ("LIB", 0.20),
        ("LPS", 0.20), ("NN", 0.18), ("PATHFINDER", 0.13), ("STO", 0.05)])
    def test_injection_targets_match_table3(self, name, target):
        assert GPU_BENCHMARKS[name].inj_target == target

    def test_lib_has_fewest_communication_pairs(self):
        """The paper notes LIB has fewer communication pairs than other
        GPU applications."""
        lib = GPU_BENCHMARKS["LIB"].bank_fraction
        assert all(lib <= p.bank_fraction
                   for p in GPU_BENCHMARKS.values())

    def test_compute_gap_inversely_tracks_injection(self):
        fast = GPU_BENCHMARKS["LPS"]
        slow = GPU_BENCHMARKS["STO"]
        assert fast.compute_cycles < slow.compute_cycles

    def test_compute_cycles_positive(self):
        for p in GPU_BENCHMARKS.values():
            assert p.compute_cycles >= 1


class TestCPUProfiles:
    def test_memory_bound_ranking(self):
        """ART and SWIM are the memory-bound SPEC OMP applications."""
        rates = {n: p.miss_rate for n, p in CPU_BENCHMARKS.items()}
        top_two = sorted(rates, key=rates.get, reverse=True)[:2]
        assert set(top_two) == {"ART", "SWIM"}

    def test_compute_bound_have_high_ipc(self):
        assert CPU_BENCHMARKS["WUPWISE"].ipc > CPU_BENCHMARKS["ART"].ipc

    def test_mlp_positive(self):
        for p in CPU_BENCHMARKS.values():
            assert p.mlp >= 1
            assert 0 <= p.crit_fraction <= 1
            assert 0 <= p.l2_miss_ratio <= 1

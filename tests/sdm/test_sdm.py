"""SDM hybrid baseline tests (S12, Jerger et al.)."""

import pytest

from repro.config import scheme_config
from repro.core.circuit import ConnState
from repro.core.decision import always_circuit
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.topology import LOCAL
from repro.sdm.router import sdm_packet_size

from tests.conftest import build, drain, run_traffic


class Collector(Endpoint):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg, cycle):
        self.received.append((msg, cycle))


def sdm_net(width=4, height=4, seed=1):
    return build("hybrid_sdm_vc4", width, height, seed=seed)


def setup_plane_circuit(sim, net, src, dst, max_cycles=300):
    mgr = net.managers[src]
    mgr._maybe_setup(dst, sim.cycle)
    for _ in range(max_cycles):
        conn = mgr.connections.get(dst)
        if conn is not None and conn.state is ConnState.ACTIVE:
            return conn
        sim.step()
    return mgr.connections.get(dst)


class TestPacketSizes:
    def test_serialisation_onto_planes(self):
        """16-byte channel / 4 planes => 4-byte plane flits; a 64-byte
        line serialises into 16 flits (+1 head when packet-switched)."""
        cfg = scheme_config("hybrid_sdm_vc4")
        assert sdm_packet_size(cfg, "cs_data") == 16
        assert sdm_packet_size(cfg, "ps_data") == 17
        assert sdm_packet_size(cfg, "config") == 1

    def test_unknown_kind_rejected(self):
        cfg = scheme_config("hybrid_sdm_vc4")
        with pytest.raises(ValueError):
            sdm_packet_size(cfg, "bogus")


class TestSDMStructure:
    def test_vc_layout(self):
        _, net = sdm_net()
        r = net.router(0)
        assert r.planes == 4
        assert r.total_vcs == 4 * 4 + 1
        assert r.config_vc == 16
        assert r.plane_of_vc(0) == 0
        assert r.plane_of_vc(5) == 1
        assert r.plane_of_vc(15) == 3


class TestSDMPacketSwitched:
    def test_delivery_and_conservation(self):
        sim, net, sources = run_traffic("hybrid_sdm_vc4", "uniform_random",
                                        rate=0.15, warmup=0, measure=800)
        assert drain(sim, net, max_cycles=8000)
        generated = sum(s.messages_generated for s in sources)
        received = sum(s.messages_received for s in sources)
        assert received == generated > 0

    def test_serialisation_penalty_vs_wide_network(self):
        """At low load an SDM data packet takes longer than a full-width
        packet because of the 17-flit serialisation."""
        _, wide, _ = run_traffic("packet_vc4", "neighbor", 0.05,
                                 measure=1500)
        _, sdm, _ = run_traffic("hybrid_sdm_vc4", "neighbor", 0.05,
                                measure=1500)
        assert sdm.msg_latency.mean > wide.msg_latency.mean

    def test_packets_confined_to_one_plane(self):
        sim, net = sdm_net()
        sink = Collector()
        net.attach_endpoint(3, sink)
        msg = Message(src=0, dst=3, mclass=MessageClass.DATA,
                      size_flits=17, create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(300)
        assert len(sink.received) == 1


class TestSDMCircuits:
    def test_plane_reserved_end_to_end(self):
        sim, net = sdm_net()
        conn = setup_plane_circuit(sim, net, 0, 3)
        assert conn is not None and conn.state is ConnState.ACTIVE
        plane = conn.slot0  # plane index rides the slot field
        # walk the XY path checking plane reservations
        node, inport = 0, LOCAL
        seen = 0
        from repro.network.routing import xy_outport
        from repro.network.topology import opposite_port
        while node != 3:
            r = net.router(node)
            out = r.cs_route[inport][plane]
            assert out >= 0
            nxt = net.mesh.neighbor(node, out)
            node, inport = nxt, opposite_port(out)
            seen += 1
        assert net.router(3).cs_route[inport][plane] == LOCAL
        assert seen == net.mesh.hops(0, 3)

    def test_circuit_message_streams_on_plane(self):
        sim, net = sdm_net()
        mgr = net.managers[0]
        mgr.decision_fn = always_circuit()
        sink = Collector()
        net.attach_endpoint(3, sink)
        conn = setup_plane_circuit(sim, net, 0, 3)
        assert conn.state is ConnState.ACTIVE
        msg = Message(src=0, dst=3, mclass=MessageClass.DATA,
                      size_flits=17, create_cycle=sim.cycle)
        net.ni(0).send(msg)
        sim.run(300)
        assert [m.id for m, _ in sink.received] == [msg.id]
        assert net.ni(3).counters["cs_flit_ejected"] == 16
        assert net.cs_flit_fraction() > 0

    def test_circuit_count_limited_by_planes(self):
        """At most `planes` circuits can leave one node (the paper's
        core criticism of SDM)."""
        sim, net = sdm_net(6, 6)
        mgr = net.managers[0]
        ok = 0
        for dst in (1, 2, 3, 4, 5):
            conn = setup_plane_circuit(sim, net, 0, dst)
            if conn is not None and conn.state is ConnState.ACTIVE:
                ok += 1
        assert ok <= net.cfg.sdm.planes
        assert ok >= 2  # but several did succeed

    def test_teardown_frees_plane(self):
        sim, net = sdm_net()
        conn = setup_plane_circuit(sim, net, 0, 3)
        plane = conn.slot0
        net.managers[0].teardown(conn, sim.cycle)
        sim.run(200)
        assert net.router(0).cs_route[LOCAL][plane] < 0

    def test_ps_steals_idle_circuit_plane(self):
        """Packet flits may use a reserved plane's idle cycles."""
        sim, net = sdm_net()
        conn = setup_plane_circuit(sim, net, 0, 3)
        sink = Collector()
        net.attach_endpoint(3, sink)
        # circuit idle: PS messages can still use all planes
        for _ in range(8):
            msg = Message(src=0, dst=3, mclass=MessageClass.DATA,
                          size_flits=17, create_cycle=sim.cycle)
            net.ni(0).enqueue_ps(msg)
        sim.run(800)
        assert len(sink.received) == 8

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import scheme_config
from repro.network.network import build_network
from repro.sim.kernel import Simulator
from repro.traffic import attach_synthetic_sources, make_pattern


def build(scheme: str, width: int = 4, height: int = 4, seed: int = 1,
          slot_table_size: int = 128, **overrides):
    """Build a small network of the given scheme for tests."""
    cfg = scheme_config(scheme, width=width, height=height,
                        slot_table_size=slot_table_size, **overrides)
    sim = Simulator(seed=seed)
    net = build_network(cfg, sim)
    return sim, net


def run_traffic(scheme: str, pattern: str = "uniform_random",
                rate: float = 0.1, warmup: int = 500, measure: int = 1500,
                width: int = 4, height: int = 4, seed: int = 1,
                **overrides):
    """Run synthetic traffic and return (sim, net, sources)."""
    sim, net = build(scheme, width=width, height=height, seed=seed,
                     **overrides)
    pat = make_pattern(pattern, net.mesh, sim.rng)
    sources = attach_synthetic_sources(net, pat, injection_rate=rate,
                                       rng=sim.rng)
    sim.run(warmup)
    net.reset_stats()
    sim.run(measure)
    return sim, net, sources


def drain(sim, net, max_cycles: int = 5000) -> bool:
    """Stop sources and run until the network empties.  True on success."""
    for ni in net.interfaces:
        if ni.endpoint is not None:
            ni.endpoint.tick = lambda cycle: None  # silence the source
    for _ in range(max_cycles):
        if net.in_flight_flits() == 0:
            return True
        sim.step()
    return net.in_flight_flits() == 0


@pytest.fixture
def packet_net():
    return build("packet_vc4")


@pytest.fixture
def tdm_net():
    return build("hybrid_tdm_vc4")

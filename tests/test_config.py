"""Table-I configuration and scheme preset tests."""

import dataclasses

import pytest

from repro.config import (
    CACHE_LINE_BYTES,
    CircuitConfig,
    NetworkConfig,
    RouterConfig,
    SCHEMES,
    SDMConfig,
    SlotTableConfig,
    SupervisorConfig,
    VCGatingConfig,
    config_as_dict,
    scheme_config,
    table_i_summary,
)


class TestTableIDefaults:
    """The defaults must match Table I of the paper."""

    def test_topology_36_node_mesh(self):
        cfg = NetworkConfig()
        assert (cfg.width, cfg.height, cfg.num_nodes) == (6, 6, 36)

    def test_channel_width_16_bytes(self):
        assert RouterConfig().channel_width_bytes == 16

    def test_packet_sizes(self):
        cfg = NetworkConfig()
        assert cfg.packet_size("config") == 1
        assert cfg.packet_size("cs_data") == 4
        assert cfg.packet_size("ps_data") == 5
        assert cfg.packet_size("cs_vicinity") == 5
        assert cfg.packet_size("ctrl") == 1

    def test_slot_table_128_entries(self):
        assert SlotTableConfig().size == 128

    def test_vcs_and_depth(self):
        r = RouterConfig()
        assert r.num_vcs == 4
        assert r.vc_depth == 5

    def test_cache_line(self):
        assert CACHE_LINE_BYTES == 64
        assert NetworkConfig().data_flits_per_line == 4

    def test_table_i_summary_mentions_key_parameters(self):
        text = dict(table_i_summary(NetworkConfig()))
        assert "36-node" in text["Topology"]
        assert "16 Bytes" in text["Channel Width"]
        assert "128 entries" in text["Slot Tables"]
        assert "4/port" in text["Virtual Channels"]


class TestSchemePresets:
    def test_all_schemes_buildable(self):
        for scheme in SCHEMES:
            cfg = scheme_config(scheme)
            assert cfg.num_nodes == 36

    def test_packet_preset(self):
        cfg = scheme_config("packet_vc4")
        assert cfg.switching == "packet"
        assert not cfg.circuit.enabled

    def test_sdm_preset(self):
        cfg = scheme_config("hybrid_sdm_vc4")
        assert cfg.switching == "sdm"
        assert cfg.sdm.planes == 4

    def test_tdm_presets(self):
        vc4 = scheme_config("hybrid_tdm_vc4")
        assert vc4.switching == "tdm"
        assert not vc4.vc_gating.enabled
        assert not vc4.circuit.hitchhiker

        vct = scheme_config("hybrid_tdm_vct")
        assert vct.vc_gating.enabled

        hop = scheme_config("hybrid_tdm_hop_vc4")
        assert hop.circuit.hitchhiker and hop.circuit.vicinity

        hop_t = scheme_config("hybrid_tdm_hop_vct")
        assert hop_t.vc_gating.enabled and hop_t.circuit.hitchhiker

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            scheme_config("not_a_scheme")

    def test_overrides_applied(self):
        cfg = scheme_config("hybrid_tdm_vc4", width=8, height=8,
                            slot_table_size=256)
        assert cfg.num_nodes == 64
        assert cfg.slot_table.size == 256

    def test_config_as_dict_roundtrippable(self):
        d = config_as_dict(scheme_config("hybrid_tdm_vc4"))
        assert d["router"]["num_vcs"] == 4
        assert d["slot_table"]["size"] == 128


class TestValidation:
    def test_bad_mesh(self):
        with pytest.raises(ValueError):
            NetworkConfig(width=1)

    def test_bad_switching(self):
        with pytest.raises(ValueError):
            NetworkConfig(switching="quantum")

    def test_bad_router(self):
        with pytest.raises(ValueError):
            RouterConfig(num_vcs=0)
        with pytest.raises(ValueError):
            RouterConfig(vc_depth=0)

    def test_bad_slot_table(self):
        with pytest.raises(ValueError):
            SlotTableConfig(size=1)
        with pytest.raises(ValueError):
            SlotTableConfig(reserve_cap=0.0)
        with pytest.raises(ValueError):
            SlotTableConfig(initial_active=1)

    def test_bad_gating_thresholds(self):
        with pytest.raises(ValueError):
            VCGatingConfig(threshold_low=0.8, threshold_high=0.5)

    def test_bad_sdm(self):
        with pytest.raises(ValueError):
            SDMConfig(planes=1)

    def test_bad_circuit(self):
        with pytest.raises(ValueError):
            CircuitConfig(duration=0)

    def test_unknown_packet_kind(self):
        with pytest.raises(ValueError):
            NetworkConfig().packet_size("mystery")

    def test_configs_are_replaceable(self):
        cfg = NetworkConfig()
        cfg2 = dataclasses.replace(cfg, width=8)
        assert cfg2.width == 8 and cfg.width == 6


class TestSupervisorConfigValidation:
    def test_heartbeat_slower_than_lease_rejected(self):
        """A worker heartbeating slower than its lease TTL would be
        reclaimed as dead while healthy — refuse at construction, not
        mid-sweep."""
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            SupervisorConfig(lease_ttl_s=1.0, heartbeat_interval_s=1.0)
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            SupervisorConfig(lease_ttl_s=1.0, heartbeat_interval_s=5.0)

    def test_lease_needs_two_heartbeats_of_slack(self):
        with pytest.raises(ValueError, match="at least 2x"):
            SupervisorConfig(lease_ttl_s=1.5, heartbeat_interval_s=1.0)
        SupervisorConfig(lease_ttl_s=2.0, heartbeat_interval_s=1.0)

    def test_lease_zero_disables_the_coupling(self):
        SupervisorConfig(lease_ttl_s=0.0, heartbeat_interval_s=60.0)

    def test_nonpositive_heartbeat_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(lease_ttl_s=-1.0)

"""CLI and inspection utility tests."""

import pytest

from repro import inspect as insp
from repro.cli import build_parser, main

from tests.conftest import build, run_traffic


class TestInspect:
    def test_network_summary_fields(self):
        sim, net, _ = run_traffic("hybrid_tdm_vc4", "tornado", 0.2,
                                  warmup=300, measure=700)
        text = insp.network_summary(net)
        assert "TDM network" in text
        assert "TDM wheel" in text
        assert "circuit-switched flit fraction" in text

    def test_slot_table_dump_shows_reservations(self):
        from tests.core.test_circuit import setup_connection
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        setup_connection(sim, net, 0, 3)
        text = insp.slot_table_dump(net, 0)
        assert "router 0" in text
        assert "reserved entries: 4" in text

    def test_slot_table_dump_on_packet_router(self):
        _, net = build("packet_vc4")
        assert "no slot tables" in insp.slot_table_dump(net, 0)

    def test_occupancy_heatmap_dimensions(self):
        _, net = build("packet_vc4", 3, 5)
        lines = insp.occupancy_heatmap(net).splitlines()
        assert len(lines) == 6  # title + 5 rows
        assert all(len(l.split()) == 3 for l in lines[1:])

    def test_vc_power_map(self):
        sim, net = build("hybrid_tdm_vct")
        sim.run(2500)
        text = insp.vc_power_map(net)
        assert "2" in text  # gated to min_vcs when idle

    def test_circuit_listing(self):
        from tests.core.test_circuit import setup_connection
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        setup_connection(sim, net, 0, 3)
        text = insp.circuit_listing(net)
        assert "0 -> 3" in text
        assert "total: 1" in text

    def test_circuit_listing_packet_network(self):
        _, net = build("packet_vc4")
        assert "no circuit control plane" in insp.circuit_listing(net)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("sweep", "energy", "hetero", "table3", "fig",
                    "inspect"):
            args = parser.parse_args([cmd] if cmd not in ("fig",)
                                     else [cmd, "fig5"])
            assert args.command == cmd

    def test_sweep_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Load-latency sweep" in out
        assert "packet_vc4" in out

    def test_energy_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rc = main(["energy", "tornado", "--rate", "0.2"])
        assert rc == 0
        assert "save_%" in capsys.readouterr().out

    def test_inspect_command_runs(self, capsys):
        rc = main(["inspect", "--cycles", "300", "--pattern", "neighbor"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "buffer occupancy" in out

    def test_csv_written(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        csv = str(tmp_path / "sweep.csv")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--csv", csv])
        assert rc == 0
        assert open(csv).readline().startswith("scheme,")

    def test_fig_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig", "fig7"])

    def test_verify_replay_command_passes(self, capsys):
        rc = main(["verify-replay", "--schemes", "packet_vc4",
                   "--pre", "150", "--post", "150",
                   "--width", "3", "--height", "3",
                   "--slot-table-size", "32"])
        assert rc == 0
        assert "PASS packet_vc4" in capsys.readouterr().out

    def test_supervised_sweep_requires_run_dir(self, capsys):
        rc = main(["sweep", "neighbor", "--supervised"])
        assert rc == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_supervised_sweep_and_resume(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        run_dir = str(tmp_path / "run")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--supervised",
                   "--run-dir", run_dir])
        assert rc == 0
        assert "1/1 points completed" in capsys.readouterr().out
        rc = main(["resume", run_dir])
        assert rc == 0
        assert "(1 already done)" in capsys.readouterr().out

    def test_resume_rejects_corrupt_sweep_spec(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        run_dir = str(tmp_path / "run")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--supervised",
                   "--run-dir", run_dir])
        assert rc == 0
        capsys.readouterr()
        import json as json_mod
        import os
        path = os.path.join(run_dir, "sweep.json")
        spec = json_mod.load(open(path))
        spec["points"][0]["rate"] = 0.9
        json_mod.dump(spec, open(path, "w"))
        rc = main(["resume", run_dir])
        assert rc == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_chaos_command_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rc = main(["chaos", "--run-dir", str(tmp_path / "c"),
                   "--points", "2", "--cycles", "2", "--jobs", "2",
                   "--kill-rate", "0", "--corrupt-rate", "0.5",
                   "--diskfull-rate", "0", "--supervisor-kill-rate", "0",
                   "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CHAOS PASS" in out

    def test_run_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rc = main(["run", "packet_vc4", "--pattern", "neighbor",
                   "--rate", "0.1", "--width", "4", "--height", "4",
                   "--warmup", "200", "--measure", "400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run: packet_vc4" in out
        assert "trace:" not in out  # no obs flags -> no obs summary

    def test_run_command_with_metrics(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        metrics = str(tmp_path / "m.json")
        rc = main(["run", "packet_vc4", "--pattern", "neighbor",
                   "--rate", "0.1", "--width", "4", "--height", "4",
                   "--warmup", "200", "--measure", "400",
                   "--metrics", metrics, "--metrics-interval", "50"])
        assert rc == 0
        assert f"wrote {metrics}" in capsys.readouterr().out
        doc = json.load(open(metrics))
        assert doc["interval"] == 50
        assert doc["samples"]

    def test_trace_command_writes_valid_artifacts(self, tmp_path, capsys,
                                                  monkeypatch):
        import json

        from repro.obs import validate_jsonl

        monkeypatch.setenv("REPRO_SCALE", "0.1")
        prefix = str(tmp_path / "tr")
        rc = main(["trace", "hybrid_tdm_vc4", "--out", prefix])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert f"wrote {prefix}.jsonl" in out
        assert validate_jsonl(f"{prefix}.jsonl") > 0
        doc = json.load(open(f"{prefix}.chrome.json"))
        assert doc["traceEvents"]

    def test_sweep_with_metrics_dumps_per_point(self, tmp_path, capsys,
                                                monkeypatch):
        import json

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        out_dir = str(tmp_path / "obs")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--metrics",
                   "--run-dir", out_dir])
        assert rc == 0
        metrics = tmp_path / "obs" / "packet_vc4-neighbor-0.1.metrics.json"
        assert metrics.exists()
        assert json.load(open(metrics))["samples"]


class TestSweepDryRun:
    def test_dry_run_prints_points_and_runs_nothing(self, tmp_path,
                                                    capsys):
        run_dir = str(tmp_path / "run")
        rc = main(["sweep", "neighbor", "--rates", "0.1,0.2",
                   "--schemes", "packet_vc4", "--supervised",
                   "--run-dir", run_dir, "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Dry run: resolved sweep points" in out
        assert "2 point(s)" in out
        assert "sweep config hash" in out
        assert "dry run: nothing executed" in out
        import os
        assert not os.path.exists(run_dir)

    def test_dry_run_hash_matches_real_run(self, tmp_path, capsys,
                                           monkeypatch):
        """The printed config hash must equal what a real supervised
        run records — otherwise the dry run lies about resumability."""
        import json

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--dry-run"])
        assert rc == 0
        printed = [line for line in capsys.readouterr().out.splitlines()
                   if "sweep config hash" in line][0].split()[-1]
        run_dir = str(tmp_path / "run")
        rc = main(["sweep", "neighbor", "--rates", "0.1",
                   "--schemes", "packet_vc4", "--supervised",
                   "--run-dir", run_dir])
        assert rc == 0
        capsys.readouterr()
        from repro.harness import store as hstore
        doc = hstore.read_json_self_hashed(f"{run_dir}/sweep.json")
        assert doc["config_hash"] == printed

    def test_dry_run_rejects_unknown_pattern(self, capsys):
        rc = main(["sweep", "vortex", "--dry-run"])
        assert rc == 2
        assert "unknown pattern" in capsys.readouterr().err

    def test_dry_run_rejects_bad_supervisor_config(self, tmp_path,
                                                   capsys):
        rc = main(["sweep", "neighbor", "--supervised",
                   "--run-dir", str(tmp_path / "run"),
                   "--lease-ttl", "1", "--heartbeat-interval", "5",
                   "--dry-run"])
        assert rc == 2
        assert "heartbeat" in capsys.readouterr().err


class TestExitCodes:
    """One uniform exit-code table across every command (README)."""

    def test_classification_table(self):
        import urllib.error

        from repro.cli import (EXIT_CONFIG, EXIT_TRANSIENT,
                               _classify_exit)
        from repro.harness.supervisor import SweepConfigError
        from repro.service.client import ServiceError
        from repro.service.jobs import JobSpecError

        assert _classify_exit(SweepConfigError("x")) == EXIT_CONFIG
        assert _classify_exit(JobSpecError("x")) == EXIT_CONFIG
        assert _classify_exit(ServiceError(400, "bad")) == EXIT_CONFIG
        assert _classify_exit(ServiceError(429, "slow down")) \
            == EXIT_TRANSIENT
        assert _classify_exit(ServiceError(503, "draining")) \
            == EXIT_TRANSIENT
        assert _classify_exit(ServiceError(500, "boom")) \
            == EXIT_TRANSIENT
        assert _classify_exit(ConnectionRefusedError()) == EXIT_TRANSIENT
        assert _classify_exit(urllib.error.URLError("down")) \
            == EXIT_TRANSIENT
        assert _classify_exit(ValueError("bug")) is None

    def test_interrupt_maps_to_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_sweep", boom)
        assert cli.main(["sweep"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_unreachable_service_is_transient(self, capsys):
        rc = main(["jobs", "--url", "http://127.0.0.1:9/"])
        assert rc == 3
        assert "error:" in capsys.readouterr().err

    def test_genuine_bug_propagates(self, monkeypatch):
        import repro.cli as cli

        def boom(args):
            raise RuntimeError("bug, not an exit code")

        monkeypatch.setattr(cli, "cmd_sweep", boom)
        with pytest.raises(RuntimeError):
            cli.main(["sweep"])


class TestHeteroCLI:
    def test_record_replay_roundtrip(self, tmp_path, capsys):
        prefix = str(tmp_path / "mix")
        rc = main(["hetero", "ART", "BLACKSCHOLES",
                   "--schemes", "hybrid_tdm_vc4",
                   "--warmup", "300", "--measure", "800",
                   "--record", prefix])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recorded" in out and prefix in out
        rc = main(["hetero", "--replay", prefix,
                   "--schemes", "packet_vc4,hybrid_tdm_vc4",
                   "--warmup", "300", "--measure", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Trace replay" in out
        assert "packet_vc4" in out and "hybrid_tdm_vc4" in out

    def test_phased_flag_runs(self, capsys):
        rc = main(["hetero", "ART", "BLACKSCHOLES",
                   "--schemes", "packet_vc4", "--phased",
                   "--policy", "feedback",
                   "--warmup", "200", "--measure", "500"])
        assert rc == 0
        assert "Heterogeneous mix" in capsys.readouterr().out

    def test_bench_unknown_scenario_is_config_error(self, capsys):
        rc = main(["bench", "--scenarios", "not_a_scenario"])
        assert rc == 2
        assert "unknown bench scenario" in capsys.readouterr().err

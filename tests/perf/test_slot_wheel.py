"""Edge cases of the precomputed TDM slot-advance table.

``SlotClock.advance2`` caches ``(s + 2) mod active`` for every live slot
so the per-hop advance in the circuit-setup walk is a list index instead
of a modulo.  The table is only correct while it matches the active
wheel size, so resizes (dynamic granularity adjustment and snapshot
restore both go through ``set_active``) must rebuild it.
"""

from __future__ import annotations

import pytest

from repro.core.slot_table import SlotClock


class TestAdvanceTable:
    @pytest.mark.parametrize("active", [2, 3, 5, 32, 64, 128])
    def test_matches_modulo_for_every_slot(self, active):
        clock = SlotClock(128, active=active)
        assert len(clock.advance2) == active
        for s in range(active):
            assert clock.advance2[s] == (s + 2) % active

    def test_wraparound_at_largest_table_size(self):
        # the two highest slots of a full-size wheel wrap to 0 and 1;
        # an off-by-one here would send a setup walk to a dead slot
        clock = SlotClock(128)
        assert clock.advance2[126] == 0
        assert clock.advance2[127] == 1
        assert clock.advance2[0] == 2

    def test_minimum_wheel_is_identity(self):
        # active == 2: +2 mod 2 lands back on the same slot
        clock = SlotClock(2)
        assert clock.advance2 == [0, 1]


class TestResizeInvalidation:
    def test_mid_epoch_resize_rebuilds_table(self):
        clock = SlotClock(64, active=64)
        assert clock.advance2[63] == 1
        # dynamic granularity adjustment shrinks the wheel mid-run
        clock.set_active(16)
        assert len(clock.advance2) == 16
        for s in range(16):
            assert clock.advance2[s] == (s + 2) % 16
        # growing back must not resurrect the old 64-entry map
        clock.set_active(32)
        assert len(clock.advance2) == 32
        assert clock.advance2[30] == 0
        assert clock.advance2[31] == 1

    def test_direct_attribute_write_also_rebuilds(self):
        # restore paths and older tests assign ``clock.active`` directly;
        # the __setattr__ hook must keep the table in sync regardless
        clock = SlotClock(64, active=64)
        clock.active = 8
        assert len(clock.advance2) == 8
        assert clock.advance2[7] == 1

    def test_resize_does_not_bump_generation(self):
        # generation bumping stays with the dynamic-resize caller;
        # a snapshot restore resizes without bumping
        clock = SlotClock(64)
        gen = clock.generation
        clock.set_active(8)
        assert clock.generation == gen

    def test_resize_validates_range(self):
        clock = SlotClock(64)
        with pytest.raises(ValueError):
            clock.set_active(1)
        with pytest.raises(ValueError):
            clock.set_active(65)
        # failed resize leaves the table intact
        assert len(clock.advance2) == 64

    def test_advance_consistent_with_slot_mapping(self):
        # walking two cycles forward on the wheel must agree with the
        # precomputed advance, before and after a resize
        clock = SlotClock(32, active=20)
        for cycle in range(50):
            s = clock.slot(cycle)
            assert clock.advance2[s] == clock.slot(cycle + 2)
        clock.set_active(12)
        for cycle in range(50):
            s = clock.slot(cycle)
            assert clock.advance2[s] == clock.slot(cycle + 2)

"""Flit free-list pooling must be behaviour-invisible.

The pool recycles flit *objects*; nothing about flit *contents*, RNG
draws, stats or snapshot hashes may change when it is on.  These tests
run the same workload with the pool on and off and require identical
results and state hashes, and separately check that the pool is
actually exercised (a pool that never recycles would trivially pass).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import scheme_config
from repro.harness.runner import prepare_synthetic, run_synthetic
from repro.network.flit import enable_flit_pool, flit_pool_size
from repro.sim.checkpoint import state_hash


@pytest.fixture(autouse=True)
def _pool_off_after():
    yield
    enable_flit_pool(False)


def _cfg(scheme, pooled):
    cfg = scheme_config(scheme, width=4, height=4, slot_table_size=32)
    return dataclasses.replace(cfg, flit_pool=pooled)


@pytest.mark.parametrize("scheme", ["packet_vc4", "hybrid_tdm_vc4"])
def test_pool_preserves_results(scheme):
    kw = dict(warmup=200, measure=400, seed=3,
              width=4, height=4, slot_table_size=32)
    plain = run_synthetic(scheme, "uniform_random", 0.2,
                          cfg=_cfg(scheme, False), **kw)
    pooled = run_synthetic(scheme, "uniform_random", 0.2,
                           cfg=_cfg(scheme, True), **kw)
    assert pooled.messages_delivered == plain.messages_delivered
    assert pooled.avg_latency == plain.avg_latency
    assert pooled.p99_latency == plain.p99_latency
    assert pooled.accepted == plain.accepted
    assert pooled.energy.total == plain.energy.total


def test_pool_preserves_state_hashes():
    hashes = {}
    for pooled in (False, True):
        sim, net, _src = prepare_synthetic(
            "hybrid_tdm_vc4", "uniform_random", 0.2, seed=1,
            width=4, height=4, slot_table_size=32,
            cfg=_cfg("hybrid_tdm_vc4", pooled))
        hs = []
        for _ in range(4):
            sim.run(sim.cycle + 100)
            hs.append(state_hash(sim.state_dict()))
        hashes[pooled] = hs
    assert hashes[False] == hashes[True], \
        "pooled flits leaked into snapshot-visible state"


def test_pool_actually_recycles():
    sim, _net, _src = prepare_synthetic(
        "hybrid_tdm_vc4", "uniform_random", 0.25, seed=1,
        width=4, height=4, slot_table_size=32,
        cfg=_cfg("hybrid_tdm_vc4", True))
    sim.run(400)
    assert flit_pool_size() > 0, \
        "no flit was ever released back to the pool"


def test_build_network_disables_pool_when_unconfigured():
    # a pooled build followed by a default build must leave the pool
    # off — the flag is process-global and the last build wins
    prepare_synthetic("hybrid_tdm_vc4", "uniform_random", 0.2, seed=1,
                      width=4, height=4, slot_table_size=32,
                      cfg=_cfg("hybrid_tdm_vc4", True))
    prepare_synthetic("hybrid_tdm_vc4", "uniform_random", 0.2, seed=1,
                      width=4, height=4, slot_table_size=32)
    assert flit_pool_size() == 0
    from repro.network import flit as flit_mod
    assert flit_mod._flit_pool is None

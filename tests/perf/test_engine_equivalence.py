"""Differential equivalence: optimised engines vs the legacy oracle.

The fast engine is allowed to skip work — and the batch engine to
fast-forward whole stretches — only when skipping is unobservable.
These tests enforce that with an exact oracle: the same workload,
built from the same seed, must produce bit-identical canonical state
hashes under every engine at every checkpoint, with the run-everything
legacy scheduler as the baseline.
"""

from __future__ import annotations

import pytest

from repro.config import SCHEMES
from repro.harness.verify import verify_equivalence

ALL_SCHEMES = sorted(SCHEMES)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_engines_equivalent_under_load(scheme):
    report = verify_equivalence(scheme, rate=0.12, cycles=200,
                                interval=100)
    assert report.ok, report.mismatches
    assert report.engines == ("legacy", "fast", "batch")
    assert report.checkpoints == 2
    assert report.first_divergence == -1
    assert len(set(report.final_hashes.values())) == 1
    # back-compat accessors from the two-engine report format
    assert report.hash_final_legacy == report.hash_final_fast
    assert report.hash_final_legacy == report.final_hashes["batch"]


@pytest.mark.parametrize("scheme",
                         ["packet_vc4", "hybrid_tdm_vc4", "hybrid_sdm_vc4"])
def test_engines_equivalent_through_drain(scheme):
    """Burst then stop the sources: the drain and the quiescent tail are
    where the fast engine sleeps components and the batch engine
    fast-forwards, so equivalence there is the non-trivial half of the
    property."""
    report = verify_equivalence(scheme, rate=0.25, cycles=400,
                                interval=100, stop_cycle=100)
    assert report.ok, report.mismatches
    assert report.checkpoints == 4


def test_engine_subset_is_selectable():
    report = verify_equivalence("packet_vc4", cycles=100, interval=100,
                                engines=("legacy", "batch"))
    assert report.ok, report.mismatches
    assert report.engines == ("legacy", "batch")
    assert set(report.final_hashes) == {"legacy", "batch"}
    # the fast engine wasn't run, so its back-compat accessor is empty
    assert report.hash_final_fast == ""


def test_rejects_degenerate_engine_lists():
    with pytest.raises(ValueError):
        verify_equivalence("packet_vc4", cycles=100, engines=("fast",))
    with pytest.raises(ValueError):
        verify_equivalence("packet_vc4", cycles=100,
                           engines=("legacy", "legacy"))


def test_divergence_is_reported_not_swallowed(monkeypatch):
    """Force a divergence and check the report localises it — both the
    cycle and which engine broke from the baseline."""
    from repro.harness import verify as verify_mod

    real_hash = verify_mod.state_hash
    calls = {"n": 0}

    def corrupting_hash(tree):
        calls["n"] += 1
        h = real_hash(tree)
        # second run (fast), second checkpoint -> flip the hash
        return "corrupt" + h if calls["n"] == 4 else h

    monkeypatch.setattr(verify_mod, "state_hash", corrupting_hash)
    report = verify_equivalence("packet_vc4", cycles=200, interval=100)
    assert not report.ok
    assert report.first_divergence == 200
    assert report.divergent_engines == ["fast"]
    assert any("state hash at cycle 200" in m for m in report.mismatches)
    assert any("fast" in m for m in report.mismatches)

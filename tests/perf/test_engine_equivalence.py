"""Differential equivalence: activity-tracked engine vs legacy engine.

The fast engine is allowed to skip work only when skipping is
unobservable.  These tests enforce that with an exact oracle: the same
workload, built from the same seed, must produce bit-identical
canonical state hashes under both engines at every checkpoint.
"""

from __future__ import annotations

import pytest

from repro.config import SCHEMES
from repro.harness.verify import verify_equivalence

ALL_SCHEMES = sorted(SCHEMES)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_engines_equivalent_under_load(scheme):
    report = verify_equivalence(scheme, rate=0.12, cycles=200,
                                interval=100)
    assert report.ok, report.mismatches
    assert report.checkpoints == 2
    assert report.first_divergence == -1
    assert report.hash_final_legacy == report.hash_final_fast


@pytest.mark.parametrize("scheme",
                         ["packet_vc4", "hybrid_tdm_vc4", "hybrid_sdm_vc4"])
def test_engines_equivalent_through_drain(scheme):
    """Burst then stop the sources: the drain and the quiescent tail are
    where the fast engine actually sleeps components, so equivalence
    there is the non-trivial half of the property."""
    report = verify_equivalence(scheme, rate=0.25, cycles=400,
                                interval=100, stop_cycle=100)
    assert report.ok, report.mismatches
    assert report.checkpoints == 4


def test_divergence_is_reported_not_swallowed(monkeypatch):
    """Force a divergence and check the report localises it."""
    from repro.harness import verify as verify_mod

    real_hash = verify_mod.state_hash
    calls = {"n": 0}

    def corrupting_hash(tree):
        calls["n"] += 1
        h = real_hash(tree)
        # second run (fast), second checkpoint -> flip the hash
        return "corrupt" + h if calls["n"] == 4 else h

    monkeypatch.setattr(verify_mod, "state_hash", corrupting_hash)
    report = verify_equivalence("packet_vc4", cycles=200, interval=100)
    assert not report.ok
    assert report.first_divergence == 200
    assert any("state hash at cycle 200" in m for m in report.mismatches)

"""Batch engine: fast-forward exactness, layout, replicas, N-way report.

The batch engine's speed comes from skipping provably quiescent
cycles.  The hash equivalence itself is enforced scheme-by-scheme in
``test_engine_equivalence.py``; this file covers the machinery around
it — the skip actually engages (otherwise the equivalence tests would
vacuously pass on an engine that never fast-forwards), the compiled
struct-of-arrays layout stays consistent with the object graph, the
batched-replica mode is bit-identical to solo runs, and the N-engine
divergence report (the generalisation away from the old two-engine
format) localises correctly.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import prepare_synthetic
from repro.harness.verify import compare_engine_runs
from repro.sim.batch.replica import ReplicaSet
from repro.sim.checkpoint import capture_state, reset_id_counters, state_hash
from repro.sim.kernel import Simulator, default_engine


def _build(engine: str, scheme: str = "hybrid_tdm_vct", rate: float = 0.12,
           seed: int = 3, stop_cycle: int = 150):
    reset_id_counters()
    sim, net, sources = prepare_synthetic(
        scheme, "uniform_random", rate, seed=seed, width=4, height=4,
        slot_table_size=32, engine=engine)
    for src in sources:
        src.stop_cycle = stop_cycle
    return sim, net


# ---------------------------------------------------------------------------
# fast-forward engagement and exactness
# ---------------------------------------------------------------------------
class TestFastForward:
    def test_skip_engages_on_quiescent_tail(self):
        sim, net = _build("batch")
        sim.run(600)
        stats = sim._batch.stats()
        assert stats["skips"] > 0, "batch engine never fast-forwarded"
        assert stats["cycles_skipped"] > 0
        # every cycle is accounted to exactly one lane: object step,
        # fast-forward skip, or vectorized window
        assert (stats["steps"] + stats["cycles_skipped"]
                + stats["stepper"]["vector_cycles"]) == 600
        assert sim.cycle == 600

    def test_skipped_run_matches_stepped_run(self):
        sim_b, net_b = _build("batch")
        sim_b.run(600)
        assert sim_b._batch.cycles_skipped > 0
        sim_f, net_f = _build("fast")
        sim_f.run(600)
        assert (state_hash(capture_state(sim_b, net_b))
                == state_hash(capture_state(sim_f, net_f)))

    def test_idle_network_is_one_jump_per_run_call(self):
        """With gating disabled and zero traffic the whole run segment
        collapses into a single skip."""
        sim, net = _build("batch", scheme="packet_vc4", rate=0.0)
        sim.run(50)       # let construction-time activity settle
        before = sim._batch.skips
        sim.run(4000)
        stats = sim._batch.stats()
        assert stats["skips"] - before == 1
        assert sim.cycle == 4050

    def test_gating_scheme_stops_at_epoch_boundaries(self):
        """A vct run's skips must land on the gating epoch clock, not
        jump across it (the controller's epoch tick is a real event)."""
        sim, net = _build("batch")           # hybrid_tdm_vct, epoch 256
        sim.run(600)
        stats = sim._batch.stats()
        # the tail from ~drain to 600 spans at least one 256-cycle
        # epoch boundary, so it cannot be a single jump
        assert stats["skips"] >= 2

    def test_faulted_run_never_skips(self):
        """Fault injection disables sleeping; the batch engine must
        degrade to stepping, not skip over unmodelled fault events."""
        from dataclasses import replace

        from repro.config import FaultConfig, scheme_config
        reset_id_counters()
        cfg = scheme_config("packet_vc4", width=3, height=3,
                            slot_table_size=32)
        cfg = replace(cfg, faults=FaultConfig(enabled=True,
                                              link_fail_count=1,
                                              link_fail_cycle=40))
        sim, net, _ = prepare_synthetic("packet_vc4", "uniform_random",
                                        0.1, seed=1, width=3, height=3,
                                        slot_table_size=32, cfg=cfg,
                                        engine="batch")
        sim.run(300)
        assert sim._batch.stats()["skips"] == 0


# ---------------------------------------------------------------------------
# compiled struct-of-arrays layout
# ---------------------------------------------------------------------------
class TestLayout:
    def test_layout_consistent_with_object_graph(self):
        sim, net = _build("batch")
        for _ in range(4):
            sim.run(100)
            sim._batch.layout.assert_consistent(sim.cycle)

    def test_layout_sees_traffic_then_drain(self):
        sim, net = _build("batch", stop_cycle=150)
        sim.run(100)
        layout = sim._batch.layout
        layout.refresh()
        assert not layout.datapath_empty(sim.cycle), \
            "mid-burst network reported empty"
        sim.run(500)
        layout.refresh()
        assert layout.datapath_empty(sim.cycle)
        summary = layout.summary()
        assert summary["buffered_flits"] == 0
        assert summary["flits_on_links"] == 0

    def test_engine_without_network_runs_but_never_skips(self):
        """A bare Simulator (no build_network) has nothing to prove
        quiescence over besides its objects; with zero registered
        objects it may trivially skip, but with any unclassified object
        it must not."""
        from repro.sim.kernel import SimObject

        class Ticker(SimObject):
            count = 0

            def control(self, cycle):
                type(self).count += 1

        sim = Simulator(seed=1, engine="batch")
        sim.add(Ticker())
        sim.run(500)
        assert Ticker.count == 500, "batch engine skipped a blocker"


# ---------------------------------------------------------------------------
# batched replicas
# ---------------------------------------------------------------------------
class TestReplicas:
    SEEDS = (3, 7, 11)

    def _solo_hash(self, seed: int, chunks: int, chunk: int) -> str:
        reset_id_counters()
        sim, net, sources = prepare_synthetic(
            "hybrid_tdm_vc4", "uniform_random", 0.1, seed=seed,
            width=4, height=4, slot_table_size=32, engine="batch")
        for src in sources:
            src.stop_cycle = 200
        for _ in range(chunks):
            sim.run(chunk)
        return state_hash(capture_state(sim, net))

    def test_replicas_bit_identical_to_solo_runs(self):
        rs = ReplicaSet.synthetic("hybrid_tdm_vc4", "uniform_random", 0.1,
                                  self.SEEDS, width=4, height=4,
                                  slot_table_size=32, stop_cycle=200)
        rs.run(400, chunk=50)
        expected = [self._solo_hash(seed, chunks=8, chunk=50)
                    for seed in self.SEEDS]
        assert rs.hashes() == expected
        assert rs.active_count == len(self.SEEDS)
        assert list(rs.cycles_run) == [400] * len(self.SEEDS)

    def test_chunk_size_does_not_change_results(self):
        """Rotation granularity is pure scheduling: per-replica id
        banking makes a 300-cycle run in 25-cycle slices land on the
        same state as one uninterrupted 300-cycle slice."""
        a = ReplicaSet.synthetic("packet_vc4", "uniform_random", 0.1,
                                 self.SEEDS, stop_cycle=100)
        a.run(300, chunk=25)
        b = ReplicaSet.synthetic("packet_vc4", "uniform_random", 0.1,
                                 self.SEEDS, stop_cycle=100)
        b.run(300, chunk=300)
        assert a.hashes() == b.hashes()

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSet.synthetic("packet_vc4", "uniform_random", 0.1, [])


# ---------------------------------------------------------------------------
# N-engine divergence report (regression for the two-engine assumption)
# ---------------------------------------------------------------------------
class TestCompareEngineRuns:
    ENGINES = ("legacy", "fast", "batch")

    @staticmethod
    def _fps(n):
        return [{"cycle": (i + 1) * 100, "messages_delivered": 5 * i}
                for i in range(n)]

    def test_all_equal_reports_no_divergence(self):
        hashes = {e: ["h1", "h2", "h3"] for e in self.ENGINES}
        fps = {e: self._fps(3) for e in self.ENGINES}
        cycle, divergent, mismatches = compare_engine_runs(
            self.ENGINES, hashes, fps, interval=100, cycles=300)
        assert (cycle, divergent, mismatches) == (-1, [], [])

    def test_single_engine_divergence_is_attributed(self):
        hashes = {"legacy": ["h1", "h2", "h3"],
                  "fast": ["h1", "h2", "h3"],
                  "batch": ["h1", "hX", "hY"]}
        fps = {e: self._fps(3) for e in self.ENGINES}
        fps["batch"] = self._fps(3)
        fps["batch"][1] = dict(fps["batch"][1], messages_delivered=99)
        cycle, divergent, mismatches = compare_engine_runs(
            self.ENGINES, hashes, fps, interval=100, cycles=300)
        assert cycle == 200
        assert divergent == ["batch"]
        assert any("batch" in m and "cycle 200" in m for m in mismatches)
        assert any("messages_delivered" in m for m in mismatches)

    def test_multiple_engines_can_diverge_at_one_checkpoint(self):
        """The old report format could only name one 'other' engine;
        the generalisation must attribute a shared divergence to every
        engine that broke from the baseline."""
        hashes = {"legacy": ["h1", "h2"],
                  "fast": ["h1", "hF"],
                  "batch": ["h1", "hB"]}
        fps = {e: self._fps(2) for e in self.ENGINES}
        cycle, divergent, mismatches = compare_engine_runs(
            self.ENGINES, hashes, fps, interval=100, cycles=200)
        assert cycle == 200
        assert divergent == ["fast", "batch"]
        assert len([m for m in mismatches if "state hash" in m]) == 2

    def test_truncated_interval_localises_to_run_end(self):
        hashes = {"legacy": ["h1", "h2"], "fast": ["h1", "hX"]}
        fps = {e: self._fps(2) for e in ("legacy", "fast")}
        cycle, divergent, _ = compare_engine_runs(
            ("legacy", "fast"), hashes, fps, interval=100, cycles=150)
        assert cycle == 150          # second checkpoint is the 150 mark
        assert divergent == ["fast"]

    def test_mismatched_checkpoint_counts_rejected(self):
        hashes = {"legacy": ["h1", "h2"], "fast": ["h1"]}
        fps = {"legacy": self._fps(2), "fast": self._fps(1)}
        with pytest.raises(ValueError):
            compare_engine_runs(("legacy", "fast"), hashes, fps,
                                interval=100, cycles=200)

    def test_fewer_than_two_engines_rejected(self):
        with pytest.raises(ValueError):
            compare_engine_runs(("legacy",), {"legacy": ["h1"]},
                                {"legacy": self._fps(1)},
                                interval=100, cycles=100)


# ---------------------------------------------------------------------------
# engine selection plumbing
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_env_override_selects_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert default_engine() == "batch"
        sim, net, _ = prepare_synthetic("packet_vc4", "uniform_random",
                                        0.0, seed=1, width=3, height=3,
                                        slot_table_size=32)
        assert sim.engine == "batch"
        assert sim._batch is not None

    def test_env_override_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError):
            default_engine()

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        sim, _, _ = prepare_synthetic("packet_vc4", "uniform_random",
                                      0.0, seed=1, width=3, height=3,
                                      slot_table_size=32, engine="legacy")
        assert sim.engine == "legacy"
        assert sim._batch is None

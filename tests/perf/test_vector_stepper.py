"""Vectorized active-window datapath: engagement, exactness, spills.

The scheme-by-scheme hash equivalence in ``test_engine_equivalence.py``
runs under the default profitability gate, where small test meshes
never enter the vector lane — so this file forces the lane on
(``REPRO_BATCH_VECTOR=force``) and covers what that suite then cannot:
the window actually opens on loaded traffic (non-vacuity), forced runs
stay bit-exact under fuzzed workloads including the spill triggers
(circuit setup/teardown, CONFIG traffic, gating drains), a checkpoint
captured at a chunk boundary inside a vectorized stretch restores into
the legacy engine, and the profitability/disable gates report why the
lane is off.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import prepare_synthetic
from repro.harness.verify import verify_equivalence
from repro.sim.checkpoint import (capture_state, reset_id_counters,
                                  restore_state, state_hash)

SCHEMES = ("packet_vc4", "hybrid_sdm_vc4", "hybrid_tdm_vc4",
           "hybrid_tdm_vct", "hybrid_tdm_hop_vc4", "hybrid_tdm_hop_vct")


@contextmanager
def _vector_mode(mode):
    """Pin ``REPRO_BATCH_VECTOR`` for the duration of one test body.

    A plain context manager rather than monkeypatch so it composes with
    ``@given`` (Hypothesis re-runs the body many times per test)."""
    prev = os.environ.get("REPRO_BATCH_VECTOR")
    os.environ["REPRO_BATCH_VECTOR"] = mode
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_BATCH_VECTOR"]
        else:
            os.environ["REPRO_BATCH_VECTOR"] = prev


def _build(engine, scheme="hybrid_tdm_vct", rate=0.25, seed=7,
           stop_cycle=200):
    reset_id_counters()
    sim, net, sources = prepare_synthetic(
        scheme, "uniform_random", rate, seed=seed, width=4, height=4,
        slot_table_size=32, engine=engine)
    for src in sources:
        src.stop_cycle = stop_cycle
    return sim, net


# ---------------------------------------------------------------------------
# engagement and gating
# ---------------------------------------------------------------------------
class TestEngagement:
    def test_forced_lane_engages_on_loaded_traffic(self):
        """Guards the rest of this file against vacuity: under force, a
        loaded 4x4 run must actually execute vectorized cycles and
        exercise the spill path (vct runs carry CONFIG traffic)."""
        with _vector_mode("force"):
            sim, net = _build("batch")
            sim.run(400)
        st = sim._batch.stats()["stepper"]
        assert st["supported"]
        assert st["windows"] > 0
        assert st["vector_cycles"] > 0
        assert st["spill_router_cycles"] > 0, \
            "vct CONFIG traffic never spilled — spill path untested"

    def test_auto_mode_size_gates_small_meshes(self):
        with _vector_mode("auto"):
            sim, net = _build("batch")
            sim.run(100)
        st = sim._batch.stats()["stepper"]
        assert not st["supported"]
        assert "below profitable network size" in st["unsupported_reason"]
        assert st["vector_cycles"] == 0

    def test_disabled_by_env(self):
        with _vector_mode("0"):
            sim, net = _build("batch")
            sim.run(100)
        st = sim._batch.stats()["stepper"]
        assert not st["supported"]
        assert st["vector_cycles"] == 0

    def test_every_cycle_accounted_once_under_force(self):
        with _vector_mode("force"):
            sim, net = _build("batch")
            sim.run(600)
        stats = sim._batch.stats()
        assert (stats["steps"] + stats["cycles_skipped"]
                + stats["stepper"]["vector_cycles"]) == 600
        assert sim.cycle == 600


# ---------------------------------------------------------------------------
# probe hysteresis: a drain tail whose quiescence proof fails for long
# stretches (open gating windows waiting out the epoch) must not pay
# the O(routers) sim_quiescent proof every cycle — and the suppression
# must not outlive the stretch (the tail still fast-forwards)
# ---------------------------------------------------------------------------
class TestProbeHysteresis:
    @staticmethod
    def _drain_tail_run():
        reset_id_counters()
        sim, net, sources = prepare_synthetic(
            "hybrid_tdm_vct", "uniform_random", 0.05, seed=7,
            width=16, height=16, slot_table_size=32, engine="batch")
        for src in sources:
            src.stop_cycle = 300
        sim.run(3000)
        return sim._batch.stats()

    def test_drain_tail_suppresses_probes_but_still_skips(self):
        # vector lane off: this isolates the probe machinery, and the
        # satellite contract is that hysteresis pays off even then
        with _vector_mode("0"):
            stats = self._drain_tail_run()
        assert stats["probes_suppressed"] > 0, \
            "sim_quiescent proof never tripped the failure limit"
        assert stats["skips"] > 0, "suppression outlived the drain"
        assert stats["cycles_skipped"] > 0
        # the suppressed probes dwarf the full proofs actually paid
        assert stats["full_checks"] < stats["probes_suppressed"]

    def test_hysteresis_composes_with_vector_lane(self):
        """With the lane engaged (16x16 vct clears the size gate) the
        windows absorb the very stretch that caused the probe storm, so
        suppression need not trigger — the composed contract is that
        the lane runs, the tail still fast-forwards, and the full-proof
        count stays bounded either way."""
        with _vector_mode("auto"):
            stats = self._drain_tail_run()
        assert stats["stepper"]["vector_cycles"] > 0
        assert stats["skips"] > 0
        assert (stats["full_checks"] + stats["probes_suppressed"]
                < stats["cycles_skipped"])


# ---------------------------------------------------------------------------
# fuzzed differential: forced vector lane vs legacy/fast
# ---------------------------------------------------------------------------
class TestForcedDifferential:
    @given(scheme=st.sampled_from(SCHEMES),
           side=st.integers(min_value=3, max_value=4),
           rate=st.floats(min_value=0.08, max_value=0.45),
           cycles=st.integers(min_value=60, max_value=250),
           stop_frac=st.none() | st.floats(min_value=0.2, max_value=0.9),
           seed=st.integers(min_value=1, max_value=100))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_forced_lane_agrees_on_loaded_workloads(self, scheme, side,
                                                    rate, cycles,
                                                    stop_frac, seed):
        """Loaded fault-free workloads across all six schemes: the
        rates are high enough that windows open and the hybrid schemes
        drive circuit setup/teardown and CONFIG flits through the spill
        path.  On divergence Hypothesis shrinks toward the minimal
        workload and the message pins the first divergent checkpoint."""
        stop_cycle = (None if stop_frac is None
                      else max(1, int(cycles * stop_frac)))
        with _vector_mode("force"):
            report = verify_equivalence(
                scheme, rate=rate, cycles=cycles,
                interval=max(1, cycles // 4), seed=seed,
                width=side, height=side, slot_table_size=32,
                stop_cycle=stop_cycle,
                engines=("legacy", "fast", "batch"))
        assert report.ok, (
            f"engines {report.divergent_engines} diverged at cycle "
            f"{report.first_divergence}: {report.mismatches}")


# ---------------------------------------------------------------------------
# cross-engine checkpoint through a vectorized stretch
# ---------------------------------------------------------------------------
class TestCheckpointAcrossEngines:
    def test_snapshot_mid_vector_stretch_restores_into_legacy(self):
        """Run the batch engine in short chunks so the run boundary
        lands inside an otherwise-continuous vectorized stretch, then
        restore that snapshot into a legacy simulator and let both
        finish: final hashes must match.  This is the contract that a
        window truncated by ``run()`` leaves the object graph in the
        same state legacy stepping would have."""
        with _vector_mode("force"):
            sim_b, net_b = _build("batch")
            for _ in range(4):             # 4 x 25-cycle chunks; each
                sim_b.run(25)              # truncates any open window
            st = sim_b._batch.stats()["stepper"]
            assert st["vector_cycles"] > 0, \
                "no vectorized cycles before the snapshot — vacuous"
            snap = capture_state(sim_b, net_b)
            sim_b.run(300)                 # batch continues to 400
            hash_b = state_hash(capture_state(sim_b, net_b))

        sim_l, net_l = _build("legacy")    # same construction path
        restore_state(sim_l, net_l, snap)
        assert sim_l.cycle == 100
        sim_l.run(300)                     # legacy continues to 400
        hash_l = state_hash(capture_state(sim_l, net_l))
        assert hash_l == hash_b

    def test_snapshot_restores_into_forced_batch(self):
        """The reverse direction: a legacy-built snapshot drops into a
        batch simulator whose vector lane is forced on, and the lane
        re-engages on the restored (still loaded) state."""
        sim_l, net_l = _build("legacy")
        sim_l.run(60)
        snap = capture_state(sim_l, net_l)
        sim_l.run(340)
        hash_l = state_hash(capture_state(sim_l, net_l))

        with _vector_mode("force"):
            sim_b, net_b = _build("batch")
            restore_state(sim_b, net_b, snap)
            sim_b.run(340)
            hash_b = state_hash(capture_state(sim_b, net_b))
            assert sim_b._batch.stats()["stepper"]["vector_cycles"] > 0
        assert hash_b == hash_l

"""Fast-engine performance and equivalence tests."""

"""Property-based differential testing of the two engines (Hypothesis).

For ANY (scheme, mesh side, rate, cycle count, stop point, seed) the
legacy and the activity-tracked engines must agree bit-for-bit.  When
Hypothesis finds a divergence it shrinks toward the smallest workload
that still diverges, and the assertion message carries the first
divergent checkpoint cycle from the report — together these pin down a
minimal divergent trace for debugging.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.verify import verify_equivalence

SCHEMES = ("packet_vc4", "hybrid_tdm_vc4", "hybrid_tdm_vct",
           "hybrid_sdm_vc4")

_settings = settings(max_examples=10, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@given(scheme=st.sampled_from(SCHEMES),
       side=st.integers(min_value=2, max_value=3),
       rate=st.floats(min_value=0.0, max_value=0.3),
       cycles=st.integers(min_value=20, max_value=200),
       stop_frac=st.none() | st.floats(min_value=0.1, max_value=0.9),
       seed=st.integers(min_value=1, max_value=100))
@_settings
def test_engines_agree_on_random_workloads(scheme, side, rate, cycles,
                                           stop_frac, seed):
    stop_cycle = None if stop_frac is None else max(1, int(cycles
                                                           * stop_frac))
    report = verify_equivalence(
        scheme, rate=rate, cycles=cycles, interval=max(1, cycles // 4),
        seed=seed, width=side, height=side, slot_table_size=32,
        stop_cycle=stop_cycle)
    assert report.ok, (
        f"engines diverged at cycle {report.first_divergence}: "
        f"{report.mismatches}")

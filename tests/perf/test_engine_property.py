"""Property-based differential testing of the engines (Hypothesis).

For ANY (scheme, mesh side, rate, fault plan, cycle count, stop point,
seed) the legacy, activity-tracked, and batch engines must agree
bit-for-bit.  When Hypothesis finds a divergence it shrinks toward the
smallest workload that still diverges, and the assertion message
carries the first divergent checkpoint cycle and the diverging engines
from the report — together these pin down a minimal divergent trace
for debugging.

Fault plans are drawn from a small pool of mild configurations (the
watchdog interval of 512 cycles exceeds every generated run length, so
a plan can kill links and stall routers but never aborts the run):
fault-injected runs are exactly where the optimised engines must fall
back to run-everything scheduling, and the property guards that
fallback too.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.verify import verify_equivalence

SCHEMES = ("packet_vc4", "hybrid_tdm_vc4", "hybrid_tdm_vct",
           "hybrid_sdm_vc4")

#: mild FaultConfig overrides (None = faults disabled); every plan
#: keeps the default watchdog, whose first check lands beyond the
#: longest generated run
FAULT_PLANS = (
    None,
    {"link_fail_count": 1, "link_fail_cycle": 40},
    {"router_stall_rate": 0.002, "router_stall_duration": 6},
    {"config_drop_rate": 0.05},
    {"transient_link_rate": 0.001, "transient_duration": 8},
)

_settings = settings(max_examples=10, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@given(scheme=st.sampled_from(SCHEMES),
       side=st.integers(min_value=2, max_value=3),
       rate=st.floats(min_value=0.0, max_value=0.3),
       cycles=st.integers(min_value=20, max_value=200),
       stop_frac=st.none() | st.floats(min_value=0.1, max_value=0.9),
       fault_plan=st.sampled_from(FAULT_PLANS),
       seed=st.integers(min_value=1, max_value=100))
@_settings
def test_engines_agree_on_random_workloads(scheme, side, rate, cycles,
                                           stop_frac, fault_plan, seed):
    stop_cycle = None if stop_frac is None else max(1, int(cycles
                                                           * stop_frac))
    report = verify_equivalence(
        scheme, rate=rate, cycles=cycles, interval=max(1, cycles // 4),
        seed=seed, width=side, height=side, slot_table_size=32,
        stop_cycle=stop_cycle, engines=("legacy", "fast", "batch"),
        faults=fault_plan)
    assert report.ok, (
        f"engines {report.divergent_engines} diverged at cycle "
        f"{report.first_divergence}: {report.mismatches}")

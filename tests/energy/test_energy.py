"""Energy and area model tests (S13)."""

import pytest

from repro.config import scheme_config
from repro.energy import (
    AreaModel,
    EnergyParams,
    EnergyReport,
    compute_energy,
    energy_saving,
    router_area_mm2,
)
from repro.energy.area import HYBRID_ROUTER_AREA_MM2, PACKET_ROUTER_AREA_MM2
from repro.energy.model import COMPONENTS

from tests.conftest import build, run_traffic


class TestEnergyParams:
    def test_defaults_valid(self):
        p = EnergyParams.default_45nm()
        assert p.buffer_write_pj > 0
        assert p.technology.startswith("45nm")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(buffer_write_pj=-1.0)

    def test_slot_entry_leak_is_tiny_fraction_of_vc(self):
        """A ~6-bit entry must leak ~1% of a 5x16B VC buffer."""
        p = EnergyParams()
        assert p.leak_slot_entry_pj < 0.05 * p.leak_vc_pj


class TestEnergyReport:
    def test_totals_and_fractions(self):
        r = EnergyReport(dynamic={"buffer": 60.0, "xbar": 40.0},
                         static={"clock": 100.0}, cycles=10)
        assert r.dynamic_total == 100.0
        assert r.static_total == 100.0
        assert r.total == 200.0
        assert r.dynamic_fraction("buffer") == pytest.approx(0.6)
        assert r.static_fraction("clock") == pytest.approx(1.0)

    def test_as_rows_covers_all_components(self):
        r = EnergyReport()
        assert [row[0] for row in r.as_rows()] == list(COMPONENTS)

    def test_energy_saving(self):
        a = EnergyReport(dynamic={"buffer": 100.0})
        b = EnergyReport(dynamic={"buffer": 80.0})
        assert energy_saving(a, b) == pytest.approx(0.2)
        assert energy_saving(EnergyReport(), b) == 0.0

    def test_unknown_component_fraction_raises(self):
        r = EnergyReport(dynamic={"buffer": 1.0}, static={"clock": 1.0})
        with pytest.raises(KeyError, match="unknown energy component"):
            r.dynamic_fraction("bufer")  # typo must not read as 0.0
        with pytest.raises(KeyError, match="unknown energy component"):
            r.static_fraction("links")


class TestComputeEnergy:
    def test_idle_network_has_static_and_clock_only(self):
        sim, net = build("packet_vc4")
        sim.run(100)
        net.reset_stats()
        sim.run(500)
        e = compute_energy(net)
        assert e.dynamic["buffer"] == 0
        assert e.dynamic["link"] == 0
        assert e.dynamic["clock"] > 0
        assert e.static_total > 0

    def test_energy_scales_with_traffic(self):
        _, low, _ = run_traffic("packet_vc4", "uniform_random", 0.05,
                                measure=1500)
        _, high, _ = run_traffic("packet_vc4", "uniform_random", 0.4,
                                 measure=1500)
        elow, ehigh = compute_energy(low), compute_energy(high)
        assert ehigh.dynamic_total > elow.dynamic_total
        assert ehigh.static_total == pytest.approx(elow.static_total,
                                                   rel=0.05)

    def test_hybrid_reduces_buffer_energy_per_flit(self):
        _, pkt, _ = run_traffic("packet_vc4", "tornado", 0.25,
                                width=6, height=6, warmup=1500,
                                measure=2500)
        _, hyb, _ = run_traffic("hybrid_tdm_vc4", "tornado", 0.25,
                                width=6, height=6, warmup=1500,
                                measure=2500)
        ep, eh = compute_energy(pkt), compute_energy(hyb)
        bp = ep.dynamic["buffer"] / max(1, pkt.messages_delivered)
        bh = eh.dynamic["buffer"] / max(1, hyb.messages_delivered)
        assert bh < bp  # circuit flits skip all buffering

    def test_cs_component_zero_for_packet_network(self):
        _, net, _ = run_traffic("packet_vc4", "tornado", 0.2, measure=1000)
        e = compute_energy(net)
        assert e.dynamic["cs"] == 0
        assert e.static["cs"] == 0

    def test_cs_overhead_small_for_hybrid(self):
        """Paper: 0.6% dynamic and 2.1% static CS overhead."""
        _, net, _ = run_traffic("hybrid_tdm_vc4", "tornado", 0.25,
                                width=6, height=6, warmup=1500,
                                measure=2500)
        e = compute_energy(net)
        assert 0 < e.dynamic_fraction("cs") < 0.05
        assert 0 < e.static_fraction("cs") < 0.10

    def test_gating_reduces_static_buffer_energy(self):
        sima, neta = build("hybrid_tdm_vc4")
        simb, netb = build("hybrid_tdm_vct")
        for s in (sima, simb):
            s.run(2500)
        ea, eb = compute_energy(neta), compute_energy(netb)
        assert eb.static["buffer"] < ea.static["buffer"]

    def test_link_leakage_counts_directed_channels(self):
        """A 4x4 mesh has 24 physical links wired as 48 directed
        channels (one FlitLink per direction) — link leakage is charged
        per directed channel, and the golden energy figures depend on
        that count staying exactly 48."""
        from repro.energy.model import _directed_inter_router_links
        _, net = build("packet_vc4", width=4, height=4)
        assert _directed_inter_router_links(net) == 48
        # links = 48 inter-router FlitLinks + 2 local (inj/ej) per node
        assert len(net.links) == 48 + 2 * 16
        sim = net.sim
        sim.run(100)
        net.reset_stats()
        sim.run(200)
        e = compute_energy(net)
        p = EnergyParams()
        assert e.static["link"] == pytest.approx(
            p.leak_link_pj * net.measured_cycles * 48)

    def test_sdm_narrow_width_scaling(self):
        """SDM buffer events act on quarter-width flits."""
        _, net, _ = run_traffic("hybrid_sdm_vc4", "neighbor", 0.1,
                                measure=1200)
        e = compute_energy(net)
        c = net.aggregate_counters()
        p = EnergyParams()
        expected = (c["buffer_write"] * p.buffer_write_pj
                    + c["buffer_read"] * p.buffer_read_pj) / 4
        assert e.dynamic["buffer"] == pytest.approx(expected)


class TestAreaModel:
    def test_paper_headline_numbers(self):
        m = AreaModel()
        cfgp = scheme_config("packet_vc4")
        cfgh = scheme_config("hybrid_tdm_vc4")
        assert m.packet_router(cfgp) == pytest.approx(
            PACKET_ROUTER_AREA_MM2, rel=0.01)
        assert m.hybrid_router(cfgh) == pytest.approx(
            HYBRID_ROUTER_AREA_MM2, rel=0.01)
        assert m.overhead(cfgh) == pytest.approx(0.062, abs=0.005)

    def test_router_area_dispatch(self):
        assert router_area_mm2(scheme_config("packet_vc4")) < \
            router_area_mm2(scheme_config("hybrid_tdm_vc4"))

    def test_area_scales_with_slot_table(self):
        small = scheme_config("hybrid_tdm_vc4", slot_table_size=32)
        large = scheme_config("hybrid_tdm_vc4", slot_table_size=256)
        assert router_area_mm2(small) < router_area_mm2(large)

    def test_dlt_adds_area_when_sharing(self):
        plain = scheme_config("hybrid_tdm_vc4")
        hop = scheme_config("hybrid_tdm_hop_vc4")
        assert router_area_mm2(hop) > router_area_mm2(plain)

"""Observability end-to-end: attach to real runs, verify invariance.

The central contract: attaching a trace recorder and metrics sampler
NEVER changes simulation results — recorders draw no RNG, mutate no
state and live outside every ``state_dict``.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.runner import run_synthetic
from repro.obs import Observability, validate_jsonl
from repro.obs.trace import NULL_RECORDER


def _run(scheme="hybrid_tdm_vc4", obs=None, **kw):
    kw.setdefault("pattern", "transpose")
    kw.setdefault("rate", 0.2)
    kw.setdefault("warmup", 300)
    kw.setdefault("measure", 700)
    kw.setdefault("width", 4)
    kw.setdefault("height", 4)
    kw.setdefault("slot_table_size", 64)
    rate = kw.pop("rate")
    pattern = kw.pop("pattern")
    return run_synthetic(scheme, pattern, rate, observability=obs, **kw)


class TestTracedRun:
    def test_traced_hybrid_run_produces_valid_artifacts(self, tmp_path):
        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.chrome.json")
        metrics = str(tmp_path / "m.json")
        obs = Observability(trace_jsonl=jsonl, trace_chrome=chrome,
                            metrics_path=metrics, sample_interval=100)
        run = _run(obs=obs)
        assert run.messages_delivered > 0

        n = validate_jsonl(jsonl)
        assert n > 0
        summary = obs.finalize_summary
        assert summary["events"] == n + summary["dropped"] == n
        # the data plane must show up on both NI and router tracks
        counts = summary["counts"]
        assert counts["flit_inject"] > 0
        assert counts["flit_route"] > 0
        assert counts["flit_eject"] > 0

        doc = json.load(open(chrome))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == n

        m = json.load(open(metrics))
        assert len(m["samples"]) >= 2
        last = m["samples"][-1]
        assert last["flits_injected"] > 0
        assert last["messages_delivered"] > 0
        assert m["histograms"]["pkt_latency"]["n"] > 0

    def test_circuit_events_recorded_on_tdm(self, tmp_path):
        jsonl = str(tmp_path / "t.jsonl")
        obs = Observability(trace_jsonl=jsonl)
        _run(obs=obs)
        counts = obs.finalize_summary["counts"]
        # a loaded TDM run sets up circuits and acknowledges them
        assert counts.get("cs_setup", 0) > 0
        assert counts.get("cs_ack", 0) > 0

    def test_traced_run_identical_to_untraced(self, tmp_path):
        plain = _run()
        obs = Observability(trace_jsonl=str(tmp_path / "t.jsonl"),
                            metrics_path=str(tmp_path / "m.json"))
        traced = _run(obs=obs)
        assert traced.avg_latency == plain.avg_latency
        assert traced.p99_latency == plain.p99_latency
        assert traced.accepted == plain.accepted
        assert traced.messages_delivered == plain.messages_delivered
        assert traced.cs_fraction == plain.cs_fraction
        assert traced.energy.total == plain.energy.total

    def test_components_default_to_null_recorder(self):
        from tests.conftest import build
        _, net = build("hybrid_tdm_vc4")
        assert all(r.obs is NULL_RECORDER for r in net.routers)
        assert all(ni.obs is NULL_RECORDER for ni in net.interfaces)
        assert all(m.obs is NULL_RECORDER for m in net.managers)

    def test_attach_is_idempotent(self, tmp_path):
        from repro.harness.runner import prepare_synthetic
        obs = Observability(trace_jsonl=str(tmp_path / "t.jsonl"))
        sim, net, _ = prepare_synthetic("hybrid_tdm_vc4", "transpose", 0.2,
                                        width=4, height=4,
                                        slot_table_size=64)
        obs.attach(sim, net)
        obs.attach(sim, net)
        assert net.routers[0].obs is obs.recorder

    def test_metrics_only_run_writes_no_trace(self, tmp_path):
        metrics = str(tmp_path / "m.json")
        obs = Observability(metrics_path=metrics)
        assert obs.recorder is NULL_RECORDER
        _run(obs=obs)
        assert json.load(open(metrics))["samples"]
        assert "events" not in obs.finalize_summary


class TestFaultTracing:
    def test_fault_events_appear_in_trace(self, tmp_path):
        from dataclasses import replace

        from repro.config import scheme_config
        cfg = scheme_config("hybrid_tdm_vc4", width=4, height=4,
                            slot_table_size=64)
        cfg = replace(
            cfg,
            circuit=replace(cfg.circuit, setup_timeout=64),
            faults=replace(cfg.faults, enabled=True,
                           link_fail_count=2, link_fail_cycle=100))
        obs = Observability(trace_jsonl=str(tmp_path / "t.jsonl"))
        run = _run(obs=obs, cfg=cfg)
        assert run is not None
        counts = obs.finalize_summary["counts"]
        assert counts.get("fault", 0) == 2
        events = [json.loads(line)
                  for line in open(str(tmp_path / "t.jsonl"))]
        faults = [e for e in events if e["ev"] == "fault"]
        assert all(e["kind"] == "link_fail" and e["track"] == "sim"
                   for e in faults)


class TestSupervisedObsDumps:
    def test_point_dumps_land_next_to_results(self, tmp_path):
        from repro.harness.supervisor import (build_sweep_points,
                                              load_results,
                                              run_supervised_sweep)
        points = build_sweep_points(
            ["packet_vc4"], "uniform_random", [0.1],
            width=3, height=3, slot_table_size=32,
            warmup=200, measure=200, trace=True, metrics=True)
        run_dir = str(tmp_path / "run")
        summary = run_supervised_sweep(points, run_dir)
        assert summary["completed"] == 1 and not summary["failures"]
        pdir = tmp_path / "run" / "points"
        assert (pdir / "point-0000.json").exists()
        assert validate_jsonl(str(pdir / "point-0000.trace.jsonl")) > 0
        chrome = json.load(open(pdir / "point-0000.trace.chrome.json"))
        assert chrome["traceEvents"]
        metrics = json.load(open(pdir / "point-0000.metrics.json"))
        assert metrics["samples"]
        # result rows must not pick up the dump files
        results = load_results(run_dir)
        assert len(results) == 1
        assert results[0]["obs"]["metrics"].endswith("point-0000.metrics.json")


class TestZeroOverheadGuard:
    def test_bench_baseline_comparison(self):
        from repro.harness.bench import compare_to_baseline
        report = {"scenarios": [
            {"scenario": "idle", "fast_cps": 100.0},
            {"scenario": "loaded_epoch", "fast_cps": 99.0},
        ]}
        baseline = {"scenarios": [
            {"scenario": "idle", "fast_cps": 100.0},
            {"scenario": "loaded_epoch", "fast_cps": 100.0},
        ]}
        assert compare_to_baseline(report, baseline, tolerance=0.02) == []
        report["scenarios"][1]["fast_cps"] = 90.0
        failures = compare_to_baseline(report, baseline, tolerance=0.02)
        assert len(failures) == 1
        assert "loaded_epoch" in failures[0]

    def test_unknown_scenario_skipped(self):
        from repro.harness.bench import compare_to_baseline
        report = {"scenarios": [{"scenario": "new", "fast_cps": 1.0}]}
        assert compare_to_baseline(report, {"scenarios": []}) == []

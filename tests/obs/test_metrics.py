"""Metrics registry + sampler unit tests (S13)."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, MetricsSampler
from repro.obs.metrics import METRICS_FORMAT
from repro.sim.stats import Histogram


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("retries")
        reg.inc("retries", 2)
        assert reg.counters["retries"] == 3

    def test_gauges_polled_at_sample_time(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.gauge("v", lambda: state["v"])
        reg.sample(0)
        state["v"] = 9
        reg.sample(100)
        assert [row["v"] for row in reg.samples] == [1, 9]
        assert [row["cycle"] for row in reg.samples] == [0, 100]

    def test_histogram_created_once(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", bucket_width=4, num_buckets=8)
        h2 = reg.histogram("lat")
        assert h1 is h2
        assert isinstance(h1, Histogram)

    def test_snapshot_reads_live_values_without_sampling(self):
        """snapshot() is the service /v1/metrics scrape: it polls
        gauges now but never appends to the sampled time series."""
        reg = MetricsRegistry()
        state = {"depth": 2}
        reg.inc("jobs.submitted", 5)
        reg.gauge("queue_depth", lambda: state["depth"])
        snap = reg.snapshot()
        assert snap == {"jobs.submitted": 5, "queue_depth": 2}
        state["depth"] = 7
        assert reg.snapshot()["queue_depth"] == 7
        assert reg.samples == []         # scrapes leave the series alone

    def test_snapshot_maps_non_finite_to_null(self):
        reg = MetricsRegistry()
        reg.gauge("bad", lambda: float("inf"))
        assert reg.snapshot() == {"bad": None}

    def test_non_finite_gauge_becomes_null(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("nan", lambda: float("nan"))
        reg.gauge("inf", lambda: float("inf"))
        reg.gauge("ok", lambda: 1.5)
        row = reg.sample(0)
        assert row["nan"] is None and row["inf"] is None
        assert row["ok"] == 1.5
        path = str(tmp_path / "m.json")
        reg.dump(path)  # allow_nan=False would raise on a raw NaN
        doc = json.load(open(path))
        assert doc["samples"][0]["nan"] is None

    def test_dump_format(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("events", 5)
        reg.histogram("lat", bucket_width=2, num_buckets=4).add(3)
        reg.sample(0)
        path = str(tmp_path / "m.json")
        reg.dump(path, interval=50)
        doc = json.load(open(path))
        assert doc["format"] == METRICS_FORMAT
        assert doc["interval"] == 50
        assert doc["counters"] == {"events": 5}
        hist = doc["histograms"]["lat"]
        assert hist["bucket_width"] == 2
        assert hist["buckets"] == [0, 1, 0, 0]
        assert hist["overflow"] == 0 and hist["n"] == 1


class TestMetricsSampler:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            MetricsSampler(MetricsRegistry(), interval=0)

    def test_cadence_includes_cycle_zero(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, interval=100)
        for cycle in range(301):
            sampler.control(cycle)
        assert [row["cycle"] for row in reg.samples] == [0, 100, 200, 300]

    def test_off_interval_cycles_skipped(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, interval=7)
        sampler.control(6)
        assert reg.samples == []
        sampler.control(7)
        assert len(reg.samples) == 1

"""Trace recorder unit tests (S13): schema, null object, renderers."""

from __future__ import annotations

import copy
import json
import pickle

import pytest

from repro.obs import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    iter_events,
    validate_event,
    validate_jsonl,
)


def _filled(max_events=500_000) -> TraceRecorder:
    """A recorder with one event of every schema type."""
    rec = TraceRecorder(max_events=max_events)
    rec.flit_inject(1, "ni-0", pkt=7, flit=0, dst=3, cs=False)
    rec.flit_route(2, "router-0", pkt=7, outport=1)
    rec.flit_eject(5, "ni-3", pkt=7, flit=0, cs=False, done=True)
    rec.cs_setup(10, "ni-0", conn=4, step="send", dst=3, slot=2)
    rec.cs_setup(12, "router-1", conn=4, step="reserve", slot=2, outport=1)
    rec.cs_teardown(90, "ni-0", conn=4, step="send")
    rec.cs_ack(20, "ni-0", conn=4, ok=True)
    rec.slot_steal(30, "router-2", outport=1, slot=5)
    rec.cs_orphan(40, "router-3", pkt=9, reason="orphan")
    rec.cs_fallback(41, "ni-2", pkt=9, kind="hitchhike")
    rec.resize(50, "sim", active=64, generation=1)
    rec.fault(60, "sim", kind="link_fail", node=5, port=1)
    rec.livelock(70, "sim", in_flight=12, stalled_cycles=4000)
    rec.audit_violation(80, "sim", imbalance=2)
    return rec


class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_any_emission_is_noop(self):
        assert NULL_RECORDER.flit_inject(0, "ni-0", 1, 0, 3, False) is None
        assert NULL_RECORDER.made_up_event("anything", kw=1) is None

    def test_dunder_lookup_raises(self):
        # keeps pickle/copy protocols from silently treating the null
        # recorder as having __reduce__/__deepcopy__ hooks
        with pytest.raises(AttributeError):
            NULL_RECORDER.__deepcopy__
        assert copy.deepcopy(NULL_RECORDER) is not None
        assert pickle.loads(pickle.dumps(NULL_RECORDER)).enabled is False


class TestTraceRecorder:
    def test_every_schema_event_has_a_typed_method(self):
        rec = _filled()
        assert rec.enabled is True
        assert set(rec.counts) == set(EVENT_SCHEMA)
        for record in rec.events:
            validate_event(record)

    def test_counts_and_summary(self):
        rec = _filled()
        assert rec.counts["cs_setup"] == 2
        summary = rec.summary()
        assert summary["events"] == len(rec.events) == 14
        assert summary["dropped"] == 0
        assert summary["counts"]["flit_inject"] == 1

    def test_max_events_cap_counts_drops(self):
        rec = TraceRecorder(max_events=3)
        for cycle in range(10):
            rec.flit_route(cycle, "router-0", pkt=1, outport=2)
        assert len(rec.events) == 3
        assert rec.dropped == 7

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)

    def test_iter_events_filters(self):
        rec = _filled()
        setups = list(iter_events(rec.events, "cs_setup"))
        assert len(setups) == 2
        assert all(r["ev"] == "cs_setup" for r in setups)
        assert len(list(iter_events(rec.events))) == 14


class TestValidateEvent:
    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_event({"ev": "nope", "cycle": 0, "track": "sim"})

    def test_missing_common_field_rejected(self):
        with pytest.raises(ValueError, match="missing common field"):
            validate_event({"ev": "fault", "cycle": 0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            validate_event({"ev": "cs_ack", "cycle": 0, "track": "ni-0",
                            "conn": 1})

    def test_bad_cycle_rejected(self):
        for cycle in (-1, 1.5, True, "7"):
            with pytest.raises(ValueError, match="cycle"):
                validate_event({"ev": "fault", "cycle": cycle,
                                "track": "sim", "kind": "stall"})

    def test_bad_track_rejected(self):
        for track in ("", 3, None):
            with pytest.raises(ValueError, match="track"):
                validate_event({"ev": "fault", "cycle": 0,
                                "track": track, "kind": "stall"})

    def test_extra_fields_allowed(self):
        validate_event({"ev": "fault", "cycle": 0, "track": "sim",
                        "kind": "stall", "node": 3, "extra": "ok"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            validate_event(["ev", "fault"])


class TestJsonl:
    def test_round_trip_validates(self, tmp_path):
        rec = _filled()
        path = str(tmp_path / "trace.jsonl")
        assert rec.write_jsonl(path) == 14
        assert validate_jsonl(path) == 14
        records = [json.loads(line) for line in open(path)]
        assert records == rec.events

    def test_malformed_line_reports_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "fault", "cycle": 0, "track": "sim", '
                     '"kind": "stall"}\n')
            fh.write("not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            validate_jsonl(path)

    def test_invalid_event_reports_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "fault", "cycle": 0, "track": "sim"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            validate_jsonl(path)

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "trace.jsonl")
        _filled().write_jsonl(path)
        assert validate_jsonl(path) == 14


class TestChromeTrace:
    def test_structure(self, tmp_path):
        rec = _filled()
        path = str(tmp_path / "trace.chrome.json")
        assert rec.write_chrome(path) == 14
        doc = json.load(open(path))
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 14
        # one process_name + (thread_name + thread_sort_index) per track
        tracks = {r["track"] for r in rec.events}
        assert len(meta) == 1 + 2 * len(tracks)
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == tracks

    def test_instants_carry_cycle_and_args(self, tmp_path):
        rec = TraceRecorder()
        rec.slot_steal(123, "router-5", outport=2, slot=7)
        path = str(tmp_path / "t.json")
        rec.write_chrome(path)
        doc = json.load(open(path))
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(inst) == 1
        assert inst[0]["ts"] == 123
        assert inst[0]["name"] == "slot_steal"
        assert inst[0]["cat"] == "circuit"
        assert inst[0]["args"] == {"outport": 2, "slot": 7}
        assert inst[0]["s"] == "t"

    def test_track_lanes_ordered_sim_routers_nis(self, tmp_path):
        rec = TraceRecorder()
        rec.flit_eject(0, "ni-10", pkt=1, flit=0, cs=False, done=True)
        rec.flit_route(0, "router-2", pkt=1, outport=0)
        rec.fault(0, "sim", kind="stall")
        rec.flit_route(0, "router-10", pkt=1, outport=0)
        path = str(tmp_path / "t.json")
        rec.write_chrome(path)
        doc = json.load(open(path))
        order = {}
        for e in doc["traceEvents"]:
            if e.get("name") == "thread_name":
                order[e["args"]["name"]] = e["tid"]
        assert order["sim"] < order["router-2"] < order["router-10"] \
            < order["ni-10"]

"""Unit and property tests for the statistics primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    Counter,
    Histogram,
    LatencySample,
    RunningMean,
    TimeWeighted,
    WindowedRate,
)


class TestCounter:
    def test_inc_and_get(self):
        c = Counter()
        c.inc("x")
        c.inc("x", 2)
        assert c["x"] == 3
        assert c["missing"] == 0

    def test_merge(self):
        a, b = Counter(), Counter()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 5)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 5

    def test_reset(self):
        c = Counter()
        c.inc("x")
        c.reset()
        assert c["x"] == 0

    def test_contains_and_items(self):
        c = Counter()
        c.inc("x")
        assert "x" in c and "y" not in c
        assert dict(c.items()) == {"x": 1}


class TestRunningMean:
    def test_mean_and_variance(self):
        rm = RunningMean()
        for x in (2.0, 4.0, 6.0):
            rm.add(x)
        assert rm.mean == pytest.approx(4.0)
        assert rm.variance == pytest.approx(4.0)
        assert rm.stddev == pytest.approx(2.0)

    def test_empty_mean_is_nan(self):
        assert math.isnan(RunningMean().mean)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_matches_naive_mean(self, xs):
        rm = RunningMean()
        for x in xs:
            rm.add(x)
        assert rm.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9,
                                        abs=1e-6)


class TestLatencySample:
    def test_mean_and_percentiles(self):
        ls = LatencySample()
        ls.extend(range(1, 101))
        assert ls.mean == pytest.approx(50.5)
        assert ls.percentile(50) == 50
        assert ls.percentile(99) == 99
        assert ls.max == 100
        assert ls.count == 100

    def test_empty_is_nan(self):
        ls = LatencySample()
        assert math.isnan(ls.mean)
        assert math.isnan(ls.percentile(50))
        assert math.isnan(ls.percentile(0))
        assert math.isnan(ls.percentile(100))

    def test_percentile_range_validated(self):
        ls = LatencySample()
        ls.extend((1, 2, 3))
        with pytest.raises(ValueError, match="percentile"):
            ls.percentile(-1)
        with pytest.raises(ValueError, match="percentile"):
            ls.percentile(101)
        # validation applies even with zero samples
        with pytest.raises(ValueError, match="percentile"):
            LatencySample().percentile(200)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
    def test_percentile_bounds(self, xs):
        ls = LatencySample()
        ls.extend(xs)
        assert min(xs) <= ls.percentile(50) <= max(xs)
        assert ls.percentile(100) == max(xs)

    def test_interleaved_append_and_percentile(self):
        # every append must invalidate the cached sort; a stale cache
        # would answer from the pre-append samples
        ls = LatencySample()
        ref = []
        for batch in ([5], [1, 9], [3], [7, 2, 8], [0]):
            for x in batch:
                ls.add(x)
                ref.append(x)
            xs = sorted(ref)
            for p in (0, 50, 99, 100):
                rank = max(1, math.ceil(p / 100.0 * len(xs)))
                assert ls.percentile(p) == xs[rank - 1]
        ls.extend([4, 6])
        ref.extend([4, 6])
        assert ls.percentile(100) == max(ref)
        assert ls.percentile(0) == min(ref)

    def test_sort_cache_excluded_from_pickle(self):
        import pickle
        a = LatencySample()
        a.extend([3, 1, 2])
        b = LatencySample()
        b.extend([3, 1, 2])
        b.percentile(50)        # populates b's cache, a's stays empty
        assert pickle.dumps(a) == pickle.dumps(b), \
            "querying a percentile must not change the pickled bytes"
        c = pickle.loads(pickle.dumps(b))
        assert c.samples == b.samples
        c.add(0)                # restored object must invalidate cleanly
        assert c.percentile(0) == 0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(bucket_width=10, num_buckets=4)
        for x in (0, 9, 10, 39):
            h.add(x)
        assert h.as_list() == [2, 1, 0, 1]
        assert h.overflow == 0

    def test_overflow(self):
        h = Histogram(bucket_width=1, num_buckets=2)
        h.add(5)
        assert h.overflow == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)


class TestTimeWeighted:
    def test_integral(self):
        tw = TimeWeighted(4, cycle=0)
        tw.set(2, cycle=10)   # 4 for 10 cycles
        assert tw.finalize(20) == pytest.approx(4 * 10 + 2 * 10)

    def test_time_backwards_rejected(self):
        tw = TimeWeighted(1, cycle=5)
        with pytest.raises(ValueError):
            tw.set(0, cycle=4)

    def test_finalize_idempotent_at_same_cycle(self):
        tw = TimeWeighted(3, cycle=0)
        assert tw.finalize(10) == tw.finalize(10) == 30

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(1, 20)),
                    min_size=1, max_size=20))
    def test_matches_stepwise_sum(self, segments):
        tw = TimeWeighted(0, cycle=0)
        now = 0
        expected = 0
        value = 0
        for new_value, duration in segments:
            expected += value * duration
            now += duration
            tw.set(new_value, now)
            value = new_value
        assert tw.finalize(now) == pytest.approx(expected)


class TestWindowedRate:
    def test_rollover_rate(self):
        wr = WindowedRate(epoch_len=10)
        for _ in range(5):
            wr.record()
        assert not wr.maybe_rollover(9)
        assert wr.maybe_rollover(10)
        assert wr.last_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(0)

"""Checkpoint portability across engines.

The snapshot protocol captures *simulation* state only — scheduler
metadata (awake flags, compiled layouts, skip counters) is explicitly
excluded — so a snapshot taken under any engine must restore under any
other and continue to an identical trajectory.  These tests drive
every ordered engine pair through snapshot → restore → re-run and
require bit-identical hashes and stats, plus the batched-replica
snapshot case (a replica's snapshot restores both into its set and
into a standalone simulator).
"""

from __future__ import annotations

import itertools

import pytest

from repro.harness.runner import prepare_synthetic
from repro.sim.batch.replica import ReplicaSet
from repro.sim.checkpoint import (capture_state, reset_id_counters,
                                  restore_state, state_hash)

ENGINES = ("legacy", "fast", "batch")


def _build(engine: str, seed: int = 5):
    reset_id_counters()
    sim, net, sources = prepare_synthetic(
        "hybrid_tdm_vc4", "uniform_random", 0.15, seed=seed,
        width=4, height=4, slot_table_size=32, engine=engine)
    for src in sources:
        src.stop_cycle = 250
    return sim, net


@pytest.mark.parametrize("src_engine,dst_engine",
                         list(itertools.permutations(ENGINES, 2)))
def test_snapshot_restores_across_engines(src_engine, dst_engine):
    # reference: uninterrupted run under the source engine
    sim_a, net_a = _build(src_engine)
    sim_a.run(200)
    snap = capture_state(sim_a, net_a)
    h_snap = state_hash(snap)
    sim_a.run(200)
    h_final = state_hash(capture_state(sim_a, net_a))

    # restore into a fresh build under the destination engine
    sim_b, net_b = _build(dst_engine)
    restore_state(sim_b, net_b, snap)
    assert state_hash(capture_state(sim_b, net_b)) == h_snap, \
        f"{dst_engine} restore did not reproduce the {src_engine} snapshot"
    sim_b.run(200)
    assert state_hash(capture_state(sim_b, net_b)) == h_final, \
        f"{src_engine}->{dst_engine} continuation diverged"


def test_stats_survive_cross_engine_restore():
    sim_a, net_a = _build("legacy")
    sim_a.run(300)
    snap = capture_state(sim_a, net_a)
    sim_b, net_b = _build("batch")
    restore_state(sim_b, net_b, snap)
    assert net_b.messages_delivered == net_a.messages_delivered
    assert net_b.packets_ejected == net_a.packets_ejected
    assert net_b.flits_ejected == net_a.flits_ejected
    assert net_b.ledger.as_dict() == net_a.ledger.as_dict()


def test_replica_snapshot_restores_into_set_and_standalone():
    seeds = [5, 9]
    rs = ReplicaSet.synthetic("hybrid_tdm_vc4", "uniform_random", 0.15,
                              seeds, width=4, height=4,
                              slot_table_size=32, stop_cycle=250)
    rs.run(200, chunk=100)
    snap = rs.snapshot(1)
    rs.run(200, chunk=100)
    h_final = rs.hashes()[1]

    # restore back into the original set and re-run: same end state
    # (replica 0 keeps advancing past its sibling — the banked id
    # allocators keep them independent)
    rs.restore(1, snap)
    rs.run(200, chunk=100)
    assert rs.hashes()[1] == h_final

    # into a fresh single-replica set
    rs2 = ReplicaSet.synthetic("hybrid_tdm_vc4", "uniform_random", 0.15,
                               [seeds[1]], width=4, height=4,
                               slot_table_size=32, stop_cycle=250)
    rs2.restore(0, snap)
    rs2.run(200, chunk=100)
    assert rs2.hashes()[0] == h_final

    # and into a standalone simulator under a different engine
    reset_id_counters()
    sim, net, sources = prepare_synthetic(
        "hybrid_tdm_vc4", "uniform_random", 0.15, seed=seeds[1],
        width=4, height=4, slot_table_size=32, engine="legacy")
    for src in sources:
        src.stop_cycle = 250
    restore_state(sim, net, snap)
    for _ in range(2):
        sim.run(100)
    assert state_hash(capture_state(sim, net)) == h_final

"""Snapshot capture/restore, on-disk format and corruption recovery."""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import prepare_synthetic
from repro.sim.checkpoint import (
    CheckpointManager,
    SnapshotCorruptError,
    SnapshotError,
    capture_state,
    load_snapshot,
    restore_state,
    save_snapshot,
    state_hash,
)


def _small(scheme: str = "hybrid_tdm_vc4", seed: int = 1):
    return prepare_synthetic(scheme, "transpose", 0.2, seed=seed,
                             width=3, height=3, slot_table_size=32)


# ---------------------------------------------------------------------------
# capture / restore semantics
# ---------------------------------------------------------------------------
class TestCaptureRestore:
    def test_capture_is_decoupled_from_live_state(self):
        sim, net, _ = _small()
        sim.run(150)
        tree = capture_state(sim, net)
        h0 = state_hash(tree)
        sim.run(50)
        assert state_hash(tree) == h0, "tree mutated by running the sim"
        assert state_hash(capture_state(sim, net)) != h0

    def test_restore_reproduces_snapshot_hash(self):
        sim_a, net_a, _ = _small()
        sim_a.run(150)
        tree = capture_state(sim_a, net_a)
        sim_b, net_b, _ = _small()
        restore_state(sim_b, net_b, tree)
        assert state_hash(capture_state(sim_b, net_b)) == state_hash(tree)
        assert sim_b.cycle == sim_a.cycle

    def test_restore_is_idempotent(self):
        sim_a, net_a, _ = _small()
        sim_a.run(150)
        tree = capture_state(sim_a, net_a)
        sim_b, net_b, _ = _small()
        restore_state(sim_b, net_b, tree)
        restore_state(sim_b, net_b, tree)
        assert state_hash(capture_state(sim_b, net_b)) == state_hash(tree)

    def test_restored_run_tracks_original(self):
        sim_a, net_a, _ = _small()
        sim_a.run(150)
        tree = capture_state(sim_a, net_a)
        sim_a.run(100)
        sim_b, net_b, _ = _small()
        restore_state(sim_b, net_b, tree)
        sim_b.run(100)
        assert (state_hash(capture_state(sim_b, net_b))
                == state_hash(capture_state(sim_a, net_a)))
        assert net_b.messages_delivered == net_a.messages_delivered

    def test_format_version_checked(self):
        sim, net, _ = _small()
        tree = capture_state(sim, net)
        tree["format"] = 999
        with pytest.raises(SnapshotError):
            restore_state(sim, net, tree)

    def test_id_counters_restored(self):
        from repro.network import flit as flit_mod

        sim_a, net_a, _ = _small()
        sim_a.run(150)
        tree = capture_state(sim_a, net_a)
        msg_at_snap = tree["ids"]["msg"]
        sim_a.run(100)  # advances the module-level counters
        sim_b, net_b, _ = _small()
        restore_state(sim_b, net_b, tree)
        assert flit_mod._msg_ids.value == msg_at_snap

    def test_different_seeds_hash_differently(self):
        sim_a, net_a, _ = _small(seed=1)
        sim_b, net_b, _ = _small(seed=2)
        sim_a.run(150)
        sim_b.run(150)
        assert (state_hash(capture_state(sim_a, net_a))
                != state_hash(capture_state(sim_b, net_b)))


class TestStateHash:
    def test_callable_in_tree_fails_loudly(self):
        with pytest.raises(TypeError, match="callable"):
            state_hash({"format": 1, "oops": lambda: None})

    def test_float_bits_matter(self):
        assert state_hash({"x": 0.0}) != state_hash({"x": -0.0})

    def test_sharing_topology_is_hashed(self):
        shared = [1, 2]
        assert (state_hash({"a": shared, "b": shared})
                != state_hash({"a": [1, 2], "b": [1, 2]}))


# ---------------------------------------------------------------------------
# on-disk format
# ---------------------------------------------------------------------------
class TestSnapshotFile:
    def _tree(self):
        sim, net, _ = _small()
        sim.run(120)
        return capture_state(sim, net), sim.cycle

    def test_round_trip(self, tmp_path):
        tree, cycle = self._tree()
        path = str(tmp_path / "snap.rsnap")
        save_snapshot(path, tree, cycle, meta={"scheme": "hybrid_tdm_vc4"})
        loaded = load_snapshot(path)
        assert loaded.header["cycle"] == cycle
        assert loaded.header["meta"]["scheme"] == "hybrid_tdm_vc4"
        assert state_hash(loaded.tree) == state_hash(tree)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        tree, cycle = self._tree()
        path = str(tmp_path / "snap.rsnap")
        save_snapshot(path, tree, cycle)
        assert os.listdir(tmp_path) == ["snap.rsnap"]

    def test_truncated_payload_detected(self, tmp_path):
        tree, cycle = self._tree()
        path = str(tmp_path / "snap.rsnap")
        save_snapshot(path, tree, cycle)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:-200])
        with pytest.raises(SnapshotCorruptError, match="truncated"):
            load_snapshot(path)

    def test_bit_flip_detected(self, tmp_path):
        tree, cycle = self._tree()
        path = str(tmp_path / "snap.rsnap")
        save_snapshot(path, tree, cycle)
        blob = bytearray(open(path, "rb").read())
        blob[-100] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            load_snapshot(path)

    def test_bad_magic_detected(self, tmp_path):
        path = str(tmp_path / "snap.rsnap")
        with open(path, "wb") as fh:
            fh.write(b"not a snapshot at all")
        with pytest.raises(SnapshotCorruptError, match="magic"):
            load_snapshot(path)


class TestCheckpointManager:
    def test_rotation_keeps_newest(self, tmp_path):
        sim, net, _ = _small()
        mgr = CheckpointManager(str(tmp_path), keep=2)
        for _ in range(4):
            sim.run(50)
            mgr.save(capture_state(sim, net), sim.cycle)
        snaps = mgr.list_snapshots()
        assert len(snaps) == 2
        assert mgr.load_latest().header["cycle"] == sim.cycle

    def test_fallback_to_previous_good_snapshot(self, tmp_path):
        sim, net, _ = _small()
        mgr = CheckpointManager(str(tmp_path), keep=3)
        sim.run(50)
        mgr.save(capture_state(sim, net), sim.cycle)
        good_cycle = sim.cycle
        good_hash = state_hash(capture_state(sim, net))
        sim.run(50)
        bad = mgr.save(capture_state(sim, net), sim.cycle)
        blob = bytearray(open(bad, "rb").read())
        blob[-50] ^= 0xFF  # simulated disk corruption of the newest file
        with open(bad, "wb") as fh:
            fh.write(bytes(blob))

        loaded = mgr.load_latest()
        assert loaded is not None
        assert loaded.header["cycle"] == good_cycle
        assert state_hash(loaded.tree) == good_hash
        assert len(mgr.errors) == 1 and "checksum" in mgr.errors[0]

    def test_all_corrupt_returns_none(self, tmp_path):
        sim, net, _ = _small()
        mgr = CheckpointManager(str(tmp_path), keep=2)
        sim.run(50)
        path = mgr.save(capture_state(sim, net), sim.cycle)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        assert mgr.load_latest() is None
        assert mgr.errors

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), keep=0)

"""Unit tests for the simulation kernel."""

import numpy as np
import pytest

from repro.sim.kernel import PHASES, SimObject, Simulator


class Recorder(SimObject):
    def __init__(self, log, name):
        self.log = log
        self.name = name

    def deliver(self, cycle):
        self.log.append((cycle, self.name, "deliver"))

    def transfer(self, cycle):
        self.log.append((cycle, self.name, "transfer"))

    def inject(self, cycle):
        self.log.append((cycle, self.name, "inject"))

    def control(self, cycle):
        self.log.append((cycle, self.name, "control"))


class OnlyTransfer(SimObject):
    def __init__(self):
        self.calls = 0

    def transfer(self, cycle):
        self.calls += 1


class TestSimulator:
    def test_phase_order_within_cycle(self):
        log = []
        sim = Simulator()
        sim.add(Recorder(log, "a"))
        sim.step()
        assert [entry[2] for entry in log] == list(PHASES)

    def test_phase_tiers_across_objects(self):
        """All objects run phase N before any object runs phase N+1."""
        log = []
        sim = Simulator()
        sim.add(Recorder(log, "a"))
        sim.add(Recorder(log, "b"))
        sim.step()
        phases = [entry[2] for entry in log]
        assert phases == ["deliver", "deliver", "transfer", "transfer",
                          "inject", "inject", "control", "control"]

    def test_cycle_advances(self):
        sim = Simulator()
        sim.run(17)
        assert sim.cycle == 17

    def test_run_until_predicate(self):
        sim = Simulator()
        executed = sim.run(100, until=lambda: sim.cycle >= 5)
        assert executed == 5
        assert sim.cycle == 5

    def test_non_overridden_phase_not_registered(self):
        sim = Simulator()
        obj = OnlyTransfer()
        sim.add(obj)
        assert obj in sim._phase_lists["transfer"]
        assert obj not in sim._phase_lists["deliver"]
        sim.run(3)
        assert obj.calls == 3

    def test_rng_deterministic_by_seed(self):
        a = Simulator(seed=42).rng.integers(1000, size=10)
        b = Simulator(seed=42).rng.integers(1000, size=10)
        c = Simulator(seed=43).rng.integers(1000, size=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_end_hooks_fire_once_per_run(self):
        sim = Simulator()
        seen = []
        sim.add_end_hook(seen.append)
        sim.run(4)
        assert seen == [4]

    def test_add_returns_object(self):
        sim = Simulator()
        obj = OnlyTransfer()
        assert sim.add(obj) is obj
        assert obj in sim.objects

"""Property-based deterministic-replay checks (Hypothesis).

The property: for any scheme/traffic/cut-point, snapshotting at the cut
and resuming in a fresh build is indistinguishable — state hash and
delivered counts — from the run that was never interrupted.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.runner import prepare_synthetic
from repro.harness.verify import verify_replay
from repro.sim.checkpoint import capture_state, restore_state, state_hash

SCHEMES = ("packet_vc4", "hybrid_tdm_vc4")

_settings = settings(max_examples=8, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@given(scheme=st.sampled_from(SCHEMES),
       side=st.integers(min_value=2, max_value=3),
       rate=st.floats(min_value=0.05, max_value=0.35),
       pre=st.integers(min_value=20, max_value=150),
       post=st.integers(min_value=20, max_value=150),
       seed=st.integers(min_value=1, max_value=50))
@_settings
def test_interrupted_equals_uninterrupted(scheme, side, rate, pre, post,
                                          seed):
    report = verify_replay(scheme, pattern="uniform_random", rate=rate,
                           pre_cycles=pre, post_cycles=post, seed=seed,
                           width=side, height=side, slot_table_size=32)
    assert report.ok, report.mismatches


@given(scheme=st.sampled_from(SCHEMES),
       cycles=st.integers(min_value=10, max_value=200),
       seed=st.integers(min_value=1, max_value=50))
@_settings
def test_capture_restore_round_trip_idempotent(scheme, cycles, seed):
    sim_a, net_a, _ = prepare_synthetic(scheme, "uniform_random", 0.2,
                                        seed=seed, width=3, height=3,
                                        slot_table_size=32)
    sim_a.run(cycles)
    tree = capture_state(sim_a, net_a)
    h = state_hash(tree)

    sim_b, net_b, _ = prepare_synthetic(scheme, "uniform_random", 0.2,
                                        seed=seed, width=3, height=3,
                                        slot_table_size=32)
    restore_state(sim_b, net_b, tree)
    tree_b = capture_state(sim_b, net_b)
    assert state_hash(tree_b) == h
    # a second restore from the re-captured tree changes nothing
    restore_state(sim_b, net_b, tree_b)
    assert state_hash(capture_state(sim_b, net_b)) == h
    assert net_b.messages_delivered == net_a.messages_delivered

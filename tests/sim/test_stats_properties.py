"""Property tests for the accounting-critical statistics primitives.

These pin the invariants the tracing/metrics subsystem relies on:
every histogram insert lands in exactly one bucket (or overflow), and
the Welford running mean agrees with the :mod:`statistics` reference
implementation to within 1e-9 — including the n=0 and n=1 edge cases.
"""

from __future__ import annotations

import math
import statistics

from hypothesis import given, strategies as st

from repro.sim.stats import Histogram, RunningMean


class TestHistogramConservation:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    max_size=200),
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=64))
    def test_every_insert_is_counted_exactly_once(self, xs, width, nb):
        h = Histogram(bucket_width=width, num_buckets=nb)
        for x in xs:
            h.add(x)
        assert sum(h.as_list()) + h.overflow == h.n == len(xs)

    @given(st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=64))
    def test_bucket_index_matches_definition(self, x, width, nb):
        h = Histogram(bucket_width=width, num_buckets=nb)
        h.add(x)
        idx = int(x // width)
        if idx < nb:
            assert h.as_list()[idx] == 1
            assert h.overflow == 0
        else:
            assert sum(h.as_list()) == 0
            assert h.overflow == 1


class TestRunningMeanMatchesStatistics:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=100))
    def test_mean_matches_fmean(self, xs):
        rm = RunningMean()
        for x in xs:
            rm.add(x)
        assert rm.n == len(xs)
        assert abs(rm.mean - statistics.fmean(xs)) <= 1e-9 * max(
            1.0, abs(statistics.fmean(xs)))

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=100))
    def test_variance_matches_sample_variance(self, xs):
        rm = RunningMean()
        for x in xs:
            rm.add(x)
        ref = statistics.variance(xs)
        assert abs(rm.variance - ref) <= 1e-9 * max(1.0, abs(ref))

    def test_empty_edge_case(self):
        rm = RunningMean()
        assert rm.n == 0
        assert math.isnan(rm.mean)
        assert rm.variance == 0.0

    def test_single_sample_edge_case(self):
        rm = RunningMean()
        rm.add(42.0)
        assert rm.n == 1
        assert rm.mean == 42.0
        # one sample has no spread; sample variance is defined as 0 here
        assert rm.variance == 0.0
        assert rm.stddev == 0.0

"""Job service end-to-end: scheduling, enforcement, backpressure, drain.

Everything here drives the real :class:`JobService` (real worker
subprocesses, real checksummed results) either directly or through the
WSGI application with hand-built ``environ`` dicts — no sockets, so the
tests are hermetic and fast.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (AdmissionError, DrainingError, JobService,
                           JobSpecError, ServiceConfig, verify_job_results)
from repro.service import jobs as J
from repro.service.http import make_app
from repro.service.jobs import JobStore

#: ~0.2 s per point including process spawn (3x3 mesh at 20k cyc/s)
FAST_SWEEP = {"schemes": ["packet_vc4"], "pattern": "uniform_random",
              "width": 3, "height": 3, "slot_table_size": 32,
              "warmup": 100, "measure": 200}
#: one point that runs for several seconds — a slot blocker
SLOW_SWEEP = dict(FAST_SWEEP, warmup=500, measure=60000)


def _body(tenant="acme", qos="bulk", rates=(0.1,), sweep=None, **extra):
    body = {"tenant": tenant, "qos": qos,
            "sweep": dict(sweep or FAST_SWEEP, rates=list(rates))}
    body.update(extra)
    return body


def _service(tmp_path, **kw):
    kw.setdefault("data_dir", str(tmp_path / "svc"))
    kw.setdefault("slots", 1)
    kw.setdefault("sweep_jobs", 1)
    kw.setdefault("point_timeout_s", 60.0)
    kw.setdefault("lease_ttl_s", 30.0)
    return JobService(ServiceConfig(**kw), metrics=MetricsRegistry())


def _wait_state(svc, job_id, states, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = svc.get(job_id)
        if job["state"] in states:
            return job
        time.sleep(0.05)
    raise AssertionError(
        f"job {job_id} never reached {states}; stuck in {job['state']}")


def _wait_terminal(svc, job_id, timeout_s=60.0):
    return _wait_state(svc, job_id, J.TERMINAL_STATES, timeout_s)


class TestLifecycle:
    def test_submit_runs_to_success_with_verified_results(self, tmp_path):
        svc = _service(tmp_path)
        try:
            out = svc.submit(_body(rates=[0.1, 0.2]))
            assert out["existing"] is False
            job = _wait_terminal(svc, out["job"]["id"])
            assert job["state"] == J.ST_SUCCEEDED
            assert job["progress"] == {"total": 2, "completed": 2,
                                       "failed": 0}
            assert job["result"]["completed"] == 2
            assert verify_job_results(job) == []
            assert len(J.terminal_entries(job)) == 1
        finally:
            svc.close()

    def test_submission_is_validated_before_admission(self, tmp_path):
        svc = _service(tmp_path)
        try:
            with pytest.raises(JobSpecError):
                svc.submit(_body(tenant="///"))
            assert svc.list_jobs() == []       # nothing persisted
        finally:
            svc.close()

    def test_idempotency_key_replays_original_job(self, tmp_path):
        svc = _service(tmp_path)
        try:
            first = svc.submit(_body(idempotency_key="k1"))
            again = svc.submit(_body(idempotency_key="k1"))
            assert again["existing"] is True
            assert again["job"]["id"] == first["job"]["id"]
            _wait_terminal(svc, first["job"]["id"])
            # still idempotent after the job is terminal
            done = svc.submit(_body(idempotency_key="k1"))
            assert done["existing"] is True
            assert done["job"]["id"] == first["job"]["id"]
        finally:
            svc.close()

    def test_same_work_same_tenant_dedupes_while_active(self, tmp_path):
        svc = _service(tmp_path)
        try:
            first = svc.submit(_body(sweep=SLOW_SWEEP))
            dup = svc.submit(_body(sweep=SLOW_SWEEP))
            assert dup["existing"] is True
            assert dup["job"]["id"] == first["job"]["id"]
            # a *different* tenant's identical work is a separate job
            other = svc.submit(_body(tenant="other", sweep=SLOW_SWEEP))
            assert other["existing"] is False
            svc.cancel(first["job"]["id"])
            svc.cancel(other["job"]["id"])
        finally:
            svc.close()


class TestAdmissionControl:
    def test_queue_depth_bound_rejects_with_retry_after(self, tmp_path):
        svc = _service(tmp_path, max_queue_depth=2, tenant_quota=16)
        try:
            svc.submit(_body(sweep=SLOW_SWEEP))          # occupies the slot
            svc.submit(_body(rates=[0.2]))
            svc.submit(_body(rates=[0.3]))
            with pytest.raises(AdmissionError) as err:
                svc.submit(_body(rates=[0.4]))
            assert err.value.retry_after_s >= 1
            assert "queue depth" in str(err.value)
            # rejected work was never persisted: accepted-then-dropped
            # cannot happen
            assert len(svc.list_jobs()) == 3
        finally:
            svc.close()

    def test_tenant_quota_rejects_but_other_tenants_admitted(self, tmp_path):
        svc = _service(tmp_path, max_queue_depth=16, tenant_quota=2)
        try:
            svc.submit(_body(sweep=SLOW_SWEEP))
            svc.submit(_body(rates=[0.2]))
            with pytest.raises(AdmissionError, match="quota"):
                svc.submit(_body(rates=[0.3]))
            out = svc.submit(_body(tenant="other", rates=[0.3]))
            assert out["existing"] is False
        finally:
            svc.close()

    def test_metrics_track_queue_and_rejections(self, tmp_path):
        svc = _service(tmp_path, max_queue_depth=1, tenant_quota=16)
        try:
            svc.submit(_body(sweep=SLOW_SWEEP))
            svc.submit(_body(rates=[0.2]))
            with pytest.raises(AdmissionError):
                svc.submit(_body(rates=[0.3]))
            snap = svc.metrics.snapshot()
            assert snap["service.jobs.submitted"] == 2
            assert snap["service.jobs.rejected_queue_full"] == 1
            assert snap["service_queue_depth"] == 1
            assert snap["service_jobs_running"] == 1
        finally:
            svc.close()


class TestQoSPreemption:
    def test_interactive_preempts_bulk_between_points(self, tmp_path):
        """The QoS acceptance scenario: with one slot held by a long
        bulk sweep, an interactive submission starts before the bulk
        job's remaining points — and the bulk job still completes with
        clean results afterwards."""
        svc = _service(tmp_path, slots=1, max_queue_depth=8)
        try:
            bulk = svc.submit(_body(
                qos="bulk", rates=[0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
                sweep=dict(FAST_SWEEP, warmup=200, measure=2000),
            ))["job"]
            _wait_state(svc, bulk["id"], {J.ST_RUNNING})
            inter = svc.submit(_body(
                tenant="urgent", qos="interactive", rates=[0.1]))["job"]
            done = _wait_terminal(svc, inter["id"])
            assert done["state"] == J.ST_SUCCEEDED
            # the bulk job was preempted mid-grid, not killed mid-point,
            # and not allowed to finish ahead of the interactive job
            bulk_then = svc.get(bulk["id"])
            assert bulk_then["state"] in (J.ST_QUEUED, J.ST_RUNNING)
            history = [h["state"] for h in bulk_then["history"]]
            assert history.count(J.ST_QUEUED) >= 2   # requeued at least once
            bulk_done = _wait_terminal(svc, bulk["id"], timeout_s=120.0)
            assert bulk_done["state"] == J.ST_SUCCEEDED
            assert bulk_done["progress"]["completed"] == 6
            assert verify_job_results(bulk_done) == []
            assert len(J.terminal_entries(bulk_done)) == 1
        finally:
            svc.close()


class TestCancellation:
    def test_cancel_queued_job_is_synchronous(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        try:
            svc.submit(_body(sweep=SLOW_SWEEP))
            queued = svc.submit(_body(rates=[0.2]))["job"]
            cancelled = svc.cancel(queued["id"])
            assert cancelled["state"] == J.ST_CANCELLED
            # idempotent: cancelling again returns the terminal job
            assert svc.cancel(queued["id"])["state"] == J.ST_CANCELLED
        finally:
            svc.close()

    def test_cancel_running_job_kills_workers(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        try:
            job = svc.submit(_body(sweep=SLOW_SWEEP))["job"]
            _wait_state(svc, job["id"], {J.ST_RUNNING})
            t0 = time.monotonic()
            svc.cancel(job["id"])
            done = _wait_terminal(svc, job["id"])
            assert done["state"] == J.ST_CANCELLED
            # the worker was killed, not waited out (the point takes
            # several seconds)
            assert time.monotonic() - t0 < 5.0
            assert len(J.terminal_entries(done)) == 1
        finally:
            svc.close()

    def test_cancel_respects_tenant_ownership(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        try:
            job = svc.submit(_body(sweep=SLOW_SWEEP))["job"]
            assert svc.cancel(job["id"], tenant="intruder") is None
            assert svc.cancel("job-nonexistent") is None
            svc.cancel(job["id"], tenant="acme")
        finally:
            svc.close()


class TestDeadlines:
    def test_running_job_killed_at_deadline(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        try:
            job = svc.submit(_body(sweep=SLOW_SWEEP, deadline_s=1.0))["job"]
            done = _wait_terminal(svc, job["id"], timeout_s=30.0)
            assert done["state"] == J.ST_DEADLINE
            assert done["error"] == "DEADLINE_EXCEEDED"
            assert len(J.terminal_entries(done)) == 1
        finally:
            svc.close()

    def test_queued_job_expires_at_deadline(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        try:
            svc.submit(_body(sweep=SLOW_SWEEP))          # blocks the slot
            queued = svc.submit(_body(rates=[0.2], deadline_s=0.5))["job"]
            done = _wait_terminal(svc, queued["id"], timeout_s=30.0)
            assert done["state"] == J.ST_DEADLINE
        finally:
            svc.close()


class TestDrainAndRecovery:
    def test_drain_stops_admission_and_requeues_running(self, tmp_path):
        svc = _service(tmp_path, slots=1)
        job = svc.submit(_body(
            rates=[0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
            sweep=dict(FAST_SWEEP, warmup=200, measure=2000)))["job"]
        _wait_state(svc, job["id"], {J.ST_RUNNING})
        assert svc.drain(timeout_s=60.0) is True
        with pytest.raises(DrainingError):
            svc.submit(_body(tenant="late", rates=[0.4]))
        on_disk = JobStore(svc.cfg.data_dir).load(job["id"])
        assert on_disk["state"] in (J.ST_QUEUED, J.ST_SUCCEEDED)

        # a restarted service re-attaches and finishes the job
        svc2 = _service(tmp_path)
        try:
            done = _wait_terminal(svc2, job["id"], timeout_s=120.0)
            assert done["state"] == J.ST_SUCCEEDED
            assert done["progress"]["completed"] == 6
            assert verify_job_results(done) == []
            assert len(J.terminal_entries(done)) == 1
        finally:
            svc2.close()

    def test_recovery_requeues_job_found_running(self, tmp_path):
        """A job document left in ``running`` (server died mid-flight)
        is requeued on construction and runs to success."""
        data_dir = str(tmp_path / "svc")
        jstore = JobStore(data_dir)
        spec = J.validate_request(_body(rates=[0.1, 0.2]),
                                  ServiceConfig(data_dir=data_dir))
        job = jstore.create(spec)
        jstore.transition(job, J.ST_RUNNING)
        svc = JobService(ServiceConfig(data_dir=data_dir, slots=1,
                                       sweep_jobs=1))
        try:
            done = _wait_terminal(svc, job["id"])
            assert done["state"] == J.ST_SUCCEEDED
            history = [h["state"] for h in done["history"]]
            assert history.count(J.ST_QUEUED) == 2   # initial + requeue
            assert len(J.terminal_entries(done)) == 1
        finally:
            svc.close()

    def test_recovery_rebuilds_idempotency_index(self, tmp_path):
        svc = _service(tmp_path)
        job = svc.submit(_body(idempotency_key="k9"))["job"]
        _wait_terminal(svc, job["id"])
        svc.close()
        svc2 = _service(tmp_path)
        try:
            again = svc2.submit(_body(idempotency_key="k9"))
            assert again["existing"] is True
            assert again["job"]["id"] == job["id"]
        finally:
            svc2.close()


# ---------------------------------------------------------------------------
# WSGI layer
# ---------------------------------------------------------------------------
class _App:
    """Socket-free driver for the WSGI application."""

    def __init__(self, service):
        self.app = make_app(service)

    def request(self, method, path, body=None, query=""):
        raw = json.dumps(body).encode() if body is not None else b""
        environ = {"REQUEST_METHOD": method, "PATH_INFO": path,
                   "QUERY_STRING": query,
                   "CONTENT_LENGTH": str(len(raw)),
                   "wsgi.input": io.BytesIO(raw)}
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        payload = b"".join(self.app(environ, start_response))
        captured["body"] = json.loads(payload)
        return captured


class TestHTTPApi:
    @pytest.fixture
    def svc(self, tmp_path):
        service = _service(tmp_path, max_queue_depth=2, tenant_quota=16)
        yield service
        service.close()

    def test_submit_poll_cancel_roundtrip(self, svc):
        app = _App(svc)
        r = app.request("POST", "/v1/jobs", _body(sweep=SLOW_SWEEP))
        assert r["status"] == 201
        job_id = r["body"]["job"]["id"]
        assert app.request("GET", f"/v1/jobs/{job_id}")["status"] == 200
        r = app.request("POST", f"/v1/jobs/{job_id}/cancel",
                        query="tenant=acme")
        assert r["status"] == 200
        r = app.request("GET", "/v1/jobs", query="tenant=acme")
        assert [j["id"] for j in r["body"]["jobs"]] == [job_id]

    def test_replayed_submit_returns_200_not_201(self, svc):
        app = _App(svc)
        body = _body(sweep=SLOW_SWEEP, idempotency_key="kk")
        assert app.request("POST", "/v1/jobs", body)["status"] == 201
        r = app.request("POST", "/v1/jobs", body)
        assert r["status"] == 200
        assert r["body"]["existing"] is True
        svc.cancel(r["body"]["job"]["id"])

    def test_bad_request_maps_to_400(self, svc):
        app = _App(svc)
        r = app.request("POST", "/v1/jobs", {"tenant": "x"})
        assert r["status"] == 400
        assert "sweep" in r["body"]["error"]

    def test_backpressure_maps_to_429_with_retry_after(self, svc):
        app = _App(svc)
        app.request("POST", "/v1/jobs", _body(sweep=SLOW_SWEEP))
        app.request("POST", "/v1/jobs", _body(rates=[0.2]))
        app.request("POST", "/v1/jobs", _body(rates=[0.3]))
        r = app.request("POST", "/v1/jobs", _body(rates=[0.4]))
        assert r["status"] == 429
        assert int(r["headers"]["Retry-After"]) >= 1

    def test_draining_maps_to_503(self, svc):
        svc.begin_drain()
        r = _App(svc).request("POST", "/v1/jobs", _body(rates=[0.4]))
        assert r["status"] == 503
        assert "Retry-After" in r["headers"]

    def test_unknown_routes_and_methods(self, svc):
        app = _App(svc)
        assert app.request("GET", "/v2/jobs")["status"] == 404
        assert app.request("GET", "/v1/nope")["status"] == 404
        assert app.request("DELETE", "/v1/jobs")["status"] == 405
        assert app.request("GET", "/v1/jobs/job-missing")["status"] == 404

    def test_health_status_and_metrics_endpoints(self, svc):
        app = _App(svc)
        assert app.request("GET", "/v1/healthz")["body"]["status"] == "ok"
        status = app.request("GET", "/v1/status")["body"]
        assert status["slots"] == 1
        metrics = app.request("GET", "/v1/metrics")["body"]["metrics"]
        assert "service_queue_depth" in metrics

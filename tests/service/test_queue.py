"""Fair-share queue: QoS ordering, tenant rotation, front requeue."""

from __future__ import annotations

from repro.service.queue import FairShareQueue


def drain(q):
    out = []
    while True:
        item = q.pop()
        if item is None:
            return out
        out.append(item)


class TestQoSOrdering:
    def test_interactive_always_before_bulk(self):
        q = FairShareQueue()
        q.push("a", "bulk", "b1")
        q.push("a", "interactive", "i1")
        q.push("b", "bulk", "b2")
        q.push("b", "interactive", "i2")
        order = [job for _, job in drain(q)]
        assert order[:2] == ["i1", "i2"]
        assert set(order[2:]) == {"b1", "b2"}

    def test_waiting_counts_per_class(self):
        q = FairShareQueue()
        q.push("a", "bulk", "b1")
        q.push("a", "interactive", "i1")
        assert q.waiting("interactive") == 1
        assert q.waiting("bulk") == 1
        assert len(q) == 2


class TestTenantFairness:
    def test_round_robin_between_tenants(self):
        """A tenant with many queued jobs cannot starve a tenant with
        one: service alternates tenants within a class."""
        q = FairShareQueue()
        for i in range(3):
            q.push("hog", "bulk", f"hog-{i}")
        q.push("small", "bulk", "small-0")
        order = [job for _, job in drain(q)]
        # small's single job is served second, not fourth
        assert order.index("small-0") == 1

    def test_rotation_is_stable_cycle(self):
        q = FairShareQueue()
        for tenant in ("a", "b", "c"):
            for i in range(2):
                q.push(tenant, "bulk", f"{tenant}{i}")
        order = [job for _, job in drain(q)]
        assert order == ["a0", "b0", "c0", "a1", "b1", "c1"]

    def test_empty_tenant_leaves_rotation(self):
        q = FairShareQueue()
        q.push("a", "bulk", "a0")
        q.push("b", "bulk", "b0")
        q.push("b", "bulk", "b1")
        assert q.pop() == ("a", "a0")
        assert [job for _, job in drain(q)] == ["b0", "b1"]


class TestRequeueAndRemove:
    def test_front_push_resumes_before_fresh_work(self):
        """A preempted/restarted job re-enters at the front of its
        tenant's line, ahead of jobs submitted later."""
        q = FairShareQueue()
        q.push("a", "bulk", "fresh-1")
        q.push("a", "bulk", "fresh-2")
        q.push("a", "bulk", "resumed", front=True)
        assert q.pop() == ("a", "resumed")

    def test_remove_queued_job(self):
        q = FairShareQueue()
        q.push("a", "bulk", "x")
        q.push("a", "bulk", "y")
        assert q.remove("a", "bulk", "x") is True
        assert q.remove("a", "bulk", "x") is False   # idempotent
        assert [job for _, job in drain(q)] == ["y"]

    def test_remove_unknown_tenant_is_false(self):
        q = FairShareQueue()
        assert q.remove("ghost", "bulk", "x") is False

    def test_jobs_listing_orders_interactive_first(self):
        q = FairShareQueue()
        q.push("a", "bulk", "b1")
        q.push("a", "interactive", "i1")
        assert q.jobs() == ["i1", "b1"]

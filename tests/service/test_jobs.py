"""Job model: validation, crash-safe store, terminal write-once."""

from __future__ import annotations

import pytest

from repro.harness import store
from repro.service import jobs as J
from repro.service.jobs import (JobSpecError, JobStateError, JobStore,
                                ServiceConfig)


def _cfg(**kw):
    kw.setdefault("data_dir", "unused")
    return ServiceConfig(**kw)


def _body(**overrides):
    body = {
        "tenant": "acme",
        "qos": "bulk",
        "sweep": {"schemes": ["packet_vc4"], "rates": [0.1, 0.2],
                  "width": 3, "height": 3, "slot_table_size": 32,
                  "warmup": 100, "measure": 200},
    }
    body.update(overrides)
    return body


class TestServiceConfig:
    def test_rejects_nonpositive_bounds(self):
        for field in ("slots", "max_queue_depth", "tenant_quota",
                      "max_points_per_job"):
            with pytest.raises(ValueError):
                _cfg(**{field: 0})

    def test_defaults_are_valid(self):
        _cfg()


class TestValidateRequest:
    def test_valid_body_normalises(self):
        spec = J.validate_request(_body(), _cfg())
        assert spec["tenant"] == "acme"
        assert spec["qos"] == "bulk"
        assert spec["sweep"]["rates"] == [0.1, 0.2]
        assert spec["sweep"]["seed"] == 1          # default filled in

    @pytest.mark.parametrize("mutate", [
        {"tenant": ""},
        {"tenant": "bad tenant!"},
        {"tenant": 7},
        {"qos": "platinum"},
        {"deadline_s": -1},
        {"deadline_s": "soon"},
        {"idempotency_key": ""},
        {"unknown_field": 1},
    ])
    def test_rejects_bad_request_fields(self, mutate):
        with pytest.raises(JobSpecError):
            J.validate_request(_body(**mutate), _cfg())

    @pytest.mark.parametrize("sweep_mutate", [
        {"schemes": []},
        {"schemes": ["warp_drive"]},
        {"pattern": "vortex"},
        {"rates": []},
        {"rates": [0.0]},
        {"rates": [1.5]},
        {"rates": [True]},
        {"width": 1},
        {"measure": 0},
        {"warp": 9},
    ])
    def test_rejects_bad_sweep_fields(self, sweep_mutate):
        body = _body()
        body["sweep"].update(sweep_mutate)
        with pytest.raises(JobSpecError):
            J.validate_request(body, _cfg())

    def test_rejects_oversized_point_grid(self):
        body = _body()
        body["sweep"]["rates"] = [i / 100 for i in range(1, 20)]
        with pytest.raises(JobSpecError, match="cap"):
            J.validate_request(body, _cfg(max_points_per_job=10))

    def test_spec_hash_ignores_request_metadata(self):
        """The dedupe key covers the *work*, not who asked for it."""
        a = J.validate_request(_body(), _cfg())
        b = J.validate_request(
            _body(tenant="other", qos="interactive",
                  idempotency_key="k1", deadline_s=60), _cfg())
        assert J.spec_hash(a) == J.spec_hash(b)

    def test_spec_hash_tracks_the_grid(self):
        a = J.validate_request(_body(), _cfg())
        body = _body()
        body["sweep"]["rates"] = [0.1, 0.3]
        b = J.validate_request(body, _cfg())
        assert J.spec_hash(a) != J.spec_hash(b)


def _hetero_body(**sweep_overrides):
    sweep = {"schemes": ["packet_vc4", "hybrid_tdm_vc4"],
             "cpu_benchmarks": ["ART"], "gpu_benchmarks": ["BLACKSCHOLES"],
             "warmup": 100, "measure": 200}
    sweep.update(sweep_overrides)
    return {"tenant": "acme", "qos": "bulk", "sweep": sweep}


class TestHeteroSweepFamily:
    def test_valid_hetero_body_normalises(self):
        spec = J.validate_request(_hetero_body(), _cfg())
        sweep = spec["sweep"]
        assert sweep["cpu_benchmarks"] == ["ART"]
        assert sweep["gpu_benchmarks"] == ["BLACKSCHOLES"]
        assert sweep["phased"] is False            # default filled in
        assert sweep["policy"] == "slack"
        assert "pattern" not in sweep and "rates" not in sweep

    def test_points_resolve_to_hetero_grid(self):
        spec = J.validate_request(_hetero_body(phased=True), _cfg())
        pts = J.points_for(spec)
        assert len(pts) == 2
        assert all(p["cpu_benchmark"] == "ART" for p in pts)
        assert all(p["phased"] for p in pts)

    @pytest.mark.parametrize("sweep_mutate", [
        {"cpu_benchmarks": []},
        {"cpu_benchmarks": ["NOT_A_BENCHMARK"]},
        {"gpu_benchmarks": ["NOT_A_BENCHMARK"]},
        {"gpu_benchmarks": "BLACKSCHOLES"},
        {"phased": "yes"},
        {"policy": "warp_drive"},
        {"rates": [0.1]},                  # families are exclusive
        {"pattern": "uniform_random"},
        {"slot_table_size": 64},           # synthetic-only knob
    ])
    def test_rejects_bad_hetero_fields(self, sweep_mutate):
        body = _hetero_body()
        body["sweep"].update(sweep_mutate)
        with pytest.raises(JobSpecError):
            J.validate_request(body, _cfg())

    def test_hetero_hash_differs_from_synthetic(self):
        a = J.validate_request(_body(), _cfg())
        b = J.validate_request(_hetero_body(), _cfg())
        assert J.spec_hash(a) != J.spec_hash(b)

    def test_hetero_grid_respects_point_cap(self):
        body = _hetero_body(
            cpu_benchmarks=["ART", "EQUAKE", "SWIM"],
            gpu_benchmarks=["BLACKSCHOLES", "HOTSPOT"])
        with pytest.raises(JobSpecError, match="cap"):
            J.validate_request(body, _cfg(max_points_per_job=10))


class TestJobStore:
    def _spec(self):
        return J.validate_request(_body(), _cfg())

    def test_create_persists_self_hashed_document(self, tmp_path):
        jstore = JobStore(str(tmp_path))
        job = jstore.create(self._spec())
        loaded = store.read_json_self_hashed(jstore.job_path(job["id"]))
        assert loaded["state"] == J.ST_QUEUED
        assert loaded["progress"]["total"] == 2
        assert loaded["spec_hash"] == job["spec_hash"]

    def test_corrupt_document_is_quarantined_not_loaded(self, tmp_path):
        jstore = JobStore(str(tmp_path))
        job = jstore.create(self._spec())
        path = jstore.job_path(job["id"])
        with open(path, "a") as fh:
            fh.write("tamper")
        assert jstore.load(job["id"]) is None
        assert (tmp_path / "jobs" / job["id"]
                / "job.json.corrupt").exists()

    def test_load_all_orders_by_submission(self, tmp_path):
        jstore = JobStore(str(tmp_path))
        first = jstore.create(self._spec(), now=100.0)
        second = jstore.create(self._spec(), now=200.0)
        assert [j["id"] for j in jstore.load_all()] \
            == [first["id"], second["id"]]

    def test_transition_records_history(self, tmp_path):
        jstore = JobStore(str(tmp_path))
        job = jstore.create(self._spec())
        jstore.transition(job, J.ST_RUNNING)
        jstore.transition(job, J.ST_SUCCEEDED, result={"total": 2})
        assert job["attempts"] == 1
        assert job["started_unix"] is not None
        assert job["finished_unix"] is not None
        states = [h["state"] for h in job["history"]]
        assert states == [J.ST_QUEUED, J.ST_RUNNING, J.ST_SUCCEEDED]
        assert len(J.terminal_entries(job)) == 1

    def test_terminal_states_are_write_once(self, tmp_path):
        """The guard behind exactly-once terminal accounting: once a
        job lands in any terminal state, every further transition is
        refused."""
        jstore = JobStore(str(tmp_path))
        for terminal in sorted(J.TERMINAL_STATES):
            job = jstore.create(self._spec())
            jstore.transition(job, terminal)
            for state in (J.ST_QUEUED, J.ST_RUNNING, J.ST_SUCCEEDED,
                          J.ST_CANCELLED):
                with pytest.raises(JobStateError):
                    jstore.transition(job, state)
            assert len(J.terminal_entries(job)) == 1

    def test_preemption_roundtrip_is_legal(self, tmp_path):
        jstore = JobStore(str(tmp_path))
        job = jstore.create(self._spec())
        jstore.transition(job, J.ST_RUNNING)
        jstore.transition(job, J.ST_QUEUED, note="preempted")
        jstore.transition(job, J.ST_RUNNING)
        assert job["attempts"] == 2
        assert len(J.terminal_entries(job)) == 0

"""Tests for the fault-injection & resilience subsystem.

Covers the acceptance scenarios of the resilience PR:

* lost-ACK setup retry with exact exponential-backoff cycles,
* demotion of repeatedly-failing pairs to pure packet switching,
* confirmed teardowns (TEARDOWN_ACK) and teardown-loss orphan GC,
* fault-aware rerouting around a permanently dead link,
* the conservation/liveness watchdog raising :class:`LivelockError`,
* end-to-end conservation under a seeded mixed-fault run.

All timings are deterministic: the timeout machinery draws nothing from
the RNG, so timeout / retry / backoff cycles are asserted exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import scheme_config
from repro.core.circuit import ConnState
from repro.network.flit import Message, MessageClass
from repro.network.network import build_network
from repro.network.topology import EAST
from repro.sim.kernel import LivelockError, Simulator
from repro.traffic import attach_synthetic_sources, make_pattern
from tests.core.test_circuit import setup_connection


def build_resilient(scheme="hybrid_tdm_vc4", width=4, height=4, seed=1,
                    timeout=40, circuit=None, faults=None):
    """Build a network with the resilience protocol enabled.

    ``circuit`` / ``faults`` are extra field overrides for the nested
    configs (applied with :func:`dataclasses.replace`)."""
    cfg = scheme_config(scheme, width=width, height=height)
    c = dict(setup_timeout=timeout)
    c.update(circuit or {})
    cfg = replace(cfg, circuit=replace(cfg.circuit, **c))
    if faults is not None:
        cfg = replace(cfg, faults=replace(cfg.faults, **faults))
    sim = Simulator(seed=seed)
    net = build_network(cfg, sim)
    return sim, net


def total_reserved(net) -> int:
    active = net.clock.active
    return sum(t.reserved_count(active)
               for r in net.routers for t in r.slot_state.in_tables)


# ---------------------------------------------------------------------------
class TestSetupTimeoutBackoff:
    def test_lost_setup_retries_with_exact_backoff_cycles(self):
        sim, net = build_resilient(timeout=40)
        mgr = net.managers[0]
        ni = net.ni(0)
        ni.config_loss_fn = lambda: True     # every CONFIG message is lost
        mgr._send_setup(5, sim.cycle)        # cycle 0
        conn = mgr.connections[5]
        assert conn.state is ConnState.PENDING
        assert conn.deadline == 40
        assert ni.config_drops == 1

        sim.run(41)                          # control at cycle 40 fires
        assert mgr.setups_timed_out == 1
        assert conn.retries == 1
        assert conn.retry_at == 80           # 40 + backoff(1) = 40 + 40
        # the id was dropped so a delayed ack takes the stale-ack path
        assert conn.conn_id not in mgr.by_id
        # the cleanup teardown was also (deliberately) lost
        assert ni.config_drops == 2

        sim.run(40)                          # retry re-sent at cycle 80
        assert mgr.setups_sent == 2
        assert conn.retry_at == 0
        assert conn.deadline == 120          # 80 + timeout
        assert conn.conn_id in mgr.by_id     # fresh id registered

        sim.run(40)                          # second timeout at cycle 120
        assert mgr.setups_timed_out == 2
        assert conn.retries == 2
        assert conn.retry_at == 200          # 120 + backoff(2) = 120 + 80

    def test_backoff_is_capped(self):
        sim, net = build_resilient(timeout=40)
        mgr = net.managers[0]
        assert mgr._backoff(1) == 40
        assert mgr._backoff(2) == 80
        assert mgr._backoff(3) == 160
        assert mgr._backoff(10) == 40 * mgr.ccfg.backoff_cap

    def test_retries_exhaust_then_pair_demoted(self):
        sim, net = build_resilient(
            timeout=40, circuit=dict(max_setup_retries=1,
                                     demote_threshold=1, demote_cycles=100))
        mgr = net.managers[0]
        net.ni(0).config_loss_fn = lambda: True
        mgr._send_setup(5, 0)
        sim.run(200)   # timeout@40, retry@80, final timeout@120 -> give up
        assert mgr.setups_timed_out == 2
        assert 5 not in mgr.connections
        assert mgr.pairs_demoted == 1
        # demoted until cycle 120 + 100 = 220: no new setups before then
        mgr._maybe_setup(5, 200)
        assert 5 not in mgr.connections
        mgr._maybe_setup(5, 230)             # cool-down over
        assert 5 in mgr.connections

    def test_default_config_keeps_resilience_off(self):
        cfg = scheme_config("hybrid_tdm_vc4")
        assert cfg.circuit.setup_timeout == 0
        assert not cfg.circuit.resilience_enabled
        assert not cfg.faults.enabled


# ---------------------------------------------------------------------------
class TestTeardownConfirmation:
    def test_teardown_ack_confirms_and_unregisters(self):
        sim, net = build_resilient(timeout=64)
        conn = setup_connection(sim, net, 0, 3)
        assert conn is not None and conn.state is ConnState.ACTIVE
        mgr = net.managers[0]
        mgr.teardown(conn, sim.cycle)
        assert conn.state is ConnState.TEARING
        assert conn.conn_id in mgr._tearing
        assert conn.conn_id in mgr.by_id     # slots still count as live
        sim.run(100)
        assert mgr.teardowns_confirmed == 1
        assert not mgr._tearing
        assert conn.conn_id not in mgr.by_id
        assert mgr.teardowns_timed_out == 0

    def test_lost_teardown_times_out_and_gc_reclaims_slots(self):
        sim, net = build_resilient(
            timeout=64, circuit=dict(max_setup_retries=1))
        conn = setup_connection(sim, net, 0, 3)
        assert conn is not None and conn.state is ConnState.ACTIVE
        mgr = net.managers[0]
        assert total_reserved(net) > 0
        net.ni(0).config_loss_fn = lambda: True   # teardown walks get lost
        mgr.teardown(conn, sim.cycle)
        sim.run(300)   # initial walk + 1 retry lost -> abandoned
        assert mgr.teardowns_timed_out == 2
        assert not mgr._tearing
        assert conn.conn_id not in mgr.by_id
        # the reservations leak until the orphan GC sweeps them
        assert total_reserved(net) > 0
        freed = net.collect_orphans()
        assert freed > 0
        assert total_reserved(net) == 0


# ---------------------------------------------------------------------------
class TestFaultAwareRouting:
    def test_packet_reroutes_around_dead_link(self):
        cfg = scheme_config("packet_vc4", width=4, height=4)
        cfg = replace(cfg, faults=replace(cfg.faults, enabled=True,
                                          watchdog=False))
        sim = Simulator(seed=1)
        net = build_network(cfg, sim)
        health = net.fault_harness.health
        assert health.fail_bidir(0, EAST)
        dst = net.mesh.neighbor(0, EAST)
        net.ni(0).send(Message(src=0, dst=dst, mclass=MessageClass.DATA,
                               size_flits=5, create_cycle=0))
        sim.run(400)
        # the only minimal path used the dead link: misroute + deliver
        assert net.messages_delivered == 1
        assert sum(int(r.counters["misroute"]) for r in net.routers) >= 1
        assert net.conservation_imbalance() == 0

    def test_restored_link_carries_traffic_again(self):
        cfg = scheme_config("packet_vc4", width=4, height=4)
        cfg = replace(cfg, faults=replace(cfg.faults, enabled=True,
                                          watchdog=False))
        sim = Simulator(seed=1)
        net = build_network(cfg, sim)
        health = net.fault_harness.health
        assert health.fail_bidir(0, EAST)
        assert not health.up(0, EAST)
        assert health.restore_bidir(0, EAST)
        assert health.up(0, EAST)
        assert not health.any_faults
        dst = net.mesh.neighbor(0, EAST)
        net.ni(0).send(Message(src=0, dst=dst, mclass=MessageClass.DATA,
                               size_flits=5, create_cycle=0))
        sim.run(200)
        assert net.messages_delivered == 1
        assert sum(int(r.counters["misroute"]) for r in net.routers) == 0
        assert net.conservation_imbalance() == 0


# ---------------------------------------------------------------------------
class TestWatchdog:
    def test_stalled_network_raises_livelock_error(self):
        cfg = scheme_config("packet_vc4", width=4, height=4)
        cfg = replace(cfg, faults=replace(
            cfg.faults, enabled=True, watchdog=True,
            watchdog_interval=32, watchdog_patience=2))
        sim = Simulator(seed=1)
        net = build_network(cfg, sim)
        far = net.mesh.num_nodes - 1
        net.ni(0).send(Message(src=0, dst=far, mclass=MessageClass.DATA,
                               size_flits=5, create_cycle=0))
        sim.run(3)
        for r in net.routers:                # freeze every pipeline
            r.stalled_until = 1 << 30
        with pytest.raises(LivelockError) as exc:
            sim.run(200)
        # check@32 sets the baseline, stalled checks at 64 and 96 -> raise
        assert exc.value.cycle == 96
        assert exc.value.in_flight > 0

    def test_healthy_run_never_trips_watchdog(self):
        cfg = scheme_config("packet_vc4", width=4, height=4)
        cfg = replace(cfg, faults=replace(
            cfg.faults, enabled=True, watchdog=True,
            watchdog_interval=64, watchdog_patience=2))
        sim = Simulator(seed=2)
        net = build_network(cfg, sim)
        pat = make_pattern("uniform_random", net.mesh, sim.rng)
        attach_synthetic_sources(net, pat, injection_rate=0.1, rng=sim.rng)
        sim.run(1000)   # would raise if liveness/conservation broke
        wd = net.fault_harness.watchdog
        assert wd.checks > 0
        assert wd.audit_violations == 0
        assert net.audit_conservation() is None


# ---------------------------------------------------------------------------
class TestSeededFaultRun:
    def test_mixed_faults_conserve_flits_and_deliver(self):
        cfg = scheme_config("hybrid_tdm_vc4", width=4, height=4)
        cfg = replace(
            cfg,
            circuit=replace(cfg.circuit, setup_timeout=64),
            faults=replace(cfg.faults, enabled=True, config_drop_rate=0.02,
                           link_fail_count=1, link_fail_cycle=400,
                           transient_link_rate=0.002, transient_duration=100,
                           watchdog_interval=256, watchdog_patience=8))
        sim = Simulator(seed=5)
        net = build_network(cfg, sim)
        pat = make_pattern("transpose", net.mesh, sim.rng)
        attach_synthetic_sources(net, pat, injection_rate=0.15, rng=sim.rng)
        sim.run(2000)
        for ni in net.interfaces:            # stop the sources and drain
            if ni.endpoint is not None:
                ni.endpoint.tick = lambda cycle: None
        try:
            sim.run(1500)
        except LivelockError:
            pass   # wedged residue behind the dead link is acceptable
        assert net.fault_harness.links_failed >= 1
        assert net.fault_harness.watchdog.audit_violations == 0
        assert net.audit_conservation() is None
        ledger = net.ledger
        assert ledger.injected > 0
        delivered = ledger.ejected / ledger.injected
        assert delivered >= 0.90
        # every pending setup is bounded by the timeout machinery
        for mgr in net.managers:
            for conn in mgr.connections.values():
                if conn.state is ConnState.PENDING:
                    assert conn.retry_at or conn.deadline

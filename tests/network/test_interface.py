"""Network interface unit tests: packetisation, reassembly, hop-off."""

from collections import deque

from repro.network.flit import FlitKind, Message, MessageClass, Packet
from repro.network.interface import Endpoint

from tests.conftest import build


class Collector(Endpoint):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg, cycle):
        self.received.append((msg, cycle))


class TestPacketisation:
    def test_data_message_becomes_5_flits(self):
        sim, net = build("packet_vc4", 2, 2)
        msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=0)
        net.ni(0).send(msg)
        pkt, prebuilt = net.ni(0).ps_queue[0]
        assert pkt.size == 5
        assert prebuilt is None

    def test_ctrl_message_is_single_flit(self):
        sim, net = build("packet_vc4", 2, 2)
        msg = Message(src=0, dst=1, mclass=MessageClass.CTRL, size_flits=1,
                      create_cycle=0)
        net.ni(0).send(msg)
        pkt, _ = net.ni(0).ps_queue[0]
        assert pkt.size == 1

    def test_pending_flits_accounting(self):
        sim, net = build("packet_vc4", 2, 2)
        ni = net.ni(0)
        for _ in range(3):
            ni.send(Message(src=0, dst=1, mclass=MessageClass.DATA,
                            size_flits=5, create_cycle=0))
        assert ni.pending_flits == 15
        sim.run(100)
        assert ni.pending_flits == 0


class TestReassemblyAndDelivery:
    def test_message_delivered_once(self):
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(3, sink)
        msg = Message(src=0, dst=3, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=0)
        net.ni(0).send(msg)
        sim.run(120)
        assert [m.id for m, _ in sink.received] == [msg.id]

    def test_interleaved_packets_reassemble(self):
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(3, sink)
        ids = []
        for _ in range(4):
            m = Message(src=0, dst=3, mclass=MessageClass.DATA,
                        size_flits=5, create_cycle=0)
            ids.append(m.id)
            net.ni(0).send(m)
        sim.run(300)
        assert sorted(m.id for m, _ in sink.received) == sorted(ids)

    def test_hop_off_forwards_to_final_destination(self):
        """A message whose final_dst differs from its packet dst is
        re-injected toward final_dst (vicinity-sharing hop-off path)."""
        sim, net = build("packet_vc4", 3, 3)
        far = Collector()
        net.attach_endpoint(8, far)
        near = Collector()
        net.attach_endpoint(4, near)
        msg = Message(src=0, dst=4, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=0, final_dst=8)
        net.ni(0).send(msg)
        sim.run(300)
        assert near.received == []          # intermediate NI forwards
        assert [m.id for m, _ in far.received] == [msg.id]
        assert net.ni(4).counters["vicinity_hop_off"] == 1

    def test_message_sent_received_counts(self):
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(1, sink)
        net.ni(0).send(Message(src=0, dst=1, mclass=MessageClass.CTRL,
                               size_flits=1, create_cycle=0))
        sim.run(60)
        assert net.ni(0).sent_messages == 1
        assert net.ni(1).received_messages == 1


class TestStreamReframing:
    def test_enqueue_stream_reframes_flit_kinds(self):
        sim, net = build("packet_vc4", 2, 2)
        ni = net.ni(0)
        msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=4,
                      create_cycle=0)
        pkt = Packet(msg, 0, 1, 4, circuit=True)
        flits = deque(pkt.make_flits()[1:])  # drop the original head
        ni.enqueue_stream(pkt, flits)
        assert flits[0].kind == FlitKind.HEAD
        assert flits[-1].kind == FlitKind.TAIL
        assert all(not f.is_circuit for f in flits)

    def test_single_flit_stream_is_head_tail(self):
        sim, net = build("packet_vc4", 2, 2)
        ni = net.ni(0)
        msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=4,
                      create_cycle=0)
        pkt = Packet(msg, 0, 1, 4, circuit=True)
        flits = deque(pkt.make_flits()[-1:])
        ni.enqueue_stream(pkt, flits)
        assert flits[0].kind == FlitKind.HEAD_TAIL


class TestLatencyFeedback:
    def test_ewma_tracks_observed_latency(self):
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(1, sink)
        ni = net.ni(0)
        assert ni.ps_latency_ewma == 0.0
        ni.send(Message(src=0, dst=1, mclass=MessageClass.CTRL,
                        size_flits=1, create_cycle=0))
        sim.run(60)
        assert ni.ps_latency_ewma == 9  # first sample taken verbatim

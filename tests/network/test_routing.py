"""Routing function tests: X-Y and odd-even minimal adaptive."""

from hypothesis import given, strategies as st

from repro.network.routing import oe_candidate_outports, xy_outport
from repro.network.topology import EAST, LOCAL, Mesh, NORTH, SOUTH, WEST

mesh66 = Mesh(6, 6)
meshes = st.builds(Mesh, st.integers(2, 8), st.integers(2, 8))


def walk_xy(mesh, src, dst):
    """Follow X-Y routing to the destination; returns the hop count."""
    cur, hops = src, 0
    while cur != dst:
        port = xy_outport(mesh, cur, dst)
        cur = mesh.neighbor(cur, port)
        hops += 1
        assert hops <= mesh.num_nodes, "XY routing is cycling"
    return hops


class TestXYRouting:
    def test_local_at_destination(self):
        assert xy_outport(mesh66, 7, 7) == LOCAL

    def test_x_first(self):
        src = mesh66.node_at(0, 0)
        dst = mesh66.node_at(3, 3)
        assert xy_outport(mesh66, src, dst) == EAST

    def test_then_y(self):
        cur = mesh66.node_at(3, 0)
        dst = mesh66.node_at(3, 3)
        assert xy_outport(mesh66, cur, dst) == NORTH

    def test_west_and_south(self):
        cur = mesh66.node_at(3, 3)
        assert xy_outport(mesh66, cur, mesh66.node_at(1, 3)) == WEST
        assert xy_outport(mesh66, cur, mesh66.node_at(3, 1)) == SOUTH

    @given(meshes, st.data())
    def test_always_minimal(self, mesh, data):
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert walk_xy(mesh, src, dst) == mesh.hops(src, dst)


class TestOddEvenRouting:
    @given(meshes, st.data())
    def test_candidates_productive(self, mesh, data):
        """Every candidate port reduces the distance to the destination."""
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        cur = data.draw(st.integers(0, mesh.num_nodes - 1))
        cands = oe_candidate_outports(mesh, cur, src, dst)
        assert cands
        for port in cands:
            if port == LOCAL:
                assert cur == dst
                continue
            nbr = mesh.neighbor(cur, port)
            assert nbr is not None
            assert mesh.hops(nbr, dst) == mesh.hops(cur, dst) - 1

    @given(meshes, st.data())
    def test_all_paths_reach_destination(self, mesh, data):
        """Any greedy walk through OE candidates terminates at dst."""
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        cur, steps = src, 0
        while cur != dst:
            cands = oe_candidate_outports(mesh, cur, src, dst)
            choice = data.draw(st.sampled_from(cands))
            cur = mesh.neighbor(cur, choice)
            steps += 1
            assert steps <= mesh.num_nodes
        assert steps == mesh.hops(src, dst)

    @given(meshes, st.data())
    def test_odd_even_turn_rules(self, mesh, data):
        """No EN/ES turns in even columns; no NW/SW turns in odd columns."""
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = data.draw(st.integers(0, mesh.num_nodes - 1))
        cur, prev_dir = src, None
        while cur != dst:
            cands = oe_candidate_outports(mesh, cur, src, dst)
            choice = data.draw(st.sampled_from(cands))
            x, _ = mesh.coords(cur)
            if prev_dir == EAST and choice in (NORTH, SOUTH):
                assert x % 2 == 1, "EN/ES turn at an even column"
            if prev_dir in (NORTH, SOUTH) and choice == WEST:
                assert x % 2 == 0, "NW/SW turn at an odd column"
            cur = mesh.neighbor(cur, choice)
            prev_dir = choice

    def test_same_column_goes_vertical(self):
        src = mesh66.node_at(2, 0)
        dst = mesh66.node_at(2, 4)
        assert oe_candidate_outports(mesh66, src, src, dst) == [NORTH]

    def test_at_destination_local(self):
        assert oe_candidate_outports(mesh66, 8, 0, 8) == [LOCAL]

"""Packet router pipeline, flow-control and arbitration tests.

These use tiny 2x2 networks and hand-driven endpoints so flit timing can
be asserted exactly: with the default 2-cycle BW->SA pipeline plus the
1-cycle switch + 1-cycle link, a packet-switched hop costs 4 cycles and
a 1-flit packet from node 0 to an adjacent node arrives at the remote NI
9 cycles after injection (1 injection-link cycle + 2 routers x 4).
"""

import pytest

from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.topology import LOCAL

from tests.conftest import build


class Collector(Endpoint):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg, cycle):
        self.received.append((msg, cycle))


def send_one(net, sim, src, dst, size=1, mclass=MessageClass.CTRL):
    sink = Collector()
    net.attach_endpoint(dst, sink)
    msg = Message(src=src, dst=dst, mclass=mclass, size_flits=size,
                  create_cycle=sim.cycle)
    net.ni(src).send(msg)
    return msg, sink


class TestZeroLoadTiming:
    def test_single_flit_one_hop_latency(self):
        sim, net = build("packet_vc4", 2, 2)
        msg, sink = send_one(net, sim, 0, 1)
        sim.run(40)
        assert len(sink.received) == 1
        _, cycle = sink.received[0]
        assert cycle - msg.create_cycle == 9

    def test_latency_grows_4_cycles_per_hop(self):
        latencies = {}
        for dst, hops in ((1, 1), (3, 2)):
            sim, net = build("packet_vc4", 2, 2)
            msg, sink = send_one(net, sim, 0, dst)
            sim.run(40)
            latencies[hops] = sink.received[0][1] - msg.create_cycle
        assert latencies[2] - latencies[1] == 4

    def test_multi_flit_serialisation(self):
        """A 5-flit packet finishes 4 cycles after a 1-flit one would."""
        sim, net = build("packet_vc4", 2, 2)
        msg, sink = send_one(net, sim, 0, 1, size=5,
                             mclass=MessageClass.DATA)
        sim.run(60)
        assert sink.received[0][1] - msg.create_cycle == 9 + 4

    def test_message_travels_minimal_route(self):
        sim, net = build("packet_vc4", 4, 4)
        msg, sink = send_one(net, sim, 0, 15)  # corner to corner: 6 hops
        sim.run(80)
        assert len(sink.received) == 1
        assert sink.received[0][1] - msg.create_cycle == 1 + 4 * 7


class TestCreditFlowControl:
    def test_credits_conserved_after_drain(self):
        """After all traffic drains, every credit counter is back at its
        initial value (no credit leaks or duplicates)."""
        sim, net = build("packet_vc4", 2, 2)
        for dst in (1, 2, 3):
            send_one(net, sim, 0, dst, size=5, mclass=MessageClass.DATA)
        sim.run(200)
        assert net.in_flight_flits() == 0
        depth = net.cfg.router.vc_depth
        cdepth = net.cfg.router.config_vc_depth
        for r in net.routers:
            for outport in range(1, 5):
                if r.out_links[outport] is None:
                    continue
                assert r.credits[outport][:4] == [depth] * 4
                assert r.credits[outport][4] == cdepth
        for ni in net.interfaces:
            assert ni.local_credits[:4] == [depth] * 4

    def test_no_buffer_overflow_under_load(self):
        """Heavy traffic never violates buffer bounds (push would raise)."""
        from tests.conftest import run_traffic
        sim, net, _ = run_traffic("packet_vc4", "uniform_random", 0.6,
                                  warmup=200, measure=600)
        assert net.flits_ejected > 0  # ran under saturation and survived

    def test_wormhole_ownership_released_after_tail(self):
        sim, net = build("packet_vc4", 2, 2)
        send_one(net, sim, 0, 1, size=5, mclass=MessageClass.DATA)
        sim.run(200)
        for r in net.routers:
            for outport in range(5):
                assert all(o is None for o in r.out_vc_owner[outport])


class TestArbitration:
    def test_two_sources_share_one_destination(self):
        sim, net = build("packet_vc4", 3, 3)
        sink = Collector()
        net.attach_endpoint(4, sink)  # mesh centre
        for src in (0, 8):
            msg = Message(src=src, dst=4, mclass=MessageClass.DATA,
                          size_flits=5, create_cycle=sim.cycle)
            net.ni(src).send(msg)
        sim.run(200)
        assert len(sink.received) == 2

    def test_messages_from_same_source_stay_ordered_per_destination(self):
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(3, sink)
        sent = []
        for _ in range(6):
            msg = Message(src=0, dst=3, mclass=MessageClass.CTRL,
                          size_flits=1, create_cycle=sim.cycle)
            net.ni(0).send(msg)
            sent.append(msg.id)
        sim.run(300)
        got = [m.id for m, _ in sink.received]
        assert len(got) == 6


class TestStatsPlumbing:
    def test_counters_incremented(self):
        sim, net = build("packet_vc4", 2, 2)
        send_one(net, sim, 0, 3, size=5, mclass=MessageClass.DATA)
        sim.run(100)
        c = net.aggregate_counters()
        assert c["buffer_write"] >= 10   # 5 flits x 2+ routers
        assert c["buffer_read"] == c["buffer_write"]
        assert c["xbar"] >= c["buffer_read"]
        assert c["link"] >= 5

    def test_local_ejection_does_not_count_link(self):
        sim, net = build("packet_vc4", 2, 2)
        send_one(net, sim, 0, 1, size=1)
        sim.run(100)
        c = net.aggregate_counters()
        assert c["link"] == 1  # exactly one inter-router hop

    def test_occupancy_zero_when_idle(self, packet_net):
        sim, net = packet_net
        sim.run(20)
        assert all(r.occupancy() == 0 for r in net.routers)

"""Virtual-channel buffer tests."""

import pytest

from repro.network.buffers import InputPort, VirtualChannel
from repro.network.flit import Message, MessageClass, Packet


def flits(n=3):
    msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=n,
                  create_cycle=0)
    return Packet(msg, 0, 1, n).make_flits()


class TestVirtualChannel:
    def test_fifo_order(self):
        vc = VirtualChannel(depth=5)
        fs = flits(3)
        for f in fs:
            vc.push(f)
        assert vc.front() is fs[0]
        assert vc.pop() is fs[0]
        assert vc.pop() is fs[1]

    def test_overflow_raises(self):
        """Credit protocol must prevent overflow; overflow is a bug."""
        vc = VirtualChannel(depth=2)
        fs = flits(3)
        vc.push(fs[0])
        vc.push(fs[1])
        with pytest.raises(OverflowError):
            vc.push(fs[2])

    def test_occupancy_and_free_slots(self):
        vc = VirtualChannel(depth=4)
        assert vc.free_slots == 4
        vc.push(flits(1)[0])
        assert vc.occupancy == 1
        assert vc.free_slots == 3

    def test_busy_includes_held_out_vc(self):
        vc = VirtualChannel(depth=2)
        assert not vc.busy
        vc.out_vc = 1  # mid-packet wormhole hold
        assert vc.busy
        vc.clear_route()
        assert not vc.busy

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            VirtualChannel(depth=0)


class TestInputPort:
    def test_structure(self):
        port = InputPort(num_vcs=4, vc_depth=5, config_vc_depth=3)
        assert port.total_vcs == 5
        assert port.config_vc_index == 4
        assert port.vcs[4].depth == 3
        assert port.vcs[0].depth == 5

    def test_data_vcs_iteration_excludes_config(self):
        port = InputPort(num_vcs=4, vc_depth=5, config_vc_depth=3)
        indices = [i for i, _ in port.data_vcs()]
        assert indices == [0, 1, 2, 3]

    def test_occupancy_sums_all_vcs(self):
        port = InputPort(num_vcs=2, vc_depth=5, config_vc_depth=5)
        port.vcs[0].push(flits(1)[0])
        port.vcs[2].push(flits(1)[0])  # config VC
        assert port.occupancy() == 2

"""Flit and credit link timing tests."""

import pytest

from repro.network.flit import FlitKind, Message, MessageClass, Packet
from repro.network.link import CreditLink, FlitLink, HOP_LATENCY


def make_flit():
    msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=1,
                  create_cycle=0)
    return Packet(msg, 0, 1, 1).make_flits()[0]


class TestFlitLink:
    def test_hop_latency_is_two(self):
        """Section II-D: ST at T, link at T+1, downstream arrival at T+2."""
        assert HOP_LATENCY == 2

    def test_delivery_timing(self):
        link = FlitLink()
        f = make_flit()
        link.send(f, cycle=10)
        assert link.arrivals(11) == []
        assert link.arrivals(12) == [f]
        assert link.arrivals(13) == []

    def test_fifo_order(self):
        link = FlitLink()
        f1, f2 = make_flit(), make_flit()
        link.send(f1, 5)
        link.send(f2, 6)
        assert link.arrivals(7) == [f1]
        assert link.arrivals(8) == [f2]

    def test_in_flight_count(self):
        link = FlitLink()
        link.send(make_flit(), 0)
        link.send(make_flit(), 0)
        assert link.in_flight == 2
        link.arrivals(2)
        assert link.in_flight == 0

    def test_flits_carried_counter(self):
        link = FlitLink()
        for _ in range(3):
            link.send(make_flit(), 0)
        assert link.flits_carried == 3

    def test_custom_latency(self):
        link = FlitLink(latency=1)
        f = make_flit()
        link.send(f, 3)
        assert link.arrivals(4) == [f]

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            FlitLink(latency=0)


class TestCreditLink:
    def test_one_cycle_latency(self):
        cl = CreditLink()
        cl.send(vc=2, cycle=7)
        assert cl.arrivals(7) == []
        assert cl.arrivals(8) == [2]

    def test_multiple_credits_same_cycle(self):
        cl = CreditLink()
        cl.send(0, 1)
        cl.send(3, 1)
        assert sorted(cl.arrivals(2)) == [0, 3]

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            CreditLink(latency=0)


class TestFlitFraming:
    def test_single_flit_packet_is_head_tail(self):
        f = make_flit()
        assert f.kind == FlitKind.HEAD_TAIL
        assert f.is_head and f.is_tail

    def test_multi_flit_framing(self):
        msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=0)
        flits = Packet(msg, 0, 1, 5).make_flits()
        assert flits[0].kind == FlitKind.HEAD
        assert all(f.kind == FlitKind.BODY for f in flits[1:-1])
        assert flits[-1].kind == FlitKind.TAIL
        assert [f.index for f in flits] == list(range(5))

    def test_circuit_flag_inherited(self):
        msg = Message(src=0, dst=1, mclass=MessageClass.DATA, size_flits=4,
                      create_cycle=0)
        pkt = Packet(msg, 0, 1, 4, circuit=True)
        assert all(f.is_circuit for f in pkt.make_flits())

    def test_message_final_dst_defaults_to_dst(self):
        msg = Message(src=0, dst=5, mclass=MessageClass.DATA, size_flits=1,
                      create_cycle=0)
        assert msg.final_dst == 5
        msg2 = Message(src=0, dst=5, mclass=MessageClass.DATA,
                       size_flits=1, create_cycle=0, final_dst=9)
        assert msg2.final_dst == 9

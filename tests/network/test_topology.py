"""Mesh topology unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.network.topology import (
    EAST,
    LOCAL,
    Mesh,
    NORTH,
    NUM_PORTS,
    SOUTH,
    WEST,
    opposite_port,
)

meshes = st.builds(Mesh, st.integers(2, 9), st.integers(2, 9))


class TestMeshBasics:
    def test_coords_roundtrip(self):
        m = Mesh(6, 6)
        for node in range(m.num_nodes):
            x, y = m.coords(node)
            assert m.node_at(x, y) == node

    def test_neighbor_directions(self):
        m = Mesh(4, 4)
        center = m.node_at(1, 1)
        assert m.neighbor(center, NORTH) == m.node_at(1, 2)
        assert m.neighbor(center, SOUTH) == m.node_at(1, 0)
        assert m.neighbor(center, EAST) == m.node_at(2, 1)
        assert m.neighbor(center, WEST) == m.node_at(0, 1)

    def test_edges_have_no_neighbor(self):
        m = Mesh(4, 4)
        assert m.neighbor(m.node_at(0, 0), WEST) is None
        assert m.neighbor(m.node_at(0, 0), SOUTH) is None
        assert m.neighbor(m.node_at(3, 3), EAST) is None
        assert m.neighbor(m.node_at(3, 3), NORTH) is None

    def test_corner_has_two_ports(self):
        m = Mesh(4, 4)
        assert len(list(m.ports(0))) == 2

    def test_interior_has_four_ports(self):
        m = Mesh(4, 4)
        assert len(list(m.ports(m.node_at(1, 1)))) == 4

    def test_hops_manhattan(self):
        m = Mesh(6, 6)
        assert m.hops(m.node_at(0, 0), m.node_at(5, 5)) == 10
        assert m.hops(3, 3) == 0

    def test_adjacent(self):
        m = Mesh(4, 4)
        assert m.are_adjacent(0, 1)
        assert not m.are_adjacent(0, 2)
        assert not m.are_adjacent(0, 0)

    def test_out_of_range_rejected(self):
        m = Mesh(3, 3)
        with pytest.raises(ValueError):
            m.coords(9)
        with pytest.raises(ValueError):
            m.node_at(3, 0)

    def test_opposite_ports(self):
        assert opposite_port(NORTH) == SOUTH
        assert opposite_port(EAST) == WEST
        with pytest.raises(ValueError):
            opposite_port(LOCAL)

    def test_num_ports_constant(self):
        assert NUM_PORTS == 5


class TestMeshProperties:
    @given(meshes, st.data())
    def test_neighbor_symmetry(self, m, data):
        node = data.draw(st.integers(0, m.num_nodes - 1))
        for port in m.ports(node):
            nbr = m.neighbor(node, port)
            assert m.neighbor(nbr, opposite_port(port)) == node

    @given(meshes, st.data())
    def test_neighbors_are_one_hop(self, m, data):
        node = data.draw(st.integers(0, m.num_nodes - 1))
        for nbr in m.neighbors(node):
            assert m.hops(node, nbr) == 1

    @given(meshes, st.data())
    def test_hops_triangle_inequality(self, m, data):
        a = data.draw(st.integers(0, m.num_nodes - 1))
        b = data.draw(st.integers(0, m.num_nodes - 1))
        c = data.draw(st.integers(0, m.num_nodes - 1))
        assert m.hops(a, c) <= m.hops(a, b) + m.hops(b, c)

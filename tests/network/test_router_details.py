"""Deeper router behaviours: bandwidth limits, VC isolation, SDM NI."""

import pytest

from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint

from tests.conftest import build


class Collector(Endpoint):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg, cycle):
        self.received.append((msg, cycle))


class TestBandwidthLimits:
    def test_one_flit_per_output_per_cycle(self):
        """A link never carries more than one PS flit per cycle."""
        sim, net = build("packet_vc4", 2, 2)
        sink = Collector()
        net.attach_endpoint(1, sink)
        for _ in range(6):
            net.ni(0).send(Message(src=0, dst=1, mclass=MessageClass.DATA,
                                   size_flits=5, create_cycle=sim.cycle))
        start = sim.cycle
        sim.run(400)
        # 30 flits over the single 0->1 link: at most one per cycle, so
        # the last arrives no earlier than start + 30
        assert len(sink.received) == 6
        last = max(c for _, c in sink.received)
        assert last - start >= 30

    def test_injection_limited_to_one_flit_per_cycle(self):
        sim, net = build("packet_vc4", 2, 2)
        ni = net.ni(0)
        for _ in range(4):
            ni.send(Message(src=0, dst=1, mclass=MessageClass.DATA,
                            size_flits=5, create_cycle=sim.cycle))
        sim.run(10)
        assert ni.counters["flit_injected"] <= 10


class TestConfigVCIsolation:
    def test_data_packets_never_use_config_vc(self):
        sim, net = build("hybrid_tdm_vc4", 4, 4)
        ni = net.ni(0)
        for _ in range(8):
            ni.enqueue_ps(Message(src=0, dst=15, mclass=MessageClass.DATA,
                                  size_flits=5, create_cycle=sim.cycle))
        for _ in range(60):
            sim.step()
            for r in net.routers:
                for port in r.in_ports:
                    cfg_vc = port.vcs[port.config_vc_index]
                    for flit in cfg_vc.fifo:
                        assert flit.packet.mclass == MessageClass.CONFIG

    def test_config_packets_never_use_data_vcs(self):
        from tests.core.test_circuit import setup_connection
        sim, net = build("hybrid_tdm_vc4", 6, 6)
        mgr = net.managers[0]
        mgr._maybe_setup(35, sim.cycle)
        for _ in range(80):
            sim.step()
            for r in net.routers:
                for port in r.in_ports:
                    for i, vc in port.data_vcs():
                        for flit in vc.fifo:
                            assert flit.packet.mclass != MessageClass.CONFIG


class TestSDMNIPlaneAllocation:
    def test_parallel_injection_across_planes(self):
        """The SDM NI streams up to one flit per plane per cycle, so two
        packets on different planes inject concurrently."""
        sim, net = build("hybrid_sdm_vc4", 2, 2)
        ni = net.ni(0)
        for _ in range(2):
            ni.send(Message(src=0, dst=1, mclass=MessageClass.DATA,
                            size_flits=17, create_cycle=sim.cycle))
        sim.run(6)
        # both packets allocated to different planes and streaming
        active_planes = {ni._plane_of(vc) for vc in range(ni.total_vcs - 1)
                         if ni.vc_in_use[vc] is not None}
        assert len(active_planes) == 2

    def test_least_loaded_plane_chosen(self):
        sim, net = build("hybrid_sdm_vc4", 2, 2)
        ni = net.ni(0)
        m1 = Message(src=0, dst=1, mclass=MessageClass.DATA,
                     size_flits=17, create_cycle=0)
        ni.send(m1)
        sim.run(3)
        first_plane = next(ni._plane_of(vc)
                           for vc in range(ni.total_vcs - 1)
                           if ni.vc_in_use[vc] is not None)
        m2 = Message(src=0, dst=1, mclass=MessageClass.DATA,
                     size_flits=17, create_cycle=0)
        ni.send(m2)
        sim.run(3)
        planes = [ni._plane_of(vc) for vc in range(ni.total_vcs - 1)
                  if ni.vc_in_use[vc] is not None]
        assert len(set(planes)) == 2
        assert first_plane in planes


class TestHeteroOnLargerMesh:
    def test_hetero_system_scales_to_8x8(self):
        from repro.hetero import HeteroSystem
        system = HeteroSystem("hybrid_tdm_vc4", "EQUAKE", "HOTSPOT",
                              seed=5, width=8, height=8)
        res = system.run(warmup=300, measure=900)
        assert res.cpu_instructions > 0
        assert res.gpu_iterations > 0
        assert len(system.layout.mem_nodes) >= 2

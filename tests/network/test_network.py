"""Whole-network integration tests (packet-switched baseline)."""

import pytest

from repro.network.topology import LOCAL

from tests.conftest import build, drain, run_traffic


class TestConservation:
    """Every message generated is eventually delivered, exactly once."""

    @pytest.mark.parametrize("pattern", ["uniform_random", "tornado",
                                         "transpose", "neighbor"])
    def test_all_messages_delivered_after_drain(self, pattern):
        sim, net, sources = run_traffic("packet_vc4", pattern, rate=0.2,
                                        warmup=0, measure=800)
        assert drain(sim, net)
        generated = sum(s.messages_generated for s in sources)
        received = sum(s.messages_received for s in sources)
        assert generated > 0
        assert received == generated

    def test_no_flits_left_anywhere(self):
        sim, net, _ = run_traffic("packet_vc4", "uniform_random", 0.3,
                                  warmup=0, measure=500)
        assert drain(sim, net)
        assert all(r.occupancy() == 0 for r in net.routers)
        assert all(link.in_flight == 0 for link in net.links)


class TestThroughputAndLatency:
    def test_accepted_tracks_offered_below_saturation(self):
        sim, net, _ = run_traffic("packet_vc4", "uniform_random", 0.15,
                                  width=4, height=4, measure=2500)
        assert net.accepted_load() == pytest.approx(0.15, rel=0.2)

    def test_latency_increases_with_load(self):
        _, low, _ = run_traffic("packet_vc4", "uniform_random", 0.05,
                                measure=2000)
        _, high, _ = run_traffic("packet_vc4", "uniform_random", 0.45,
                                 measure=2000)
        assert high.pkt_latency.mean > low.pkt_latency.mean

    def test_saturation_throughput_below_offered(self):
        sim, net, _ = run_traffic("packet_vc4", "transpose", 0.8,
                                  measure=2500)
        assert net.accepted_load() < 0.8

    def test_message_latency_at_least_packet_latency(self):
        sim, net, _ = run_traffic("packet_vc4", "uniform_random", 0.1,
                                  measure=1500)
        assert net.msg_latency.mean >= net.pkt_latency.mean


class TestStatsWindow:
    def test_reset_stats_clears_measurements(self):
        sim, net, _ = run_traffic("packet_vc4", "uniform_random", 0.2,
                                  warmup=500, measure=500)
        assert net.messages_delivered > 0
        net.reset_stats()
        assert net.messages_delivered == 0
        assert net.pkt_latency.count == 0
        assert net.aggregate_counters()["buffer_write"] == 0

    def test_measured_cycles(self):
        sim, net = build("packet_vc4")
        sim.run(100)
        net.reset_stats()
        sim.run(250)
        assert net.measured_cycles == 250


class TestWiring:
    def test_every_router_has_local_links(self):
        _, net = build("packet_vc4", 3, 3)
        for r in net.routers:
            assert r.in_links[LOCAL] is not None
            assert r.out_links[LOCAL] is not None

    def test_edge_routers_missing_edge_links(self):
        _, net = build("packet_vc4", 3, 3)
        corner = net.router(0)
        wired = [p for p in range(1, 5) if corner.out_links[p] is not None]
        assert len(wired) == 2

    def test_downstream_references_consistent(self):
        _, net = build("packet_vc4", 3, 3)
        m = net.mesh
        for node in range(m.num_nodes):
            r = net.router(node)
            for port in m.ports(node):
                assert r.downstream[port] is net.router(m.neighbor(node, port))

    def test_deterministic_given_seed(self):
        r1 = run_traffic("packet_vc4", "uniform_random", 0.2, seed=9,
                         measure=800)[1]
        r2 = run_traffic("packet_vc4", "uniform_random", 0.2, seed=9,
                         measure=800)[1]
        assert r1.messages_delivered == r2.messages_delivered
        assert r1.pkt_latency.mean == r2.pkt_latency.mean

    def test_different_seed_differs(self):
        r1 = run_traffic("packet_vc4", "uniform_random", 0.2, seed=1,
                         measure=800)[1]
        r2 = run_traffic("packet_vc4", "uniform_random", 0.2, seed=2,
                         measure=800)[1]
        assert r1.messages_delivered != r2.messages_delivered

"""Release hygiene: documentation, packaging and API surface checks."""

import pathlib

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/ARCHITECTURE.md"):
            assert (ROOT / name).is_file(), f"missing {name}"

    def test_design_covers_every_figure_and_table(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for artefact in ("Fig. 4", "Fig. 5", "Fig. 6", "Fig. 8", "Fig. 9",
                         "Table I", "Table II", "Table III"):
            assert artefact in text, f"DESIGN.md missing {artefact}"

    def test_experiments_records_paper_numbers(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for number in ("27.0", "9.3", "14.7", "51.3", "17.1", "6.3",
                       "55.7", "18.5"):
            assert number in text, f"EXPERIMENTS.md missing paper {number}"

    def test_readme_quickstart_names_real_api(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for symbol in ("scheme_config", "build_network",
                       "attach_synthetic_sources", "compute_energy"):
            assert symbol in text
            assert (hasattr(repro, symbol)
                    or symbol == "attach_synthetic_sources")


class TestPackaging:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_schemes_preset_names_stable(self):
        assert repro.SCHEMES == (
            "packet_vc4", "hybrid_sdm_vc4", "hybrid_tdm_vc4",
            "hybrid_tdm_vct", "hybrid_tdm_hop_vc4", "hybrid_tdm_hop_vct")

    def test_subpackages_importable(self):
        import repro.cli
        import repro.core
        import repro.energy
        import repro.harness
        import repro.hetero
        import repro.inspect
        import repro.network
        import repro.sdm
        import repro.sim
        import repro.traffic

    def test_public_modules_have_docstrings(self):
        import repro.core.hybrid_router as hr
        import repro.core.slot_table as st
        import repro.energy.model as em
        for mod in (hr, st, em, repro):
            assert mod.__doc__ and len(mod.__doc__) > 40

    def test_public_classes_documented(self):
        from repro.core import (ConnectionManager, HybridRouter,
                                SlotClock, VCGatingController)
        from repro.network import PacketRouter
        for cls in (ConnectionManager, HybridRouter, SlotClock,
                    VCGatingController, PacketRouter):
            assert cls.__doc__

"""Synthetic source and trace replay tests."""

import numpy as np
import pytest

from repro.traffic import (
    MessageTraceRecorder,
    SyntheticSource,
    TraceEvent,
    attach_synthetic_sources,
    make_pattern,
)
from repro.traffic.trace import TraceSource, attach_trace_sources

from tests.conftest import build


class TestSyntheticSource:
    def test_injection_rate_approximately_met(self):
        sim, net = build("packet_vc4", 4, 4)
        pat = make_pattern("uniform_random", net.mesh, sim.rng)
        sources = attach_synthetic_sources(net, pat, injection_rate=0.2,
                                           rng=sim.rng)
        sim.run(3000)
        generated = sum(s.messages_generated for s in sources)
        expected = 0.2 / 5 * 3000 * 16  # msg_prob x cycles x nodes
        assert generated == pytest.approx(expected, rel=0.15)

    def test_zero_rate_generates_nothing(self):
        sim, net = build("packet_vc4")
        pat = make_pattern("tornado", net.mesh, sim.rng)
        sources = attach_synthetic_sources(net, pat, injection_rate=0.0,
                                           rng=sim.rng)
        sim.run(500)
        assert sum(s.messages_generated for s in sources) == 0

    def test_stop_cycle_honoured(self):
        sim, net = build("packet_vc4")
        pat = make_pattern("tornado", net.mesh, sim.rng)
        sources = attach_synthetic_sources(net, pat, injection_rate=0.5,
                                           rng=sim.rng, stop_cycle=100)
        sim.run(500)
        counts = sum(s.messages_generated for s in sources)
        sim.run(500)
        assert sum(s.messages_generated for s in sources) == counts

    def test_negative_rate_rejected(self):
        sim, net = build("packet_vc4")
        pat = make_pattern("tornado", net.mesh, sim.rng)
        with pytest.raises(ValueError):
            SyntheticSource(0, net.cfg, pat, -0.1, sim.rng)


class TestTrace:
    def test_record_save_load_roundtrip(self, tmp_path):
        rec = MessageTraceRecorder()
        from repro.network.flit import Message, MessageClass
        msg = Message(src=1, dst=2, mclass=MessageClass.DATA, size_flits=5,
                      create_cycle=0)
        rec.record(10, msg)
        rec.record(20, msg)
        path = str(tmp_path / "trace.jsonl")
        rec.save(path)
        events = MessageTraceRecorder.load(path)
        assert events == [TraceEvent(10, 1, 2, 0, 5, {}),
                          TraceEvent(20, 1, 2, 0, 5, {})]

    def test_replay_delivers_same_messages(self):
        events = [TraceEvent(5, 0, 3, 1, 1), TraceEvent(9, 0, 3, 0, 5),
                  TraceEvent(12, 2, 1, 0, 5)]
        sim, net = build("packet_vc4", 2, 2)
        sources = attach_trace_sources(net, events)
        sim.run(300)
        assert all(s.exhausted for s in sources)
        received = sum(s.messages_received for s in sources)
        assert received == 3

    def test_trace_source_filters_by_node(self):
        events = [TraceEvent(1, 0, 3, 0, 5), TraceEvent(1, 1, 3, 0, 5)]
        src0 = TraceSource(0, events)
        assert len(src0._events) == 1

"""Trace format v2: versioned header, metadata round-trip, upgrades."""

import json

import pytest

from repro.network.flit import Message, MessageClass
from repro.traffic import (
    MessageTraceRecorder,
    TraceEvent,
    TraceFormatError,
    attach_trace_sources,
    load_trace,
    upgrade_trace,
)
from repro.traffic.trace import TRACE_FORMAT, TRACE_VERSION, TraceSource

from tests.conftest import build


def _msg(meta=None, **kw):
    defaults = dict(src=1, dst=2, mclass=MessageClass.DATA, size_flits=5,
                    create_cycle=0)
    defaults.update(kw)
    msg = Message(**defaults)
    if meta:
        msg.meta.update(meta)
    return msg


class TestMetaRoundTrip:
    def test_save_load_equality_including_meta(self, tmp_path):
        rec = MessageTraceRecorder()
        rec.record(3, _msg(meta={"gpu": True, "slack": 7, "kind": "reply"}))
        rec.record(9, _msg(src=4, dst=0, mclass=MessageClass.CTRL,
                           size_flits=1, meta={"slack": 0}))
        path = str(tmp_path / "t.jsonl")
        rec.save(path, info={"scheme": "hybrid_tdm_vc4"})
        events, header = load_trace(path)
        assert events == rec.events
        assert events[0].meta == {"gpu": True, "slack": 7, "kind": "reply"}
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION
        assert header["events"] == 2
        assert header["scheme"] == "hybrid_tdm_vc4"

    def test_config_messages_are_skipped(self):
        rec = MessageTraceRecorder()
        rec.record(1, _msg(mclass=MessageClass.CONFIG, size_flits=1))
        assert rec.events == []

    def test_replay_restores_meta_on_messages(self):
        events = [TraceEvent(2, 0, 3, int(MessageClass.DATA), 5,
                             {"gpu": True, "slack": 4})]
        sim, net = build("packet_vc4", 2, 2)
        seen = []
        ni = net.ni(0)
        orig = ni.send
        ni.send = lambda m: (seen.append(m), orig(m))
        attach_trace_sources(net, events)
        sim.run(50)
        assert len(seen) == 1
        assert seen[0].meta["gpu"] is True
        assert seen[0].meta["slack"] == 4


class TestVersionedHeader:
    def test_legacy_file_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text("[3, 0, 1, 0, 5]\n[7, 1, 0, 0, 5]\n")
        with pytest.raises(TraceFormatError, match="unversioned legacy"):
            load_trace(str(path))

    def test_legacy_file_upgradable(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text("[3, 0, 1, 0, 5]\n")
        events, header = load_trace(str(path), upgrade_legacy=True)
        assert events == [TraceEvent(3, 0, 1, 0, 5, {})]
        assert header["version"] == 1

    def test_upgrade_trace_rewrites_as_v2(self, tmp_path):
        src = tmp_path / "legacy.jsonl"
        src.write_text("[3, 0, 1, 0, 5]\n")
        dst = str(tmp_path / "v2.jsonl")
        assert upgrade_trace(str(src), dst) == 1
        events, header = load_trace(dst)
        assert header["version"] == TRACE_VERSION
        assert events[0].meta == {}

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_wrong_format_discriminator_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": "something-else",
                                    "version": 2}) + "\n")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": TRACE_FORMAT,
                                    "version": TRACE_VERSION + 1}) + "\n")
        with pytest.raises(TraceFormatError, match="newer"):
            load_trace(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text(json.dumps({"format": TRACE_FORMAT,
                                    "version": TRACE_VERSION,
                                    "events": 5}) + "\n"
                        + "[1, 0, 1, 0, 5]\n")
        with pytest.raises(TraceFormatError, match="truncated or corrupt"):
            load_trace(str(path))

    def test_malformed_event_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": TRACE_FORMAT,
                                    "version": TRACE_VERSION}) + "\n"
                        + "[1, 2]\n")
        with pytest.raises(TraceFormatError, match="malformed"):
            load_trace(str(path))


class TestTraceSourceStamping:
    def test_mid_run_attach_keeps_recorded_create_cycle(self):
        """A source attached after its events' cycles injects the backlog
        immediately, but the messages keep their recorded age."""
        sim, net = build("packet_vc4", 2, 2)
        sim.run(100)
        events = [TraceEvent(5, 0, 3, int(MessageClass.DATA), 5,
                             {"slack": 2})]
        seen = []
        ni = net.ni(0)
        orig = ni.send
        ni.send = lambda m: (seen.append(m), orig(m))
        attach_trace_sources(net, events)
        sim.run(50)
        assert len(seen) == 1
        assert seen[0].create_cycle == 5      # ev.cycle, not attach cycle
        assert seen[0].meta["slack"] == 2

    def test_source_state_roundtrip(self):
        events = [TraceEvent(c, 0, 1, 0, 5) for c in (1, 2, 3)]
        src = TraceSource(0, events)
        src._next = 2
        src.messages_received = 4
        clone = TraceSource(0, events)
        clone.load_state_dict(src.state_dict())
        assert clone._next == 2 and clone.messages_received == 4
        assert not clone.exhausted


class TestDeprecatedAlias:
    def test_trace_recorder_alias_warns(self):
        import repro.traffic as traffic
        import repro.traffic.trace as trace_mod
        for mod in (traffic, trace_mod):
            with pytest.warns(DeprecationWarning, match="MessageTrace"):
                cls = mod.TraceRecorder
            assert cls is MessageTraceRecorder

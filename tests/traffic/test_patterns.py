"""Synthetic traffic pattern tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.topology import Mesh
from repro.traffic import PATTERN_NAMES, make_pattern

mesh66 = Mesh(6, 6)


class TestPatternDefinitions:
    def test_tornado_formula(self):
        """(x, y) -> (x + k/2 - 1 mod k, y) per the paper, k = 6 => +2."""
        pat = make_pattern("tornado", mesh66)
        src = mesh66.node_at(1, 3)
        assert pat(src) == mesh66.node_at(3, 3)
        src = mesh66.node_at(5, 0)
        assert pat(src) == mesh66.node_at(1, 0)

    def test_transpose_formula(self):
        pat = make_pattern("transpose", mesh66)
        assert pat(mesh66.node_at(1, 4)) == mesh66.node_at(4, 1)

    def test_transpose_diagonal_silent(self):
        pat = make_pattern("transpose", mesh66)
        assert pat(mesh66.node_at(2, 2)) is None

    def test_uniform_random_excludes_self(self):
        rng = np.random.default_rng(0)
        pat = make_pattern("uniform_random", mesh66, rng)
        for src in range(36):
            for _ in range(20):
                assert pat(src) != src

    def test_uniform_random_covers_all_destinations(self):
        rng = np.random.default_rng(0)
        pat = make_pattern("uniform_random", mesh66, rng)
        seen = {pat(0) for _ in range(2000)}
        assert seen == set(range(1, 36))

    def test_uniform_random_requires_rng(self):
        with pytest.raises(ValueError):
            make_pattern("uniform_random", mesh66)

    def test_bit_complement(self):
        m = Mesh(4, 4)
        pat = make_pattern("bit_complement", m)
        assert pat(m.node_at(0, 0)) == m.node_at(3, 3)
        assert pat(m.node_at(1, 2)) == m.node_at(2, 1)

    def test_neighbor_pattern(self):
        pat = make_pattern("neighbor", mesh66)
        assert pat(mesh66.node_at(0, 0)) == mesh66.node_at(1, 0)
        assert pat(mesh66.node_at(5, 0)) == mesh66.node_at(0, 0)

    def test_hotspot_concentrates(self):
        rng = np.random.default_rng(0)
        spot = mesh66.node_at(3, 3)
        pat = make_pattern("hotspot", mesh66, rng, hotspot_nodes=[spot],
                           hotspot_fraction=0.5)
        hits = sum(pat(0) == spot for _ in range(1000))
        assert 350 < hits < 650

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("zigzag", mesh66)


class TestPatternProperties:
    @given(st.sampled_from([n for n in PATTERN_NAMES
                            if n not in ("uniform_random", "hotspot")]),
           st.integers(2, 8), st.integers(2, 8), st.data())
    def test_destinations_always_in_mesh_and_not_self(self, name, w, h,
                                                      data):
        mesh = Mesh(w, h)
        pat = make_pattern(name, mesh)
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = pat(src)
        if dst is not None:
            assert 0 <= dst < mesh.num_nodes
            assert dst != src

    @given(st.integers(2, 8), st.integers(2, 8), st.data())
    def test_uniform_random_in_bounds(self, w, h, data):
        mesh = Mesh(w, h)
        rng = np.random.default_rng(data.draw(st.integers(0, 999)))
        pat = make_pattern("uniform_random", mesh, rng)
        src = data.draw(st.integers(0, mesh.num_nodes - 1))
        dst = pat(src)
        assert dst is None or (0 <= dst < mesh.num_nodes and dst != src)

    def test_deterministic_patterns_are_functions(self):
        for name in ("tornado", "transpose", "bit_complement",
                     "bit_reverse", "shuffle", "neighbor"):
            pat = make_pattern(name, mesh66)
            for src in range(36):
                assert pat(src) == pat(src)

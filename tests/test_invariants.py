"""Cross-cutting property-based invariants over random configurations.

These are the heavyweight guarantees of the simulator:

* message conservation — whatever the scheme, pattern, rate or seed,
  every generated message is delivered exactly once after drain;
* credit restoration — flow-control state returns to its initial value
  when the network empties;
* slot-table consistency — input tables and output-owner maps never
  disagree, even through setups, teardowns, failures and resizes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network.topology import NUM_PORTS

from tests.conftest import build, drain, run_traffic

SCHEMES = ["packet_vc4", "hybrid_tdm_vc4", "hybrid_tdm_hop_vct",
           "hybrid_sdm_vc4"]
PATTERNS = ["uniform_random", "tornado", "transpose", "neighbor"]

light = settings(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@light
@given(scheme=st.sampled_from(SCHEMES),
       pattern=st.sampled_from(PATTERNS),
       rate=st.floats(0.02, 0.35),
       seed=st.integers(0, 10_000))
def test_message_conservation(scheme, pattern, rate, seed):
    sim, net, sources = run_traffic(scheme, pattern, rate=rate,
                                    warmup=0, measure=600, seed=seed)
    assert drain(sim, net, max_cycles=20_000), "network failed to drain"
    generated = sum(s.messages_generated for s in sources)
    received = sum(s.messages_received for s in sources)
    assert received == generated


@light
@given(scheme=st.sampled_from(["packet_vc4", "hybrid_tdm_vc4"]),
       rate=st.floats(0.05, 0.4),
       seed=st.integers(0, 10_000))
def test_credits_restored_after_drain(scheme, rate, seed):
    sim, net, _ = run_traffic(scheme, "uniform_random", rate=rate,
                              warmup=0, measure=500, seed=seed)
    assert drain(sim, net, max_cycles=20_000)
    depth = net.cfg.router.vc_depth
    for r in net.routers:
        for outport in range(1, NUM_PORTS):
            if r.out_links[outport] is None:
                continue
            assert r.credits[outport][:r.rcfg.num_vcs] == \
                [depth] * r.rcfg.num_vcs


@light
@given(rate=st.floats(0.1, 0.5), seed=st.integers(0, 10_000),
       pattern=st.sampled_from(PATTERNS))
def test_slot_tables_consistent_under_protocol_churn(rate, seed, pattern):
    sim, net, sources = run_traffic("hybrid_tdm_vc4", pattern, rate=rate,
                                    width=5, height=5, warmup=0,
                                    measure=1200, seed=seed)
    active = net.clock.active
    for r in net.routers:
        st_ = r.slot_state
        owned = 0
        for out in range(NUM_PORTS):
            for slot in range(active):
                owner = st_.out_owner[out][slot]
                if owner == -1:
                    continue
                owned += 1
                hit = st_.lookup_in(owner, slot)
                assert hit is not None and hit[0] == out
        reserved = sum(t.reserved_count(active) for t in st_.in_tables)
        assert reserved == owned


@light
@given(seed=st.integers(0, 10_000), rate=st.floats(0.05, 0.4))
def test_hybrid_conservation_with_sharing_and_gating(seed, rate):
    sim, net, sources = run_traffic("hybrid_tdm_hop_vct", "transpose",
                                    rate=rate, width=5, height=5,
                                    warmup=0, measure=900, seed=seed)
    assert drain(sim, net, max_cycles=25_000)
    generated = sum(s.messages_generated for s in sources)
    received = sum(s.messages_received for s in sources)
    assert received == generated


@light
@given(rate=st.floats(0.05, 0.35), seed=st.integers(0, 10_000))
def test_sdm_plane_reservations_consistent(rate, seed):
    """cs_route and plane_owner never disagree under protocol churn."""
    sim, net, _ = run_traffic("hybrid_sdm_vc4", "transpose", rate=rate,
                              width=4, height=4, warmup=0, measure=900,
                              seed=seed)
    from repro.network.topology import LOCAL, opposite_port
    for node in range(net.mesh.num_nodes):
        r = net.router(node)
        for inport in range(NUM_PORTS):
            for plane in range(r.planes):
                out = r.cs_route[inport][plane]
                if out < 0:
                    continue
                # the output side must agree a circuit owns this plane
                assert r.plane_owner[out][plane] != -1


@light
@given(seed=st.integers(0, 1000))
def test_energy_components_nonnegative(seed):
    from repro.energy import compute_energy
    _, net, _ = run_traffic("hybrid_tdm_vc4", "tornado", 0.2,
                            warmup=200, measure=600, seed=seed)
    report = compute_energy(net)
    assert all(v >= 0 for v in report.dynamic.values())
    assert all(v >= 0 for v in report.static.values())


@pytest.mark.parametrize("scheme", SCHEMES)
def test_latency_never_below_zero_load_minimum(scheme):
    """No delivered packet can beat the physical minimum latency."""
    _, net, _ = run_traffic(scheme, "neighbor", 0.05, warmup=300,
                            measure=1000)
    # 1 hop minimum: NI link + 2 routers; circuits take >= 2 cycles/hop
    assert net.pkt_latency.samples
    assert min(net.pkt_latency.samples) >= 4

"""Connection manager for the SDM hybrid baseline (S12).

Reuses the frequency-trigger / setup / ack / teardown machinery of the
TDM :class:`~repro.core.circuit.ConnectionManager`; only the resource
being reserved differs: a *plane* end-to-end instead of time slots, so
there is no slot wait (SDM's latency advantage at low load) but the
number of circuits per link is capped at the plane count (SDM's
scalability limit)."""

from __future__ import annotations

from typing import Optional

from repro.core.circuit import ConnectionManager, ConnState, CSPlan
from repro.core.decision import estimate_ps_latency
from repro.network.flit import Message
from repro.network.routing import xy_outport
from repro.sdm.router import sdm_packet_size


class SDMConnectionManager(ConnectionManager):
    """Per-node circuit control for plane-reserved circuits."""

    @property
    def reserve_duration(self) -> int:
        return 1  # one plane, not a slot window

    # ------------------------------------------------------------------
    def _choose_slot(self, duration: int) -> Optional[int]:
        """Pick a free plane on the first hop (the 'slot' is a plane)."""
        router = self.router
        rng = router.rng
        for plane in rng.permutation(router.planes):
            plane = int(plane)
            if router.cs_route[0][plane] < 0:  # LOCAL inport unreserved
                return plane
        return None

    # ------------------------------------------------------------------
    def _plan_own(self, msg: Message, now: int) -> Optional[CSPlan]:
        conn = self.connections.get(msg.dst)
        if conn is None or conn.state is not ConnState.ACTIVE:
            return None
        size = sdm_packet_size(self.cfg, "cs_data")
        t0 = max(now + 1, conn.next_round_min)
        wait = t0 - now
        hops = self.mesh.hops(self.node, msg.dst)
        cs_lat = wait + 2 * (hops + 1) + (size - 1)
        ps_size = sdm_packet_size(self.cfg, "ps_data")
        ps_lat = estimate_ps_latency(
            hops, self.cfg.router.ps_pipeline_latency, ps_size)
        ps_lat = max(ps_lat, self.ni.ps_latency_ewma) + self.ni.ps_backlog_flits
        if not self.decision_fn(msg, wait, cs_lat, int(ps_lat)):
            return None
        conn.next_round_min = t0 + size  # the plane streams back-to-back
        conn.last_used = now
        conn.uses += 1
        self.cs_messages += 1
        # the plane index travels in the expected_outport plan field
        return CSPlan("own", t0, size, msg.dst, msg.dst, conn.slot0,
                      conn.conn_id)

    def _plan_vicinity(self, msg, now):  # pragma: no cover - not in SDM
        return None

    def _plan_hitchhike(self, msg, now):  # pragma: no cover - not in SDM
        return None

    # ------------------------------------------------------------------
    def _evict_if_crowded(self, now: int) -> None:
        """Evict an idle circuit when every plane at the source is taken."""
        router = self.router
        if any(router.cs_route[0][p] < 0 for p in range(router.planes)):
            return
        idle = [c for c in self.connections.values()
                if c.state is ConnState.ACTIVE
                and now - c.last_used >= self.ccfg.idle_evict_cycles]
        if idle:
            victim = min(idle, key=lambda c: c.last_used)
            self.teardown(victim, now)

    def _first_hop_outport(self, dst: int) -> int:
        return xy_outport(self.mesh, self.node, dst)

"""Network interface for the SDM hybrid network (S12).

Injection happens per plane: each plane slice is an independent narrow
channel, so the NI can stream up to one flit per plane per cycle (plus
the config escape channel).  Packet-switched packets are confined to a
single plane chosen at injection time (least-loaded productive plane) —
this is the packet serialisation the paper's Section IV critiques.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.config import NetworkConfig
from repro.network.flit import Flit, Message, MessageClass, Packet
from repro.network.interface import NetworkInterface
from repro.sdm.router import sdm_packet_size


class SDMNetworkInterface(NetworkInterface):
    """NI fronting a plane-partitioned router."""

    def __init__(self, node: int, cfg: NetworkConfig) -> None:
        super().__init__(node, cfg)
        self.planes = cfg.sdm.planes
        v = cfg.router.num_vcs
        self.total_vcs = self.planes * v + 1
        self.config_vc = self.planes * v
        self.local_credits = ([cfg.router.vc_depth] * (self.planes * v)
                              + [cfg.router.config_vc_depth])
        self.vc_in_use = [None] * self.total_vcs
        self.manager = None
        self._cs_outstanding = 0

    @property
    def _now(self) -> int:
        """Derived current-time clock — see the TDM hybrid NI for the
        full argument.  Not snapshot state."""
        last = self._last_inject
        sim = self.sim
        if sim is not None and sim.cycle - 1 > last:
            return sim.cycle - 1
        return last

    # ------------------------------------------------------------------
    def sim_idle(self, cycle: int) -> bool:
        if self._cs_outstanding:
            return False
        return NetworkInterface.sim_idle(self, cycle)

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self.manager is not None:
            plan = self.manager.plan_message(msg, self._now)
            if plan is not None:
                self._send_circuit(msg, plan)
                return
        self.enqueue_ps(msg)

    def enqueue_ps(self, msg: Message, size_kind: Optional[str] = None) -> None:
        if size_kind is None:
            size_kind = {
                MessageClass.DATA: "ps_data",
                MessageClass.CTRL: "ctrl",
                MessageClass.CONFIG: "config",
            }[msg.mclass]
        size = sdm_packet_size(self.cfg, size_kind)
        pkt = Packet(msg, src=self.node, dst=msg.dst, size=size,
                     circuit=False)
        self.ps_queue.append((pkt, None))
        self.sent_messages += 1
        self.sim_wake()

    def _send_circuit(self, msg: Message, plan) -> None:
        pkt = Packet(msg, src=self.node, dst=plan.circuit_dst,
                     size=plan.size, circuit=True)
        pkt.plane = plan.expected_outport  # plane index rides this field
        pkt.inject_cycle = plan.t0
        flits = pkt.make_flits()
        token = {"cancelled": False, "pkt": pkt, "pending": deque(flits)}
        on_ok, on_fail = self.make_cs_callbacks(token)
        for i, flit in enumerate(flits):
            flit.is_circuit = True
            self.router.schedule_cs_injection(
                plan.t0 + i, flit, on_ok=on_ok, on_fail=on_fail,
                token=token)
        self._cs_outstanding += plan.size
        self.sent_messages += 1
        self.counters.inc("cs_send_own")

    def make_cs_callbacks(self, token: dict):
        """(on_ok, on_fail) pair bound to *token* (also used when a
        snapshot restore rebuilds the router's injection schedule)."""
        return (lambda f, t=token: self._cs_flit_ok(f, t),
                lambda f, t=token: self._cs_flit_failed(f, t))

    def _cs_flit_ok(self, flit: Flit, token: dict) -> None:
        self._cs_outstanding -= 1
        token["pending"].remove(flit)
        self.counters.inc("flit_injected")

    def _cs_flit_failed(self, flit: Flit, token: dict) -> None:
        pending: Deque[Flit] = token["pending"]
        self._cs_outstanding -= len(pending)
        token["cancelled"] = True
        pkt: Packet = token["pkt"]
        pkt.circuit = False
        self.counters.inc("cs_fallback")
        self.enqueue_stream(pkt, deque(pending))
        pending.clear()

    # ------------------------------------------------------------------
    # per-plane injection pump
    # ------------------------------------------------------------------
    def _pump_injection(self, cycle: int) -> None:
        # allocate a VC (and thereby a plane) for the head packet
        if self.ps_queue:
            head_pkt, prebuilt = self.ps_queue[0]
            vc = self._allocate_injection_vc(head_pkt)
            if vc is not None:
                self.ps_queue.popleft()
                flits = prebuilt if prebuilt is not None \
                    else deque(head_pkt.make_flits())
                if head_pkt.plane is None:
                    head_pkt.plane = self._plane_of(vc)
                for f in flits:
                    f.vc = vc
                self.vc_in_use[vc] = flits
                if head_pkt.inject_cycle is None:
                    head_pkt.inject_cycle = cycle
        # stream one flit per plane per cycle (+ one config flit)
        sent_plane = [False] * self.planes
        sent_config = False
        for vc in range(self.total_vcs):
            stream = self.vc_in_use[vc]
            if stream is None or self.local_credits[vc] <= 0:
                continue
            if vc == self.config_vc:
                if sent_config:
                    continue
                sent_config = True
            else:
                plane = self._plane_of(vc)
                if sent_plane[plane]:
                    continue
                sent_plane[plane] = True
            flit = stream.popleft()
            self.local_credits[vc] -= 1
            self.inject_link.send(flit, cycle)
            self.counters.inc("flit_injected")
            if not stream:
                self.vc_in_use[vc] = None

    def _plane_of(self, vc: int) -> int:
        return vc // self.cfg.router.num_vcs

    def _allocate_injection_vc(self, pkt: Packet) -> Optional[int]:
        if pkt.mclass == MessageClass.CONFIG:
            vc = self.config_vc
            return vc if self.vc_in_use[vc] is None else None
        # least-loaded plane with a free VC
        v = self.cfg.router.num_vcs
        best_vc, best_load = None, None
        for plane in range(self.planes):
            base = plane * v
            free = next((base + i for i in range(v)
                         if self.vc_in_use[base + i] is None), None)
            if free is None:
                continue
            load = sum(len(self.vc_in_use[base + i])
                       for i in range(v) if self.vc_in_use[base + i])
            if best_load is None or load < best_load:
                best_vc, best_load = free, load
        return best_vc

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update({"cs_outstanding": self._cs_outstanding})
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._cs_outstanding = state["cs_outstanding"]

    @property
    def pending_flits(self) -> int:
        return super().pending_flits + self._cs_outstanding

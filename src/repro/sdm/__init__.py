"""SDM-based hybrid-switched NoC baseline (S12).

Reimplementation of the space-division-multiplexed hybrid switching of
Jerger et al. ("Circuit-switched coherence", NOCS 2008), the comparison
point of Section IV:

* every link is physically partitioned into ``planes`` slices (default 4
  slices of 4 bytes from the 16-byte channel);
* a circuit reserves one plane end-to-end; circuit flits cross each
  router in a single cycle on their plane with no buffering;
* packet-switched packets are confined to a single plane, so a 64-byte
  message serialises into 16 narrow flits plus head — the serialisation
  and intra-router contention penalty the paper's Section IV analyses;
* packet flits may steal a reserved plane's idle cycles (circuit flits
  always have priority).
"""

from repro.sdm.router import SDMRouter, sdm_packet_size
from repro.sdm.ni import SDMNetworkInterface
from repro.sdm.manager import SDMConnectionManager
from repro.sdm.network import SDMNetwork, build_sdm_network

__all__ = [
    "SDMRouter",
    "sdm_packet_size",
    "SDMNetworkInterface",
    "SDMConnectionManager",
    "SDMNetwork",
    "build_sdm_network",
]

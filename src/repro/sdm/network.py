"""Assembly of the SDM hybrid baseline network (S12)."""

from __future__ import annotations

from typing import List

from repro.config import NetworkConfig
from repro.network.network import Network, _build
from repro.sdm.manager import SDMConnectionManager
from repro.sdm.ni import SDMNetworkInterface
from repro.sdm.router import SDMRouter
from repro.sim.kernel import Simulator


class SDMNetwork(Network):
    """Plane-partitioned hybrid network (Jerger et al. baseline)."""

    def __init__(self, cfg: NetworkConfig, sim, routers, interfaces,
                 links) -> None:
        super().__init__(cfg, sim, routers, interfaces, links)
        self.managers: List[SDMConnectionManager] = []

    def cs_flits_ejected(self) -> int:
        return int(sum(ni.counters["cs_flit_ejected"]
                       for ni in self.interfaces))

    def ps_flits_ejected(self) -> int:
        return int(sum(ni.counters["ps_flit_ejected"]
                       for ni in self.interfaces))

    def cs_flit_fraction(self) -> float:
        cs = self.cs_flits_ejected()
        total = cs + self.ps_flits_ejected()
        return cs / total if total else 0.0

    def active_connections(self) -> int:
        from repro.core.circuit import ConnState
        return sum(1 for m in self.managers for c in m.connections.values()
                   if c.state is ConnState.ACTIVE)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["managers"] = [m.state_dict() for m in self.managers]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        for m, sub in zip(self.managers, state["managers"], strict=True):
            m.load_state_dict(sub)
        for router, ni in zip(self.routers, self.interfaces, strict=True):
            router.rebind_cs_injections(ni)


def build_sdm_network(cfg: NetworkConfig, sim: Simulator,
                      decision_fn=None, eligible_fn=None) -> SDMNetwork:
    net: SDMNetwork = _build(cfg, sim, router_cls=SDMRouter,
                             ni_cls=SDMNetworkInterface, net_cls=SDMNetwork)
    # SlotClock is a TDM concept; SDM managers never consult it, but the
    # shared ConnectionManager API expects one for its constructor.
    from repro.core.slot_table import SlotClock
    clock = SlotClock(max(cfg.sdm.planes, 2))
    for node in range(net.mesh.num_nodes):
        ni = net.interfaces[node]
        router = net.routers[node]
        manager = SDMConnectionManager(node, cfg, clock, net.mesh, ni,
                                       router, decision_fn=decision_fn,
                                       eligible_fn=eligible_fn)
        ni.manager = manager
        ni.config_handler = manager.on_config
        router.on_setup_rejected = manager.on_setup_rejected
        net.managers.append(manager)
    return net

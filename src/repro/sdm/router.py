"""SDM hybrid router: plane-sliced datapath (S12).

The router keeps ``planes * num_vcs`` data VCs per input port (VC index
``plane * num_vcs + i``) plus the config escape VC.  Each plane owns a
slice of every link and of the crossbar, so switch allocation grants up
to one flit per (output port, plane) pair per cycle, with the input-side
constraint applied per (input port, plane).

Circuit state per router:

* ``cs_route[inport][plane]``   -> reserved output port (or -1)
* ``plane_owner[outport][plane]`` -> owning connection id (or -1)

Setup messages carry the chosen plane in their payload ``slot_id`` field
(plane continuity: the same plane must be free on every hop, which is
what fundamentally limits the number of simultaneous circuits — the
paper's argument for TDM).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import CACHE_LINE_BYTES, NetworkConfig
from repro.network.buffers import InputPort
from repro.network.flit import ConfigType, Flit, MessageClass
from repro.network.router import EJECT_CREDITS, PacketRouter
from repro.network.topology import LOCAL, Mesh, NUM_PORTS


def sdm_packet_size(cfg: NetworkConfig, kind: str) -> int:
    """Packet sizes in *narrow* (plane-width) flits."""
    plane_w = cfg.router.channel_width_bytes // cfg.sdm.planes
    if plane_w < 1:
        raise ValueError("more planes than channel bytes")
    d = -(-CACHE_LINE_BYTES // plane_w)
    sizes = {"config": 1, "ctrl": 1, "cs_data": d, "ps_data": d + 1}
    try:
        return sizes[kind]
    except KeyError:
        raise ValueError(f"unknown packet kind {kind!r}") from None


class SDMRouter(PacketRouter):
    """Plane-partitioned hybrid router."""

    def __init__(self, node: int, cfg: NetworkConfig, mesh: Mesh) -> None:
        self.planes = cfg.sdm.planes
        super().__init__(node, cfg, mesh)
        v = cfg.router.num_vcs
        # rebuild the input ports with planes*num_vcs data VCs + config VC
        self.total_vcs = self.planes * v + 1
        self.config_vc = self.planes * v
        self.in_ports = [
            _PlanedInputPort(self.planes, v, cfg.router.vc_depth,
                             cfg.router.config_vc_depth)
            for _ in range(NUM_PORTS)
        ]
        self.credits = [[0] * self.total_vcs for _ in range(NUM_PORTS)]
        self.out_vc_owner = [[None] * self.total_vcs for _ in range(NUM_PORTS)]
        self._sa_ptr = [0] * (NUM_PORTS * self.planes)

        # circuit state
        self.cs_route: List[List[int]] = [
            [-1] * self.planes for _ in range(NUM_PORTS)]
        self.plane_owner: List[List[int]] = [
            [-1] * self.planes for _ in range(NUM_PORTS)]
        self._cs_in_used: List[List[bool]] = [
            [False] * self.planes for _ in range(NUM_PORTS)]
        self._cs_out_used: List[List[bool]] = [
            [False] * self.planes for _ in range(NUM_PORTS)]
        self._cs_inject: Dict[int, List] = {}
        self.on_setup_rejected: Optional[Callable] = None
        # transient (rebuilt on restore): per-outport owned-VC counts
        self._owned_out = [0] * NUM_PORTS

    # ------------------------------------------------------------------
    def connect_output(self, outport, link, credit_from, downstream,
                       downstream_depth, downstream_config_depth):
        super().connect_output(outport, link, credit_from, downstream,
                               downstream_depth, downstream_config_depth)
        if outport == LOCAL:
            self.credits[outport] = [EJECT_CREDITS] * self.total_vcs
        else:
            self.credits[outport] = (
                [downstream_depth] * (self.planes * self.rcfg.num_vcs)
                + [downstream_config_depth])

    def plane_of_vc(self, vc: int) -> int:
        return vc // self.rcfg.num_vcs

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def transfer(self, cycle: int) -> None:
        for p in range(NUM_PORTS):
            for pl in range(self.planes):
                self._cs_in_used[p][pl] = False
                self._cs_out_used[p][pl] = False
        self._process_arrivals(cycle)
        self._process_cs_injections(cycle)
        if self._buffered_flits:
            self._route_and_va(cycle)
            self._sa_st(cycle)
        if self.gating is not None:
            self._sample_utilisation()

    def sim_idle(self, cycle: int) -> bool:
        """Idle iff the packet pipeline is idle and no circuit activity is
        pending.  The plane-usage flags are reset at the *start* of the
        next :meth:`transfer`, so a router that carried circuit traffic
        this cycle stays awake one extra cycle to run that reset."""
        if self._cs_inject:
            return False
        for row in self._cs_in_used:
            if True in row:
                return False
        for row in self._cs_out_used:
            if True in row:
                return False
        return PacketRouter.sim_idle(self, cycle)

    # ------------------------------------------------------------------
    # circuit datapath
    # ------------------------------------------------------------------
    def _demux_arrival(self, inport: int, flit: Flit, cycle: int) -> None:
        if not flit.is_circuit:
            self._buffer_write(inport, flit, cycle)
            return
        plane = flit.packet.plane
        outport = self.cs_route[inport][plane]
        if outport < 0:
            # reservation vanished (teardown race): eject for hop-off
            self.counters.inc("cs_orphan")
            if self.obs.enabled:
                self.obs.cs_orphan(cycle, self._obs_track,
                                   flit.packet.id, "orphan")
            flit.is_circuit = False
            flit.packet.circuit = False
            self._cs_traverse(inport, LOCAL, plane, flit, cycle, orphan=True)
            return
        self._cs_traverse(inport, outport, plane, flit, cycle)

    def _cs_traverse(self, inport: int, outport: int, plane: int,
                     flit: Flit, cycle: int, orphan: bool = False) -> None:
        self._cs_in_used[inport][plane] = True
        if not orphan:
            self._cs_out_used[outport][plane] = True
        self.counters.inc("cs_xbar")
        self.counters.inc("cs_latch")
        if outport != LOCAL:
            self.counters.inc("link_narrow")
        flit.packet.hops_taken += 1
        self.out_links[outport].send(flit, cycle)

    def schedule_cs_injection(self, cycle: int, flit: Flit, on_ok: Callable,
                              on_fail: Callable, token: dict) -> None:
        self._cs_inject.setdefault(cycle, []).append(
            (flit, on_ok, on_fail, token))
        self.sim_wake()

    def _process_cs_injections(self, cycle: int) -> None:
        injections = self._cs_inject.pop(cycle, None)
        if not injections:
            return
        for flit, on_ok, on_fail, token in injections:
            if token.get("cancelled"):
                continue
            plane = flit.packet.plane
            outport = self.cs_route[LOCAL][plane]
            if outport < 0 or self._cs_in_used[LOCAL][plane] \
                    or self._cs_out_used[outport][plane]:
                on_fail(flit)
                continue
            self._cs_traverse(LOCAL, outport, plane, flit, cycle)
            on_ok(flit)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Packet-router state plus plane reservations and the pending
        circuit-injection schedule (callbacks excluded, rebuilt via
        :meth:`rebind_cs_injections` — see the TDM router)."""
        state = super().state_dict()
        state.update({
            "cs_route": [list(row) for row in self.cs_route],
            "plane_owner": [list(row) for row in self.plane_owner],
            "cs_in_used": [list(row) for row in self._cs_in_used],
            "cs_out_used": [list(row) for row in self._cs_out_used],
            "cs_inject": {
                cycle: [(flit, token) for flit, _ok, _fail, token in lst]
                for cycle, lst in self._cs_inject.items()},
        })
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.cs_route = [list(row) for row in state["cs_route"]]
        self.plane_owner = [list(row) for row in state["plane_owner"]]
        self._cs_in_used = [list(row) for row in state["cs_in_used"]]
        self._cs_out_used = [list(row) for row in state["cs_out_used"]]
        self._cs_inject_raw = state["cs_inject"]
        self._cs_inject = {}

    def rebind_cs_injections(self, ni) -> None:
        raw = getattr(self, "_cs_inject_raw", None)
        if raw is None:
            return
        del self._cs_inject_raw
        self._cs_inject = {
            cycle: [(flit, *ni.make_cs_callbacks(token), token)
                    for flit, token in entries]
            for cycle, entries in raw.items()}

    # ------------------------------------------------------------------
    # plane-aware VC allocation
    # ------------------------------------------------------------------
    def _allocate_out_vc(self, outport: int, is_config: bool,
                         plane: int = 0) -> Optional[int]:
        owners = self.out_vc_owner[outport]
        if is_config:
            ovc = self.config_vc
            return ovc if owners[ovc] is None else None
        v = self.rcfg.num_vcs
        base = plane * v
        for ovc in range(base, base + v):
            if owners[ovc] is None:
                return ovc
        return None

    def _route_and_va(self, cycle: int) -> None:
        for inport in range(NUM_PORTS):
            port = self.in_ports[inport]
            for invc, vcobj in enumerate(port.vcs):
                if vcobj.out_vc is not None or not vcobj.fifo:
                    continue
                head = vcobj.fifo[0]
                if not head.is_head or cycle < head.ready_cycle:
                    continue
                if vcobj.route_outport is None:
                    out = self._compute_route(inport, head, cycle)
                    if out is None:
                        vcobj.pop()
                        self._buffered_flits -= 1
                        self._return_credit(inport, invc, cycle)
                        continue
                    vcobj.route_outport = out
                is_config = invc == port.config_vc_index
                plane = 0 if is_config else self.plane_of_vc(invc)
                ovc = self._allocate_out_vc(vcobj.route_outport, is_config,
                                            plane)
                if ovc is not None:
                    vcobj.out_vc = ovc
                    self.out_vc_owner[vcobj.route_outport][ovc] = (inport, invc)
                    self._owned_out[vcobj.route_outport] += 1
                    self.counters.inc("vc_arb")

    # ------------------------------------------------------------------
    # plane-parallel switch allocation
    # ------------------------------------------------------------------
    def _sa_st(self, cycle: int) -> None:
        owned = self._owned_out
        used_in = None
        # config escape slice: one grant per outport per cycle
        for outport in range(NUM_PORTS):
            if not owned[outport] or self.out_links[outport] is None:
                continue
            if used_in is None:
                used_in = [row[:] for row in self._cs_in_used]
            self._sa_config(outport, cycle)
            for plane in range(self.planes):
                if self._cs_out_used[outport][plane]:
                    continue
                winner = self._sa_pick_plane(outport, plane, used_in, cycle)
                if winner is None:
                    continue
                inport, invc, ovc = winner
                used_in[inport][plane] = True
                self._traverse(outport, inport, invc, ovc, cycle)

    def _sa_config(self, outport: int, cycle: int) -> None:
        ovc = self.config_vc
        owner = self.out_vc_owner[outport][ovc]
        if owner is None or self.credits[outport][ovc] <= 0:
            return
        inport, invc = owner
        vcobj = self.in_ports[inport].vcs[invc]
        flit = vcobj.front()
        if flit is None or cycle < flit.ready_cycle:
            return
        self.counters.inc("sw_arb")
        self._traverse(outport, inport, invc, ovc, cycle)

    def _sa_pick_plane(self, outport: int, plane: int, used_in, cycle: int):
        v = self.rcfg.num_vcs
        base = plane * v
        owners = self.out_vc_owner[outport]
        credits = self.credits[outport]
        candidates = []
        for ovc in range(base, base + v):
            owner = owners[ovc]
            if owner is None or credits[ovc] <= 0:
                continue
            inport, invc = owner
            if used_in[inport][plane]:
                continue
            vcobj = self.in_ports[inport].vcs[invc]
            flit = vcobj.front()
            if flit is None or cycle < flit.ready_cycle:
                continue
            candidates.append((inport, invc, ovc))
        if not candidates:
            return None
        self.counters.inc("sw_arb")
        if len(candidates) == 1:
            return candidates[0]
        key_idx = outport * self.planes + plane
        ptr = self._sa_ptr[key_idx]
        n = NUM_PORTS * self.total_vcs
        winner = min(candidates,
                     key=lambda c: (c[0] * self.total_vcs + c[1] - ptr) % n)
        self._sa_ptr[key_idx] = winner[0] * self.total_vcs + winner[1] + 1
        return winner

    def _traverse(self, outport: int, inport: int, invc: int, ovc: int,
                  cycle: int) -> None:
        # narrow-flit link accounting (1/planes of a full-width traversal)
        vcobj = self.in_ports[inport].vcs[invc]
        flit = vcobj.pop()
        self._buffered_flits -= 1
        self.counters.inc("buffer_read")
        self.counters.inc("xbar")
        self._return_credit(inport, invc, cycle)
        flit.vc = ovc
        if outport != LOCAL:
            self.credits[outport][ovc] -= 1
            self.counters.inc("link_narrow")
        flit.packet.hops_taken += 1
        if flit.is_tail:
            self.out_vc_owner[outport][ovc] = None
            self._owned_out[outport] -= 1
            vcobj.clear_route()
        self.out_links[outport].send(flit, cycle)

    # ------------------------------------------------------------------
    # configuration processing: plane reservation
    # ------------------------------------------------------------------
    def _compute_route(self, inport: int, head: Flit,
                       cycle: int) -> Optional[int]:
        pkt = head.packet
        if pkt.mclass != MessageClass.CONFIG:
            return super()._compute_route(inport, head, cycle)
        payload = pkt.msg.payload
        if payload.ctype == ConfigType.SETUP:
            return self._process_setup(inport, pkt, payload, cycle)
        if payload.ctype == ConfigType.TEARDOWN:
            return self._process_teardown(inport, payload, cycle)
        return self._route_adaptive(pkt)

    def _process_setup(self, inport: int, pkt, payload,
                       cycle: int) -> Optional[int]:
        plane = payload.slot_id  # plane index rides the slot_id field
        if pkt.dst == self.node:
            outport = LOCAL
        else:
            from repro.network.routing import xy_outport
            outport = xy_outport(self.mesh, self.node, pkt.dst)
        free = (self.cs_route[inport][plane] < 0
                and self.plane_owner[outport][plane] < 0)
        if free:
            self.cs_route[inport][plane] = outport
            self.plane_owner[outport][plane] = payload.conn_id
            self.counters.inc("plane_reserved")
            if self.obs.enabled:
                self.obs.cs_setup(cycle, self._obs_track,
                                  payload.conn_id, "reserve",
                                  plane=plane, outport=outport)
            return LOCAL if outport == LOCAL else outport
        self.counters.inc("setup_rejected")
        if self.obs.enabled:
            self.obs.cs_setup(cycle, self._obs_track,
                              payload.conn_id, "reject")
        if self.on_setup_rejected is not None:
            self.on_setup_rejected(payload, cycle)
        return None

    def _process_teardown(self, inport: int, payload,
                          cycle: int) -> Optional[int]:
        plane = payload.slot_id
        outport = self.cs_route[inport][plane]
        if outport < 0:
            return None
        if self.plane_owner[outport][plane] != payload.conn_id:
            return None
        self.cs_route[inport][plane] = -1
        self.plane_owner[outport][plane] = -1
        if self.obs.enabled:
            self.obs.cs_teardown(cycle, self._obs_track,
                                 payload.conn_id, "release")
        if outport == LOCAL:
            return None
        return outport

    # ------------------------------------------------------------------
    # PS stealing of idle circuit planes is implicit: `_sa_pick_plane`
    # only skips a plane when a circuit flit actually used it this cycle.
    # ------------------------------------------------------------------

    def _sample_utilisation(self) -> None:  # pragma: no cover - SDM has no
        pass                                # VC gating in the paper's eval


class _PlanedInputPort(InputPort):
    """Input port with planes*num_vcs data VCs plus the config VC."""

    def __init__(self, planes: int, num_vcs: int, vc_depth: int,
                 config_vc_depth: int) -> None:
        super().__init__(planes * num_vcs, vc_depth, config_vc_depth)

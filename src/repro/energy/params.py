"""Energy model constants.

The paper evaluates with Orion 2.0, corrected per [12]/[13] (technology
parameters, SRAM bit-cell spacing, a matrix instead of mux-based
crossbar) and an RTL area model [14].  We do not have Orion itself, so
the constants below are an analytic stand-in with the same structure:
per-event dynamic energies and per-component leakage powers for a
5-port, 16-byte-channel, 4-VC x 5-deep router at 45 nm, 1.0 V, 1.5 GHz.

Absolute joules are representative, not authoritative; every result the
paper reports is a *relative* saving against the Packet-VC4 baseline, so
what matters (and what tests pin down) is the relative magnitude
structure: input buffers dominate router energy, circuit-switching
hardware (slot tables, CS latches, demuxes) adds well under a few
percent, and link + crossbar energy is unaffected by switching mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnergyParams:
    """All constants in picojoules (dynamic: per event; static: per cycle).

    Width-dependent events (buffer/crossbar/link/latch) are specified for
    a full-width 16-byte flit; narrow SDM plane flits scale by
    ``1/planes``.
    """

    # ---------------- dynamic, per event ----------------
    buffer_write_pj: float = 4.2
    buffer_read_pj: float = 3.6
    xbar_pj: float = 5.7          #: matrix crossbar traversal, full width
    vc_arb_pj: float = 0.35
    sw_arb_pj: float = 0.25
    link_pj: float = 7.8          #: one inter-router link, full-width flit
    #: slot-table lookup (one small-SRAM read: ~6 bits/entry)
    slot_read_pj: float = 0.16
    slot_write_pj: float = 0.18
    cs_latch_pj: float = 0.9      #: circuit-switched latch write, 16 B
    dlt_pj: float = 0.08          #: DLT lookup/update
    #: clock-tree dynamic energy per router cycle; the buffer-clocking
    #: share scales with powered VCs (per port)
    clock_base_pj: float = 2.6
    clock_per_vc_pj: float = 0.07  #: per powered VC per port per cycle

    # ---------------- static, per cycle ----------------
    #: one VC buffer (5 x 16 B SRAM + control) leakage per input port
    leak_vc_pj: float = 0.18
    leak_xbar_pj: float = 1.8
    leak_arb_pj: float = 0.5
    leak_clock_pj: float = 3.2
    #: one slot-table entry (valid bit + 3-bit output port + spare) per
    #: input port; sized from the bit ratio against a VC buffer
    #: (~6 bits vs a 5x128-byte buffer => ~1% of leak_vc_pj)
    leak_slot_entry_pj: float = 0.002
    leak_cs_latch_pj: float = 0.10   #: CS latches + demuxes per router
    leak_dlt_entry_pj: float = 0.004  #: per DLT entry per node
    leak_link_pj: float = 1.8        #: per inter-router link

    # ---------------- technology note ----------------
    technology: str = field(default="45nm, 1.0V, 1.5GHz", compare=False)

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if name.endswith("_pj") and value < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def default_45nm(cls) -> "EnergyParams":
        return cls()

"""Router area model (Section IV-A).

The paper synthesises both routers with the Nangate Open Cell Library at
45 nm and reports 0.177 mm^2 for the packet-switched router and
0.188 mm^2 for the hybrid-switched router — a 6.2 % overhead.  We model
area as a component sum calibrated to those totals so that parameter
studies (VC count, buffer depth, slot-table size) scale sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NetworkConfig
from repro.network.topology import NUM_PORTS

#: headline numbers from the paper (mm^2)
PACKET_ROUTER_AREA_MM2 = 0.177
HYBRID_ROUTER_AREA_MM2 = 0.188


@dataclass
class AreaModel:
    """Component areas in mm^2 for the Table-I router configuration."""

    #: one VC buffer (5 x 16 B) per input port
    vc_buffer_mm2: float = 0.00590
    #: 5x5 matrix crossbar at 16 B
    xbar_mm2: float = 0.0330
    #: VC + switch allocators
    arbiters_mm2: float = 0.0090
    #: clocking, control, misc (fitted residual)
    other_mm2: float = 0.0170
    #: one slot-table entry per input port (valid + 3-bit port)
    slot_entry_mm2: float = 0.0000148
    #: CS latches + demultiplexers
    cs_latch_mm2: float = 0.00150
    #: one DLT entry
    dlt_entry_mm2: float = 0.00004

    def packet_router(self, cfg: NetworkConfig) -> float:
        r = cfg.router
        return (self.vc_buffer_mm2 * r.num_vcs * NUM_PORTS
                + self.xbar_mm2 + self.arbiters_mm2 + self.other_mm2)

    def hybrid_router(self, cfg: NetworkConfig) -> float:
        area = self.packet_router(cfg)
        area += self.slot_entry_mm2 * cfg.slot_table.size * NUM_PORTS
        area += self.cs_latch_mm2
        if cfg.circuit.hitchhiker or cfg.circuit.vicinity:
            area += self.dlt_entry_mm2 * cfg.circuit.dlt_size
        return area

    def overhead(self, cfg: NetworkConfig) -> float:
        base = self.packet_router(cfg)
        return self.hybrid_router(cfg) / base - 1.0


def router_area_mm2(cfg: NetworkConfig,
                    model: AreaModel | None = None) -> float:
    """Area of one router under *cfg* (packet or hybrid)."""
    m = model or AreaModel()
    if cfg.switching == "packet":
        return m.packet_router(cfg)
    return m.hybrid_router(cfg)

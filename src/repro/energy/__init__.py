"""Orion-2.0-style NoC energy and area model (S13).

Per-event dynamic energies plus per-component leakage at 45 nm / 1.0 V /
1.5 GHz, with the RTL-informed corrections the paper applies (matrix
crossbar, adjusted SRAM cell spacing, Becker-RTL area calibration).
"""

from repro.energy.params import EnergyParams
from repro.energy.model import EnergyReport, compute_energy, energy_saving
from repro.energy.area import AreaModel, router_area_mm2

__all__ = [
    "EnergyParams",
    "EnergyReport",
    "compute_energy",
    "energy_saving",
    "AreaModel",
    "router_area_mm2",
]

"""Network energy accounting.

:func:`compute_energy` turns a network's event counters and power-gating
integrals into an :class:`EnergyReport` with the same component
categories as Figure 9: input buffers, circuit-switching (CS)
components, crossbars, VC/SW arbiters, clock, and links — each split
into dynamic and static energy.

Power gating is respected through time-weighted integrals: VC leakage is
paid per *powered* VC-cycle (aggressive VC power gating, Section III-B)
and slot-table leakage per *active* entry-cycle (dynamic time-division
granularity, Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.params import EnergyParams
from repro.network.topology import NUM_PORTS

COMPONENTS = ("buffer", "cs", "xbar", "arbiter", "clock", "link")


@dataclass
class EnergyReport:
    """Per-component dynamic/static energy (picojoules)."""

    dynamic: Dict[str, float] = field(default_factory=dict)
    static: Dict[str, float] = field(default_factory=dict)
    cycles: int = 0

    @property
    def dynamic_total(self) -> float:
        return sum(self.dynamic.values())

    @property
    def static_total(self) -> float:
        return sum(self.static.values())

    @property
    def total(self) -> float:
        return self.dynamic_total + self.static_total

    def dynamic_fraction(self, comp: str) -> float:
        if comp not in COMPONENTS:
            raise KeyError(f"unknown energy component {comp!r}; "
                           f"expected one of {COMPONENTS}")
        t = self.dynamic_total
        return self.dynamic.get(comp, 0.0) / t if t else 0.0

    def static_fraction(self, comp: str) -> float:
        if comp not in COMPONENTS:
            raise KeyError(f"unknown energy component {comp!r}; "
                           f"expected one of {COMPONENTS}")
        t = self.static_total
        return self.static.get(comp, 0.0) / t if t else 0.0

    def as_rows(self):
        """(component, dynamic_pj, static_pj) rows for reporting."""
        return [(c, self.dynamic.get(c, 0.0), self.static.get(c, 0.0))
                for c in COMPONENTS]


def _directed_inter_router_links(net) -> int:
    """Count of *directed* inter-router channels (one per port, so each
    physical bidirectional link contributes two).

    This is intentional, not double counting: the builder wires one
    unidirectional :class:`~repro.network.link.FlitLink` per direction,
    each with its own wires and drivers, and link leakage is charged per
    such channel.  A 4x4 mesh has 24 physical links and therefore 48
    directed channels (pinned by the energy regression tests).
    """
    mesh = net.mesh
    return sum(1 for node in range(mesh.num_nodes)
               for _ in mesh.ports(node))


def compute_energy(net, params: EnergyParams | None = None) -> EnergyReport:
    """Aggregate *net*'s measurement-window activity into energy."""
    p = params or EnergyParams.default_45nm()
    cfg = net.cfg
    now = net.sim.cycle
    cycles = max(1, net.measured_cycles)
    nr = len(net.routers)
    c = net.aggregate_counters()

    # width factor: SDM datapath events act on narrow plane flits
    wf = 1.0 / cfg.sdm.planes if cfg.switching == "sdm" else 1.0

    dyn: Dict[str, float] = {k: 0.0 for k in COMPONENTS}
    dyn["buffer"] = (c["buffer_write"] * p.buffer_write_pj
                     + c["buffer_read"] * p.buffer_read_pj) * wf
    dyn["xbar"] = (c["xbar"] + c["cs_xbar"]) * p.xbar_pj * wf
    dyn["arbiter"] = (c["vc_arb"] * p.vc_arb_pj
                      + c["sw_arb"] * p.sw_arb_pj)
    dyn["link"] = (c["link"] * p.link_pj * wf
                   + c["link_narrow"] * p.link_pj / cfg.sdm.planes)
    dyn["cs"] = (c["slot_read"] * p.slot_read_pj
                 + c["slot_write"] * p.slot_write_pj
                 + c["cs_latch"] * p.cs_latch_pj * wf)

    dlt_events = 0
    for r in net.routers:
        if getattr(r, "dlt", None) is not None:
            dlt_events += r.dlt.lookups + r.dlt.updates
    dyn["cs"] += dlt_events * p.dlt_pj

    # clock: base tree + per-powered-VC buffer clocking
    vc_cycles = 0.0  # powered VCs (per port) integrated over time
    for r in net.routers:
        vc_cycles += r.vc_power_integral.finalize(now)
    dyn["clock"] = (p.clock_base_pj * cycles * nr
                    + p.clock_per_vc_pj * vc_cycles * NUM_PORTS)

    sta: Dict[str, float] = {k: 0.0 for k in COMPONENTS}
    sta["buffer"] = p.leak_vc_pj * vc_cycles * NUM_PORTS
    sta["xbar"] = p.leak_xbar_pj * cycles * nr
    sta["arbiter"] = p.leak_arb_pj * cycles * nr
    sta["clock"] = p.leak_clock_pj * cycles * nr
    sta["link"] = p.leak_link_pj * cycles * _directed_inter_router_links(net)

    if cfg.switching == "tdm":
        ctl = net.size_controller
        entry_cycles = ctl.entries_integral.finalize(now) if ctl is not None \
            else cfg.slot_table.size * cycles
        sta["cs"] = (p.leak_slot_entry_pj * entry_cycles * NUM_PORTS * nr
                     + p.leak_cs_latch_pj * cycles * nr)
        dlt_entries = sum(getattr(r, "dlt", None) is not None
                          and r.dlt.capacity or 0 for r in net.routers)
        sta["cs"] += p.leak_dlt_entry_pj * dlt_entries * cycles
    elif cfg.switching == "sdm":
        # per-plane routing registers + CS latches
        sta["cs"] = (p.leak_slot_entry_pj * cfg.sdm.planes * NUM_PORTS
                     * cycles * nr
                     + p.leak_cs_latch_pj * cycles * nr)

    return EnergyReport(dynamic=dyn, static=sta, cycles=cycles)


def energy_saving(baseline: EnergyReport, candidate: EnergyReport) -> float:
    """Fractional network energy saving vs *baseline* (positive = saves)."""
    if baseline.total <= 0:
        return 0.0
    return 1.0 - candidate.total / baseline.total

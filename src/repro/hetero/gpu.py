"""Closed-loop accelerator (SIMT SM) model (Table II).

Each accelerator tile models one streaming multiprocessor with a pool of
warps.  A warp alternates between a compute phase (profile-derived gap)
and one coalesced memory request whose reply restarts the compute phase
— so the SM's injection rate emerges from the round-trip latency, and
throughput (completed warp iterations) is the Figure-8(c) GPU
performance metric.

The number of *available* warps (in compute, able to hide latency) gives
each message its slack estimate: the Section V-A2 policy circuit-switches
a GPU message only when that slack covers the circuit-switched latency.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.config import NetworkConfig
from repro.hetero.tiles import HeteroLayout
from repro.hetero.workloads import GPUWorkloadProfile
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint

#: memory requests an SM can issue per cycle (coalescing unit)
ISSUE_LIMIT = 2


class GPUCoreEndpoint(Endpoint):
    """One accelerator tile running a GPU kernel profile."""

    def __init__(self, node: int, cfg: NetworkConfig, layout: HeteroLayout,
                 profile: GPUWorkloadProfile,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.node = node
        self.cfg = cfg
        self.layout = layout
        self.profile = profile
        self.rng = rng

        self.banks = layout.banks_for_accel(node, profile.bank_fraction)
        #: (ready_cycle, warp_id) heap of warps in/finishing compute
        self._ready: List[Tuple[int, int]] = [
            (i % max(1, profile.compute_cycles // 4), i)
            for i in range(profile.warps)
        ]
        heapq.heapify(self._ready)
        self.waiting = 0
        self.iterations = 0
        self.requests_sent = 0

    # ------------------------------------------------------------------
    @property
    def available_warps(self) -> int:
        """Warps currently able to hide memory latency."""
        return len(self._ready)

    def slack_estimate(self) -> int:
        return self.available_warps * self.profile.slack_per_warp

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        issued = 0
        while (self._ready and issued < ISSUE_LIMIT
               and self._ready[0][0] <= cycle):
            _, warp = heapq.heappop(self._ready)
            self._issue_request(cycle, warp)
            issued += 1

    def _issue_request(self, cycle: int, warp: int) -> None:
        p = self.profile
        bank = self.banks[int(self.rng.integers(len(self.banks)))]
        slack = self.slack_estimate()
        req = Message(src=self.node, dst=bank, mclass=MessageClass.CTRL,
                      size_flits=1, create_cycle=cycle)
        req.meta.update(kind="read_req", requester=self.node, gpu=True,
                        warp=warp, slack=slack, miss_p=p.l2_miss_ratio)
        self.ni.send(req)
        self.requests_sent += 1
        self.waiting += 1
        if self.rng.random() < p.store_fraction:
            store = Message(src=self.node, dst=bank,
                            mclass=MessageClass.DATA,
                            size_flits=self.cfg.packet_size("ps_data"),
                            create_cycle=cycle)
            store.meta.update(kind="store", gpu=True, slack=slack)
            self.ni.send(store)

    # ------------------------------------------------------------------
    def on_message(self, msg: Message, cycle: int) -> None:
        if msg.meta.get("kind") != "data_reply":
            return
        warp = msg.meta.get("warp", 0)
        self.waiting = max(0, self.waiting - 1)
        self.iterations += 1
        heapq.heappush(self._ready,
                       (cycle + self.profile.compute_cycles, warp))

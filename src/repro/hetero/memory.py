"""Shared L2 banks and memory controllers (Table II).

* L2 bank: 8-cycle access latency; a hit replies with a cache-line DATA
  message, a miss forwards to the nearest memory controller and replies
  when the fill returns.
* Memory controller: 200-cycle DRAM access latency.

Reply messages inherit the requester's identity and slack annotation, so
the source-side circuit-switching decision at the L2/MC tiles can apply
the Section V-A2 policy to GPU-bound data.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.config import NetworkConfig
from repro.hetero.config import DEFAULT_SYSTEM
from repro.hetero.tiles import HeteroLayout
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint

L2_LATENCY = DEFAULT_SYSTEM.l2.access_latency       #: Table II: 8 cycles
DRAM_LATENCY = DEFAULT_SYSTEM.memory.access_latency  #: Table II: 200


class _ScheduledEndpoint(Endpoint):
    """Endpoint with a cycle-keyed action queue."""

    def __init__(self) -> None:
        super().__init__()
        self._due: Dict[int, List] = {}

    def _schedule(self, cycle: int, fn) -> None:
        self._due.setdefault(cycle, []).append(fn)

    def tick(self, cycle: int) -> None:
        actions = self._due.pop(cycle, None)
        if actions:
            for fn in actions:
                fn(cycle)


class L2BankEndpoint(_ScheduledEndpoint):
    """One bank of the shared distributed L2.

    The bank has finite request concurrency (``mshrs``): requests beyond
    the limit wait in an input queue and occupy an MSHR when one frees
    (hit replies free it at reply time; misses hold theirs until the
    DRAM fill returns).  This bounds the bank's service rate the way a
    real bank controller does, so network schemes feel back-pressure
    from hot banks.
    """

    def __init__(self, node: int, cfg: NetworkConfig, layout: HeteroLayout,
                 rng: np.random.Generator, mshrs: int = 16) -> None:
        super().__init__()
        self.node = node
        self.cfg = cfg
        self.layout = layout
        self.rng = rng
        self.mshrs = mshrs
        self._in_service = 0
        self._waiting: List[Message] = []
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.max_queue = 0

    # ------------------------------------------------------------------
    def on_message(self, msg: Message, cycle: int) -> None:
        kind = msg.meta.get("kind")
        if kind == "read_req":
            self._admit(msg, cycle)
        elif kind == "store":
            self.stores += 1
        elif kind == "mem_reply":
            self._reply(msg.meta, cycle)
            self._release(cycle)

    def _admit(self, req: Message, cycle: int) -> None:
        if self._in_service < self.mshrs:
            self._in_service += 1
            self._schedule(cycle + L2_LATENCY,
                           lambda c, m=req: self._serve(m, c))
        else:
            self._waiting.append(req)
            self.max_queue = max(self.max_queue, len(self._waiting))

    def _release(self, cycle: int) -> None:
        self._in_service -= 1
        if self._waiting:
            self._admit(self._waiting.pop(0), cycle)

    def _serve(self, req: Message, cycle: int) -> None:
        miss_p = req.meta.get("miss_p", 0.0)
        if self.rng.random() < miss_p:
            self.misses += 1
            mc = self.layout.mem_for_bank(self.node)
            fill = Message(src=self.node, dst=mc, mclass=MessageClass.CTRL,
                           size_flits=1, create_cycle=cycle)
            fill.meta.update(kind="mem_req", bank=self.node, orig=req.meta)
            self.ni.send(fill)
            # the MSHR stays held until the fill returns (mem_reply)
        else:
            self.hits += 1
            self._reply(req.meta, cycle)
            self._release(cycle)

    def _reply(self, req_meta: dict, cycle: int) -> None:
        meta = req_meta.get("orig", req_meta)
        reply = Message(src=self.node, dst=meta["requester"],
                        mclass=MessageClass.DATA,
                        size_flits=self.cfg.packet_size("ps_data"),
                        create_cycle=cycle)
        reply.meta.update(kind="data_reply", gpu=meta.get("gpu", False),
                          warp=meta.get("warp"), slack=meta.get("slack", 0),
                          critical=meta.get("critical", False))
        self.ni.send(reply)


class MemoryControllerEndpoint(_ScheduledEndpoint):
    """Off-chip DRAM channel behind one mesh tile."""

    def __init__(self, node: int, cfg: NetworkConfig,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.node = node
        self.cfg = cfg
        self.rng = rng
        self.accesses = 0

    def on_message(self, msg: Message, cycle: int) -> None:
        if msg.meta.get("kind") != "mem_req":
            return
        self.accesses += 1
        self._schedule(cycle + DRAM_LATENCY,
                       lambda c, m=msg: self._fill(m, c))

    def _fill(self, req: Message, cycle: int) -> None:
        orig = req.meta["orig"]
        data = Message(src=self.node, dst=req.meta["bank"],
                       mclass=MessageClass.DATA,
                       size_flits=self.cfg.packet_size("ps_data"),
                       create_cycle=cycle)
        data.meta.update(kind="mem_reply", orig=orig,
                         gpu=orig.get("gpu", False),
                         slack=orig.get("slack", 0))
        self.ni.send(data)

"""Phase-structured heterogeneous workload layer (ROADMAP item 3).

Real CPU+GPU applications are not stationary Bernoulli processes: SPEC
OMP codes alternate compute-dominated and memory-dominated program
phases, GPU kernels launch in bursts separated by host-side gaps, and
DRAM-bound working sets skew toward the banks fronting the memory
controllers.  This module layers that structure over the closed-loop
tile models (lumos-style MPSoC workload budgeting: the same profiles,
modulated in time and space):

* :class:`PhasedCPUCoreEndpoint` — the L1 miss rate is scaled down in
  even (compute) phases and up in odd (memory) phases; per-node phase
  offsets decorrelate the cores the way independent threads would be.
* :class:`PhasedGPUCoreEndpoint` — requests only issue while a kernel
  is resident; between kernels the SM drains, warps pile up ready, and
  the next kernel opens with a coalesced launch burst.
* :class:`HotspotLayout` — a layout proxy that redirects a biased
  fraction of CPU line fetches to the L2 banks closest to the memory
  controllers (the DRAM-side hotspot every banked LLC sees).

The phased endpoints inherit the request/reply cache-line dependency
chain (read_req -> data_reply, miss -> mem_req -> mem_reply) unchanged,
so network latency still feeds back into performance, and every message
keeps the ``gpu``/``slack`` metadata the Section V-A2 switching policy
and the v2 trace format carry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NetworkConfig
from repro.hetero.cpu import CPUCoreEndpoint
from repro.hetero.gpu import GPUCoreEndpoint
from repro.hetero.tiles import HeteroLayout
from repro.hetero.workloads import CPUWorkloadProfile, GPUWorkloadProfile


@dataclass(frozen=True)
class PhaseConfig:
    """Knobs of the phase-structured workload model."""

    #: cycles per CPU program phase (one compute + one memory phase
    #: alternate with this period each)
    cpu_phase_len: int = 800
    #: miss-rate multiplier during compute phases
    cpu_compute_scale: float = 0.25
    #: miss-rate multiplier during memory phases
    cpu_memory_scale: float = 2.0
    #: cycles a GPU kernel stays resident (issuing requests)
    gpu_kernel_len: int = 1200
    #: host-side gap between kernel launches (SM idle)
    gpu_gap_len: int = 300
    #: share of L2 banks in the DRAM-side hot set
    hotspot_fraction: float = 0.25
    #: probability a CPU line fetch is redirected to a hot bank
    hotspot_bias: float = 0.5

    def __post_init__(self) -> None:
        if self.cpu_phase_len < 1 or self.gpu_kernel_len < 1:
            raise ValueError("phase/kernel lengths must be >= 1 cycle")
        if self.gpu_gap_len < 0:
            raise ValueError("gpu_gap_len must be >= 0")
        if not 0.0 <= self.hotspot_bias <= 1.0:
            raise ValueError("hotspot_bias must be in [0, 1]")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1]")


class HotspotLayout:
    """Layout proxy skewing :meth:`bank_for_address` toward hot banks.

    The hot set is the ``hotspot_fraction`` of L2 banks nearest any
    memory controller (ties broken by node id), modelling the DRAM-bound
    share of the working set.  Everything else delegates to the wrapped
    :class:`~repro.hetero.tiles.HeteroLayout`.
    """

    def __init__(self, layout: HeteroLayout, cfg: PhaseConfig,
                 rng: np.random.Generator) -> None:
        self._layout = layout
        self._cfg = cfg
        self._rng = rng
        n_hot = max(1, round(cfg.hotspot_fraction * len(layout.l2_nodes)))
        by_mc_distance = sorted(
            layout.l2_nodes,
            key=lambda bank: (min(layout.mesh.hops(bank, m)
                                  for m in layout.mem_nodes), bank))
        self.hot_banks = by_mc_distance[:n_hot]

    def bank_for_address(self, address: int) -> int:
        if self._rng.random() < self._cfg.hotspot_bias:
            return self.hot_banks[address % len(self.hot_banks)]
        return self._layout.bank_for_address(address)

    def __getattr__(self, name: str):
        return getattr(self._layout, name)


class PhasedCPUCoreEndpoint(CPUCoreEndpoint):
    """CPU tile alternating compute-bound and memory-bound phases."""

    def __init__(self, node: int, cfg: NetworkConfig, layout,
                 profile: CPUWorkloadProfile, rng: np.random.Generator,
                 phase_cfg: PhaseConfig) -> None:
        super().__init__(node, cfg, layout, profile, rng)
        self.phase_cfg = phase_cfg
        # deterministic per-node offset decorrelates the cores without
        # drawing RNG (construction order must not perturb the stream)
        self._phase_offset = (node * 211) % (2 * phase_cfg.cpu_phase_len)

    def phase_index(self, cycle: int) -> int:
        return (cycle + self._phase_offset) // self.phase_cfg.cpu_phase_len

    def miss_scale(self, cycle: int) -> float:
        if self.phase_index(cycle) % 2 == 0:
            return self.phase_cfg.cpu_compute_scale
        return self.phase_cfg.cpu_memory_scale

    def tick(self, cycle: int) -> None:
        if self.blocked:
            self.stall_cycles += 1
            return
        p = self.profile
        self._retire_credit += p.ipc
        retired = int(self._retire_credit)
        self._retire_credit -= retired
        self.instructions_retired += retired
        self._miss_credit += retired * p.miss_rate * self.miss_scale(cycle)
        while self._miss_credit >= 1.0 and not self.blocked:
            self._miss_credit -= 1.0
            self._issue_miss(cycle)


class PhasedGPUCoreEndpoint(GPUCoreEndpoint):
    """Accelerator tile issuing only while a kernel is resident.

    Warps finishing compute during a launch gap accumulate in the ready
    heap, so each kernel opens with a burst — the characteristic
    kernel-launch injection spike of GPGPU traces.
    """

    def __init__(self, node: int, cfg: NetworkConfig, layout,
                 profile: GPUWorkloadProfile, rng: np.random.Generator,
                 phase_cfg: PhaseConfig) -> None:
        super().__init__(node, cfg, layout, profile, rng)
        self.phase_cfg = phase_cfg
        period = phase_cfg.gpu_kernel_len + phase_cfg.gpu_gap_len
        self._phase_offset = (node * 173) % period

    def kernel_active(self, cycle: int) -> bool:
        cfg = self.phase_cfg
        period = cfg.gpu_kernel_len + cfg.gpu_gap_len
        return (cycle + self._phase_offset) % period < cfg.gpu_kernel_len

    def tick(self, cycle: int) -> None:
        if self.kernel_active(cycle):
            super().tick(cycle)

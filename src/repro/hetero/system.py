"""The full heterogeneous system: tiles + workloads + network (S15).

:class:`HeteroSystem` builds one network scheme, attaches CPU cores,
accelerators, L2 banks and memory controllers per the Figure-7
floorplan, applies the Section V-A2 switching policy (packet-switch all
CPU traffic, hybrid-switch GPU data with warp-slack gating) and runs the
closed-loop simulation.  :class:`HeteroResult` carries the Figure-8/9 and
Table-III metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import NetworkConfig, scheme_config
from repro.core.decision import slack_decision
from repro.core.hybrid_network import build_hybrid_network
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.hetero.cpu import CPUCoreEndpoint
from repro.hetero.gpu import GPUCoreEndpoint
from repro.hetero.memory import L2BankEndpoint, MemoryControllerEndpoint
from repro.hetero.tiles import HeteroLayout, default_layout
from repro.hetero.workloads import (
    CPU_BENCHMARKS,
    CPUWorkloadProfile,
    GPU_BENCHMARKS,
    GPUWorkloadProfile,
)
from repro.network.flit import Message, MessageClass
from repro.network.network import Network, _build
from repro.network.interface import NetworkInterface
from repro.network.router import PacketRouter
from repro.sdm.network import build_sdm_network
from repro.sim.kernel import Simulator, default_engine


def gpu_data_eligible(msg: Message) -> bool:
    """Section V-A2: only GPU data messages are hybrid-switched."""
    return msg.mclass == MessageClass.DATA and bool(msg.meta.get("gpu"))


@dataclass
class HeteroResult:
    scheme: str
    cpu_benchmark: str
    gpu_benchmark: str
    cycles: int
    cpu_instructions: float
    gpu_iterations: int
    energy: EnergyReport
    cs_fraction: float
    avg_pkt_latency: float
    gpu_injection_rate: float  #: measured flits/accel-node/cycle

    @property
    def cpu_ipc(self) -> float:
        return self.cpu_instructions / max(1, self.cycles)

    @property
    def gpu_throughput(self) -> float:
        return self.gpu_iterations / max(1, self.cycles)


class HeteroSystem:
    """One scheme x workload-mix instantiation of the Figure-7 system."""

    def __init__(self, scheme: str, cpu_benchmark: str, gpu_benchmark: str,
                 seed: int = 0, width: int = 6, height: int = 6,
                 cfg: Optional[NetworkConfig] = None) -> None:
        self.scheme = scheme
        self.cpu_name = cpu_benchmark
        self.gpu_name = gpu_benchmark
        self.cpu_profile: CPUWorkloadProfile = CPU_BENCHMARKS[cpu_benchmark]
        self.gpu_profile: GPUWorkloadProfile = GPU_BENCHMARKS[gpu_benchmark]

        self.cfg = cfg or scheme_config(scheme, width=width, height=height)
        self.sim = Simulator(seed=seed, engine=default_engine())
        self.net = self._build_network()
        if self.sim._batch is not None:
            self.sim._batch.attach_network(self.net)
        self.layout: HeteroLayout = default_layout(self.net.mesh)
        self._attach_endpoints()
        self._perf_base = (0.0, 0)

    # ------------------------------------------------------------------
    def _build_network(self) -> Network:
        cfg, sim = self.cfg, self.sim
        if cfg.switching == "tdm":
            return build_hybrid_network(
                cfg, sim,
                decision_fn=slack_decision(),
                eligible_fn=gpu_data_eligible)
        if cfg.switching == "sdm":
            return build_sdm_network(
                cfg, sim,
                decision_fn=slack_decision(),
                eligible_fn=gpu_data_eligible)
        return _build(cfg, sim, PacketRouter, NetworkInterface, Network)

    def _attach_endpoints(self) -> None:
        rng = self.sim.rng
        self.cpus: Dict[int, CPUCoreEndpoint] = {}
        self.gpus: Dict[int, GPUCoreEndpoint] = {}
        self.l2s: Dict[int, L2BankEndpoint] = {}
        self.mcs: Dict[int, MemoryControllerEndpoint] = {}
        for node in self.layout.cpu_nodes:
            ep = CPUCoreEndpoint(node, self.cfg, self.layout,
                                 self.cpu_profile, rng)
            self.net.attach_endpoint(node, ep)
            self.cpus[node] = ep
        for node in self.layout.accel_nodes:
            ep = GPUCoreEndpoint(node, self.cfg, self.layout,
                                 self.gpu_profile, rng)
            self.net.attach_endpoint(node, ep)
            self.gpus[node] = ep
        for node in self.layout.l2_nodes:
            ep = L2BankEndpoint(node, self.cfg, self.layout, rng)
            self.net.attach_endpoint(node, ep)
            self.l2s[node] = ep
        for node in self.layout.mem_nodes:
            ep = MemoryControllerEndpoint(node, self.cfg, rng)
            self.net.attach_endpoint(node, ep)
            self.mcs[node] = ep

    # ------------------------------------------------------------------
    def _perf_counters(self):
        instr = sum(c.instructions_retired for c in self.cpus.values())
        iters = sum(g.iterations for g in self.gpus.values())
        return instr, iters

    def run(self, warmup: int = 2000, measure: int = 6000,
            energy_params: Optional[EnergyParams] = None) -> HeteroResult:
        self.sim.run(warmup)
        self.net.reset_stats()
        self._perf_base = self._perf_counters()
        self.sim.run(measure)
        instr, iters = self._perf_counters()
        instr -= self._perf_base[0]
        iters -= self._perf_base[1]

        cs_frac = (self.net.cs_flit_fraction()
                   if hasattr(self.net, "cs_flit_fraction") else 0.0)
        gpu_flits = sum(
            self.net.ni(n).counters["flit_injected"]
            for n in self.layout.accel_nodes)
        inj = gpu_flits / (max(1, self.net.measured_cycles)
                           * max(1, len(self.layout.accel_nodes)))
        return HeteroResult(
            scheme=self.scheme,
            cpu_benchmark=self.cpu_name,
            gpu_benchmark=self.gpu_name,
            cycles=self.net.measured_cycles,
            cpu_instructions=instr,
            gpu_iterations=iters,
            energy=compute_energy(self.net, energy_params),
            cs_fraction=cs_frac,
            avg_pkt_latency=self.net.pkt_latency.mean,
            gpu_injection_rate=inj,
        )

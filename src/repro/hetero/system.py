"""The full heterogeneous system: tiles + workloads + network (S15).

:class:`HeteroSystem` builds one network scheme, attaches CPU cores,
accelerators, L2 banks and memory controllers per the Figure-7
floorplan, applies the Section V-A2 switching policy (packet-switch all
CPU traffic, hybrid-switch GPU data with warp-slack gating) and runs the
closed-loop simulation.  :class:`HeteroResult` carries the Figure-8/9 and
Table-III metrics.

Two extensions feed ROADMAP item 3:

* the phase-structured workload layer (``phases=PhaseConfig(...)``)
  swaps in :class:`~repro.hetero.phases.PhasedCPUCoreEndpoint` /
  :class:`~repro.hetero.phases.PhasedGPUCoreEndpoint` and the
  memory-controller hotspot skew;
* record/replay: ``run(recorder=...)`` captures every endpoint message
  (with its ``gpu``/``slack`` metadata) into the v2 trace format, and
  :func:`run_hetero_replay` re-injects a saved trace into any scheme —
  the open-loop substitute for the paper's full-system traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.config import NetworkConfig, scheme_config
from repro.core.decision import make_decision_policy
from repro.core.hybrid_network import build_hybrid_network
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.hetero.cpu import CPUCoreEndpoint
from repro.hetero.gpu import GPUCoreEndpoint
from repro.hetero.memory import L2BankEndpoint, MemoryControllerEndpoint
from repro.hetero.phases import (
    HotspotLayout,
    PhaseConfig,
    PhasedCPUCoreEndpoint,
    PhasedGPUCoreEndpoint,
)
from repro.hetero.tiles import HeteroLayout, default_layout
from repro.hetero.workloads import (
    CPU_BENCHMARKS,
    CPUWorkloadProfile,
    GPU_BENCHMARKS,
    GPUWorkloadProfile,
)
from repro.network.flit import Message, MessageClass
from repro.network.network import Network, _build
from repro.network.interface import NetworkInterface
from repro.network.router import PacketRouter
from repro.sdm.network import build_sdm_network
from repro.sim.kernel import Simulator, default_engine
from repro.traffic.trace import (
    MessageTraceRecorder,
    TraceEvent,
    attach_trace_sources,
    load_trace,
)


def gpu_data_eligible(msg: Message) -> bool:
    """Section V-A2: only GPU data messages are hybrid-switched."""
    return msg.mclass == MessageClass.DATA and bool(msg.meta.get("gpu"))


def _make_network(cfg: NetworkConfig, sim: Simulator,
                  policy: str = "slack") -> Network:
    """Build the scheme's network with the named decision policy."""
    if cfg.switching == "tdm":
        return build_hybrid_network(
            cfg, sim,
            decision_fn=make_decision_policy(policy),
            eligible_fn=gpu_data_eligible)
    if cfg.switching == "sdm":
        return build_sdm_network(
            cfg, sim,
            decision_fn=make_decision_policy(policy),
            eligible_fn=gpu_data_eligible)
    return _build(cfg, sim, PacketRouter, NetworkInterface, Network)


@dataclass
class HeteroResult:
    scheme: str
    cpu_benchmark: str
    gpu_benchmark: str
    cycles: int
    cpu_instructions: float
    gpu_iterations: int
    energy: EnergyReport
    cs_fraction: float
    avg_pkt_latency: float
    gpu_injection_rate: float  #: measured flits/accel-node/cycle
    messages_delivered: int = 0

    @property
    def cpu_ipc(self) -> float:
        return self.cpu_instructions / max(1, self.cycles)

    @property
    def gpu_throughput(self) -> float:
        return self.gpu_iterations / max(1, self.cycles)


class HeteroSystem:
    """One scheme x workload-mix instantiation of the Figure-7 system."""

    def __init__(self, scheme: str, cpu_benchmark: str, gpu_benchmark: str,
                 seed: int = 0, width: int = 6, height: int = 6,
                 cfg: Optional[NetworkConfig] = None,
                 engine: Optional[str] = None,
                 phases: Optional[PhaseConfig] = None,
                 policy: str = "slack") -> None:
        self.scheme = scheme
        self.cpu_name = cpu_benchmark
        self.gpu_name = gpu_benchmark
        self.cpu_profile: CPUWorkloadProfile = CPU_BENCHMARKS[cpu_benchmark]
        self.gpu_profile: GPUWorkloadProfile = GPU_BENCHMARKS[gpu_benchmark]
        self.phases = phases
        self.policy = policy

        self.cfg = cfg or scheme_config(scheme, width=width, height=height)
        self.sim = Simulator(seed=seed, engine=engine or default_engine())
        self.net = _make_network(self.cfg, self.sim, policy)
        if self.sim._batch is not None:
            self.sim._batch.attach_network(self.net)
        self.layout: HeteroLayout = default_layout(self.net.mesh)
        self._attach_endpoints()
        self._perf_base = (0.0, 0)

    # ------------------------------------------------------------------
    def _attach_endpoints(self) -> None:
        rng = self.sim.rng
        self.cpus: Dict[int, CPUCoreEndpoint] = {}
        self.gpus: Dict[int, GPUCoreEndpoint] = {}
        self.l2s: Dict[int, L2BankEndpoint] = {}
        self.mcs: Dict[int, MemoryControllerEndpoint] = {}
        cpu_layout = self.layout
        if self.phases is not None:
            cpu_layout = HotspotLayout(self.layout, self.phases, rng)
        for node in self.layout.cpu_nodes:
            if self.phases is not None:
                ep: CPUCoreEndpoint = PhasedCPUCoreEndpoint(
                    node, self.cfg, cpu_layout, self.cpu_profile, rng,
                    self.phases)
            else:
                ep = CPUCoreEndpoint(node, self.cfg, cpu_layout,
                                     self.cpu_profile, rng)
            self.net.attach_endpoint(node, ep)
            self.cpus[node] = ep
        for node in self.layout.accel_nodes:
            if self.phases is not None:
                gep: GPUCoreEndpoint = PhasedGPUCoreEndpoint(
                    node, self.cfg, self.layout, self.gpu_profile, rng,
                    self.phases)
            else:
                gep = GPUCoreEndpoint(node, self.cfg, self.layout,
                                      self.gpu_profile, rng)
            self.net.attach_endpoint(node, gep)
            self.gpus[node] = gep
        for node in self.layout.l2_nodes:
            l2 = L2BankEndpoint(node, self.cfg, self.layout, rng)
            self.net.attach_endpoint(node, l2)
            self.l2s[node] = l2
        for node in self.layout.mem_nodes:
            mc = MemoryControllerEndpoint(node, self.cfg, rng)
            self.net.attach_endpoint(node, mc)
            self.mcs[node] = mc

    # ------------------------------------------------------------------
    def _perf_counters(self):
        instr = sum(c.instructions_retired for c in self.cpus.values())
        iters = sum(g.iterations for g in self.gpus.values())
        return instr, iters

    def run(self, warmup: int = 2000, measure: int = 6000,
            energy_params: Optional[EnergyParams] = None,
            recorder: Optional[MessageTraceRecorder] = None) -> HeteroResult:
        """Run warmup then a measured window; with *recorder*, capture
        every endpoint message (warmup included, so a replay can apply
        the same warmup/measure split)."""
        if recorder is not None:
            recorder.attach(self.net)
        try:
            self.sim.run(warmup)
            self.net.reset_stats()
            self._perf_base = self._perf_counters()
            self.sim.run(measure)
        finally:
            if recorder is not None:
                recorder.detach()
        instr, iters = self._perf_counters()
        instr -= self._perf_base[0]
        iters -= self._perf_base[1]

        cs_frac = (self.net.cs_flit_fraction()
                   if hasattr(self.net, "cs_flit_fraction") else 0.0)
        gpu_flits = sum(
            self.net.ni(n).counters["flit_injected"]
            for n in self.layout.accel_nodes)
        inj = gpu_flits / (max(1, self.net.measured_cycles)
                           * max(1, len(self.layout.accel_nodes)))
        return HeteroResult(
            scheme=self.scheme,
            cpu_benchmark=self.cpu_name,
            gpu_benchmark=self.gpu_name,
            cycles=self.net.measured_cycles,
            cpu_instructions=instr,
            gpu_iterations=iters,
            energy=compute_energy(self.net, energy_params),
            cs_fraction=cs_frac,
            avg_pkt_latency=self.net.pkt_latency.mean,
            gpu_injection_rate=inj,
            messages_delivered=self.net.messages_delivered,
        )


def run_hetero_replay(scheme: str,
                      trace: Union[str, List[TraceEvent]],
                      warmup: int = 2000, measure: int = 6000,
                      seed: int = 0, width: int = 6, height: int = 6,
                      cfg: Optional[NetworkConfig] = None,
                      engine: Optional[str] = None,
                      policy: str = "slack",
                      energy_params: Optional[EnergyParams] = None,
                      ) -> HeteroResult:
    """Replay a recorded heterogeneous trace against *scheme*.

    *trace* is a path to a v2 trace file or an in-memory event list.
    Messages are re-injected at their recorded cycles with metadata
    restored, so ``meta['gpu']`` keeps GPU DATA hybrid-switch eligible
    and ``meta['slack']`` still drives the Section V-A2 gate — the same
    trace replays as circuit-heavy or packet-only purely as a function
    of the scheme.  Use the recording's warmup/measure split (saved in
    the trace header) for like-for-like ``cs_fraction`` numbers.
    """
    header: Dict = {}
    if isinstance(trace, str):
        events, header = load_trace(trace)
    else:
        events = list(trace)
    cfg = cfg or scheme_config(scheme, width=width, height=height)
    sim = Simulator(seed=seed, engine=engine or default_engine())
    net = _make_network(cfg, sim, policy)
    if sim._batch is not None:
        sim._batch.attach_network(net)
    attach_trace_sources(net, events)
    sim.run(warmup)
    net.reset_stats()
    sim.run(measure)

    layout = default_layout(net.mesh)
    cs_frac = (net.cs_flit_fraction()
               if hasattr(net, "cs_flit_fraction") else 0.0)
    gpu_flits = sum(net.ni(n).counters["flit_injected"]
                    for n in layout.accel_nodes)
    inj = gpu_flits / (max(1, net.measured_cycles)
                       * max(1, len(layout.accel_nodes)))
    return HeteroResult(
        scheme=scheme,
        cpu_benchmark=str(header.get("cpu_benchmark", "replay")),
        gpu_benchmark=str(header.get("gpu_benchmark", "replay")),
        cycles=net.measured_cycles,
        cpu_instructions=0.0,
        gpu_iterations=0,
        energy=compute_energy(net, energy_params),
        cs_fraction=cs_frac,
        avg_pkt_latency=net.pkt_latency.mean,
        gpu_injection_rate=inj,
        messages_delivered=net.messages_delivered,
    )

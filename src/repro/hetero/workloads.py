"""Workload profiles for the 8 CPU and 7 GPU benchmarks (Section V-A1).

The paper runs SPEC OMP 2001 applications on the CPU cores and
GPGPU-Sim/Rodinia kernels on the accelerators.  Without those
simulators, each benchmark is a parameterised closed-loop model:

* CPU profiles: issue width (IPC), L1 miss rate per instruction,
  memory-level parallelism (outstanding-miss limit), fraction of misses
  that block retirement immediately (criticality), and L2 miss ratio.
  Values reflect the published memory-intensity ranking of SPEC OMP
  (ART and SWIM memory-bound; WUPWISE and GAFORT compute-bound).
* GPU profiles: warps per SM, per-warp compute gap between memory
  requests (derived from the Table-III injection target), store
  fraction, L2 working-set locality (LIB touches few banks - the paper
  notes it has fewer communication pairs), and L2 miss ratio.

``gpu.compute_cycles`` is derived so the closed-loop injection rate
approximates Table III's flits/node/cycle at nominal round-trip latency;
the Table-III benchmark re-measures the achieved rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: nominal round-trip latency assumed when deriving compute gaps (cycles)
NOMINAL_ROUND_TRIP = 60


@dataclass(frozen=True)
class CPUWorkloadProfile:
    name: str
    ipc: float                 #: retire rate when not stalled
    miss_rate: float           #: L1 misses per instruction
    mlp: int                   #: max outstanding misses (MSHRs)
    crit_fraction: float       #: misses that stall retirement immediately
    l2_miss_ratio: float       #: fraction of L2 accesses going to memory
    store_fraction: float = 0.3  #: misses that also write a line back


@dataclass(frozen=True)
class GPUWorkloadProfile:
    name: str
    inj_target: float          #: Table III flits/node/cycle
    warps: int = 32            #: schedulable warps per SM (Table II: 1024
    #                             threads / 32-wide SIMD)
    store_fraction: float = 0.25
    bank_fraction: float = 0.5  #: share of L2 banks in the working set
    l2_miss_ratio: float = 0.25
    slack_per_warp: int = 2     #: extra-latency cycles hidden per
    #                              available warp (decision slack)

    @property
    def flits_per_request(self) -> float:
        """NI-injected flits per warp iteration (request + stores)."""
        return 1.0 + self.store_fraction * 5.0

    @property
    def compute_cycles(self) -> int:
        """Per-warp compute gap hitting ``inj_target`` at nominal RTT."""
        period = self.warps * self.flits_per_request / self.inj_target
        return max(1, int(period - NOMINAL_ROUND_TRIP))


# ---------------------------------------------------------------------------
# SPEC OMP 2001 CPU benchmarks (Section V-A1)
# ---------------------------------------------------------------------------
CPU_BENCHMARKS: Dict[str, CPUWorkloadProfile] = {
    "AMMP":    CPUWorkloadProfile("AMMP",    ipc=1.6, miss_rate=0.006,
                                  mlp=8, crit_fraction=0.25,
                                  l2_miss_ratio=0.15),
    "APPLU":   CPUWorkloadProfile("APPLU",   ipc=1.8, miss_rate=0.010,
                                  mlp=8, crit_fraction=0.20,
                                  l2_miss_ratio=0.25),
    "ART":     CPUWorkloadProfile("ART",     ipc=1.2, miss_rate=0.030,
                                  mlp=8, crit_fraction=0.35,
                                  l2_miss_ratio=0.45),
    "EQUAKE":  CPUWorkloadProfile("EQUAKE",  ipc=1.5, miss_rate=0.015,
                                  mlp=8, crit_fraction=0.30,
                                  l2_miss_ratio=0.30),
    "GAFORT":  CPUWorkloadProfile("GAFORT",  ipc=2.0, miss_rate=0.004,
                                  mlp=8, crit_fraction=0.15,
                                  l2_miss_ratio=0.10),
    "MGRID":   CPUWorkloadProfile("MGRID",   ipc=1.7, miss_rate=0.012,
                                  mlp=8, crit_fraction=0.20,
                                  l2_miss_ratio=0.35),
    "SWIM":    CPUWorkloadProfile("SWIM",    ipc=1.3, miss_rate=0.025,
                                  mlp=8, crit_fraction=0.30,
                                  l2_miss_ratio=0.50),
    "WUPWISE": CPUWorkloadProfile("WUPWISE", ipc=2.2, miss_rate=0.003,
                                  mlp=8, crit_fraction=0.10,
                                  l2_miss_ratio=0.10),
}

# ---------------------------------------------------------------------------
# GPU benchmarks with Table-III injection targets (flits/node/cycle)
# ---------------------------------------------------------------------------
GPU_BENCHMARKS: Dict[str, GPUWorkloadProfile] = {
    "BLACKSCHOLES": GPUWorkloadProfile("BLACKSCHOLES", inj_target=0.18,
                                       store_fraction=0.30,
                                       bank_fraction=0.45,
                                       l2_miss_ratio=0.20),
    "HOTSPOT":      GPUWorkloadProfile("HOTSPOT", inj_target=0.09,
                                       store_fraction=0.25,
                                       bank_fraction=0.50,
                                       l2_miss_ratio=0.25),
    "LIB":          GPUWorkloadProfile("LIB", inj_target=0.20,
                                       store_fraction=0.20,
                                       bank_fraction=0.20,
                                       l2_miss_ratio=0.30),
    "LPS":          GPUWorkloadProfile("LPS", inj_target=0.20,
                                       store_fraction=0.30,
                                       bank_fraction=0.45,
                                       l2_miss_ratio=0.25),
    "NN":           GPUWorkloadProfile("NN", inj_target=0.18,
                                       store_fraction=0.25,
                                       bank_fraction=0.55,
                                       l2_miss_ratio=0.20),
    "PATHFINDER":   GPUWorkloadProfile("PATHFINDER", inj_target=0.13,
                                       store_fraction=0.25,
                                       bank_fraction=0.50,
                                       l2_miss_ratio=0.30),
    "STO":          GPUWorkloadProfile("STO", inj_target=0.05,
                                       store_fraction=0.20,
                                       bank_fraction=0.60,
                                       l2_miss_ratio=0.15),
}


def workload_mixes() -> List[Tuple[str, str]]:
    """All 56 CPU x GPU combinations (Section V-A1), grouped by GPU
    benchmark as in Figure 8's x-axis."""
    return [(cpu, gpu) for gpu in GPU_BENCHMARKS for cpu in CPU_BENCHMARKS]

"""Tile floorplan of the evaluated 36-tile system (Figure 7).

``C``  tile: CPU core + private L1
``A``  tile: data-parallel accelerator (SIMT SM)
``L``  tile: one bank of the shared distributed L2
``M``  tile: memory controller to off-chip DRAM

The default floorplan is symmetric: CPU cores at the corners and centre,
accelerators ringing the centre, L2 banks interleaved between them and
the four memory controllers on the east/west edge midpoints — 8 C,
12 A, 12 L2 and 4 M tiles, matching the paper's system composition.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Sequence

from repro.network.topology import Mesh


class TileType(Enum):
    CPU = "C"
    ACCEL = "A"
    L2 = "L"
    MEM = "M"


#: rows listed top (y = 5) to bottom (y = 0)
FLOORPLAN_6X6: Sequence[str] = (
    "CLAALC",
    "LALLAL",
    "MACCAM",
    "MACCAM",
    "LALLAL",
    "CLAALC",
)


class HeteroLayout:
    """Node-id lists per tile type for a given floorplan."""

    def __init__(self, mesh: Mesh,
                 floorplan: Sequence[str] = FLOORPLAN_6X6) -> None:
        if len(floorplan) != mesh.height or any(
                len(row) != mesh.width for row in floorplan):
            raise ValueError("floorplan does not match mesh dimensions")
        self.mesh = mesh
        self.tile_of: Dict[int, TileType] = {}
        self.cpu_nodes: List[int] = []
        self.accel_nodes: List[int] = []
        self.l2_nodes: List[int] = []
        self.mem_nodes: List[int] = []
        by_char = {t.value: t for t in TileType}
        for row_idx, row in enumerate(floorplan):
            y = mesh.height - 1 - row_idx  # first row is the top
            for x, ch in enumerate(row):
                node = mesh.node_at(x, y)
                tile = by_char[ch]
                self.tile_of[node] = tile
                {TileType.CPU: self.cpu_nodes,
                 TileType.ACCEL: self.accel_nodes,
                 TileType.L2: self.l2_nodes,
                 TileType.MEM: self.mem_nodes}[tile].append(node)

    # ------------------------------------------------------------------
    def bank_for_address(self, address: int) -> int:
        """Static address hash across L2 banks."""
        return self.l2_nodes[address % len(self.l2_nodes)]

    def mem_for_bank(self, bank_node: int) -> int:
        """Memory controller serving a bank (nearest by hop count)."""
        return min(self.mem_nodes,
                   key=lambda m: (self.mesh.hops(bank_node, m), m))

    def banks_for_accel(self, accel_node: int, fraction: float) -> List[int]:
        """The L2 banks an accelerator's working set maps to.

        ``fraction`` models per-benchmark communication-pair locality
        (e.g. LIB touches few banks); the subset is a deterministic
        rotation so different accelerators favour different banks.
        """
        n = len(self.l2_nodes)
        k = max(1, round(fraction * n))
        start = (accel_node * 7) % n
        return [self.l2_nodes[(start + i) % n] for i in range(k)]


def default_layout(mesh: Mesh) -> HeteroLayout:
    if (mesh.width, mesh.height) == (6, 6):
        return HeteroLayout(mesh, FLOORPLAN_6X6)
    return HeteroLayout(mesh, _generated_floorplan(mesh))


def _generated_floorplan(mesh: Mesh) -> Sequence[str]:
    """Scaled floorplan for non-6x6 meshes (same type ratios).

    Used by the scalability study: keeps the proportions 2:3:3:1 for
    C:A:L:M, with memory controllers on the edge midpoints.
    """
    w, h = mesh.width, mesh.height
    rows = []
    for row_idx in range(h):
        row = []
        for x in range(w):
            y = h - 1 - row_idx
            if x in (0, w - 1) and y in (h // 2, h // 2 - 1):
                row.append("M")
            elif (x + y) % 3 == 0:
                row.append("C" if (x * y) % 2 == 0 else "L")
            elif (x + y) % 3 == 1:
                row.append("A")
            else:
                row.append("L")
        rows.append("".join(row))
    return tuple(rows)

"""Baseline system configuration (Table II).

==========================  ==============================================
Processor                   four-way out-of-order, 6 integer FUs,
                            4 floating-point FUs, 128-entry ROB
L1 cache                    split private I/D, 64 KB each, 2-way,
                            64 B blocks, 1-cycle access
L2 cache                    16 MB banked shared distributed, 4-way,
                            64 B blocks, 8-cycle access
Accelerator                 32-wide SIMD pipeline, 1024 threads,
                            32 KB shared memory
Memory                      4 GB DRAM, 200-cycle access latency,
                            4 memory controllers
==========================  ==============================================

The cycle-level models consume the *timing* parameters (L2/DRAM access
latencies, warp count = threads/SIMD width, ROB-derived MLP); the
capacity parameters document the modelled system and feed validation
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CPUConfig:
    issue_width: int = 4
    int_fus: int = 6
    fp_fus: int = 4
    rob_entries: int = 128
    l1_size_kb: int = 64          #: per side (split I/D)
    l1_assoc: int = 2
    l1_block_bytes: int = 64
    l1_latency: int = 1


@dataclass(frozen=True)
class L2Config:
    total_size_mb: int = 16
    assoc: int = 4
    block_bytes: int = 64
    access_latency: int = 8
    banks: int = 12               #: one per L2 tile (Figure 7)

    @property
    def bank_size_mb(self) -> float:
        return self.total_size_mb / self.banks


@dataclass(frozen=True)
class AcceleratorConfig:
    simd_width: int = 32
    threads: int = 1024
    shared_memory_kb: int = 32

    @property
    def warps(self) -> int:
        return self.threads // self.simd_width


@dataclass(frozen=True)
class MemoryConfig:
    dram_size_gb: int = 4
    access_latency: int = 200
    controllers: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Full Table-II configuration bundle."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    l2: L2Config = field(default_factory=L2Config)
    accel: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)


def table_ii_summary(cfg: SystemConfig | None = None
                     ) -> Tuple[Tuple[str, str], ...]:
    """Render the Table-II style configuration summary."""
    c = cfg or SystemConfig()
    return (
        ("Processor", f"Four-way out-of-order, {c.cpu.int_fus} integer "
                      f"FUs, {c.cpu.fp_fus} floating point FUs, "
                      f"{c.cpu.rob_entries}-entry ROB"),
        ("L1 Cache", f"Split private I/D caches, each "
                     f"{c.cpu.l1_size_kb}KB, {c.cpu.l1_assoc}-way set "
                     f"associative, {c.cpu.l1_block_bytes}B block size, "
                     f"{c.cpu.l1_latency}-cycle access latency"),
        ("L2 Cache", f"{c.l2.total_size_mb}M banked, shared distributed, "
                     f"{c.l2.assoc}-way set associative, "
                     f"{c.l2.block_bytes}B block size, "
                     f"{c.l2.access_latency}-cycle access latency"),
        ("Accelerator", f"{c.accel.simd_width}-wide SIMD pipeline, "
                        f"{c.accel.threads} threads, "
                        f"{c.accel.shared_memory_kb}KB shared memory"),
        ("Memory", f"{c.memory.dram_size_gb}GB DRAM, "
                   f"{c.memory.access_latency} cycle access latency, "
                   f"{c.memory.controllers} memory controllers"),
    )


#: the default Table-II instance used across the heterogeneous models
DEFAULT_SYSTEM = SystemConfig()

"""Closed-loop CPU core model (Table II: four-way out-of-order core).

The core retires ``ipc`` instructions per unstalled cycle and converts a
profile-specific fraction into L1 misses that travel the NoC to an L2
bank.  Retirement stalls when the MSHRs (``mlp``) fill or when a
*critical* miss is outstanding — the coupling through which network
latency becomes CPU performance (the paper's Figure 8(b) metric).
All CPU traffic is packet-switched (Section V-A2).
"""

from __future__ import annotations

import numpy as np

from repro.config import NetworkConfig
from repro.hetero.tiles import HeteroLayout
from repro.hetero.workloads import CPUWorkloadProfile
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint


class CPUCoreEndpoint(Endpoint):
    """One CPU tile running threads of a SPEC OMP style workload."""

    def __init__(self, node: int, cfg: NetworkConfig, layout: HeteroLayout,
                 profile: CPUWorkloadProfile,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.node = node
        self.cfg = cfg
        self.layout = layout
        self.profile = profile
        self.rng = rng

        self.instructions_retired = 0.0
        self.outstanding = 0
        self.crit_outstanding = 0
        self.stall_cycles = 0
        self._miss_credit = 0.0
        self._retire_credit = 0.0
        self.requests_sent = 0

    # ------------------------------------------------------------------
    @property
    def blocked(self) -> bool:
        return (self.crit_outstanding > 0
                or self.outstanding >= self.profile.mlp)

    def tick(self, cycle: int) -> None:
        if self.blocked:
            self.stall_cycles += 1
            return
        p = self.profile
        self._retire_credit += p.ipc
        retired = int(self._retire_credit)
        self._retire_credit -= retired
        self.instructions_retired += retired
        self._miss_credit += retired * p.miss_rate
        while self._miss_credit >= 1.0 and not self.blocked:
            self._miss_credit -= 1.0
            self._issue_miss(cycle)

    def _issue_miss(self, cycle: int) -> None:
        p = self.profile
        addr = int(self.rng.integers(1 << 20))
        bank = self.layout.bank_for_address(addr)
        critical = bool(self.rng.random() < p.crit_fraction)
        req = Message(src=self.node, dst=bank, mclass=MessageClass.CTRL,
                      size_flits=1, create_cycle=cycle)
        req.meta.update(kind="read_req", requester=self.node, gpu=False,
                        critical=critical, miss_p=p.l2_miss_ratio)
        self.ni.send(req)
        self.requests_sent += 1
        self.outstanding += 1
        if critical:
            self.crit_outstanding += 1
        if self.rng.random() < p.store_fraction:
            store = Message(src=self.node, dst=bank,
                            mclass=MessageClass.DATA,
                            size_flits=self.cfg.packet_size("ps_data"),
                            create_cycle=cycle)
            store.meta.update(kind="store", gpu=False)
            self.ni.send(store)

    # ------------------------------------------------------------------
    def on_message(self, msg: Message, cycle: int) -> None:
        if msg.meta.get("kind") != "data_reply":
            return
        self.outstanding = max(0, self.outstanding - 1)
        if msg.meta.get("critical"):
            self.crit_outstanding = max(0, self.crit_outstanding - 1)

"""Heterogeneous multicore substrate (S15-S16).

Closed-loop models of the paper's evaluated system (Figure 7, Table II):
out-of-order CPU cores, SIMT accelerator cores with warp-level slack,
banked shared L2, and memory controllers — all generating request/reply
traffic over any of the network schemes.  This substitutes for the
paper's Simics/GEMS + GPGPU-Sim full-system stack: the NoC results
depend on the traffic these simulators emit, and the models here are
calibrated so per-benchmark injection rates and locality match Table III.
"""

from repro.hetero.tiles import TileType, HeteroLayout, FLOORPLAN_6X6
from repro.hetero.workloads import (
    CPUWorkloadProfile,
    GPUWorkloadProfile,
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    workload_mixes,
)
from repro.hetero.cpu import CPUCoreEndpoint
from repro.hetero.gpu import GPUCoreEndpoint
from repro.hetero.memory import L2BankEndpoint, MemoryControllerEndpoint
from repro.hetero.phases import (
    HotspotLayout,
    PhaseConfig,
    PhasedCPUCoreEndpoint,
    PhasedGPUCoreEndpoint,
)
from repro.hetero.system import HeteroSystem, HeteroResult, run_hetero_replay

__all__ = [
    "TileType", "HeteroLayout", "FLOORPLAN_6X6",
    "CPUWorkloadProfile", "GPUWorkloadProfile",
    "CPU_BENCHMARKS", "GPU_BENCHMARKS", "workload_mixes",
    "CPUCoreEndpoint", "GPUCoreEndpoint",
    "L2BankEndpoint", "MemoryControllerEndpoint",
    "PhaseConfig", "PhasedCPUCoreEndpoint", "PhasedGPUCoreEndpoint",
    "HotspotLayout",
    "HeteroSystem", "HeteroResult", "run_hetero_replay",
]

"""The job service core: admission, scheduling, enforcement, recovery.

:class:`JobService` is the transport-independent heart of the service —
the WSGI layer (:mod:`repro.service.http`) is a thin JSON adapter over
it, which is what makes every behaviour testable without sockets.

Responsibilities and the invariants behind the acceptance tests:

* **Admission is synchronous and happens before anything persists.**
  A submission is checked against the queue-depth bound and the
  per-tenant quota *under the service lock, before the job document is
  created*; rejected work raises :class:`AdmissionError` (HTTP 429 +
  ``Retry-After``).  A job the service accepted is therefore durable —
  accepted-then-dropped cannot happen.
* **Idempotent submission.**  A retried request with the same
  ``(tenant, idempotency_key)`` returns the original job, whatever
  state it is in; a concurrent duplicate of the same work (same tenant
  + spec hash) while the original is still queued/running returns the
  original too.  Both indexes are rebuilt from the job documents on
  restart, so retries across a server crash stay idempotent.
* **QoS.**  Interactive jobs get the next free slot: the scheduler pops
  interactive before bulk, and while an interactive job waits it asks
  one running bulk job to yield between points
  (:meth:`SweepControl.request_yield`) — a sweep point is never killed
  for QoS.  The preempted bulk job is requeued at the front and resumes
  from its validated on-disk results.
* **Deadlines and cancellation** share one mechanism: a flag on the
  running record plus :meth:`SweepControl.cancel` plus
  :meth:`Executor.kill_job`.  The sweep thread observes the kill,
  finalises the job into ``deadline_exceeded``/``cancelled``, and the
  partial results on disk remain checksum-valid.
* **Exactly-once terminal accounting.**  Terminal transitions go
  through :meth:`JobStore.transition`, which refuses to leave a
  terminal state; the sweep thread is the only writer of terminal
  states for a running job.
* **Crash recovery.**  On construction the service rescans the store:
  jobs found ``running`` (the previous server died mid-flight) are
  requeued at the front; the supervised sweep's own resume path skips
  their validated points.  Orphan workers from the dead server write
  deterministic bytes atomically and are harmless double-writers.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from typing import Dict, List, Optional

from repro.config import CheckpointConfig, SupervisorConfig
from repro.harness.executor import Executor, LocalProcessExecutor
from repro.harness.supervisor import SweepControl, run_supervised_sweep
from repro.service import jobs as J
from repro.service.jobs import JobStore, ServiceConfig
from repro.service.queue import FairShareQueue


class AdmissionError(Exception):
    """Submission refused by backpressure (HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class DrainingError(Exception):
    """The service is shutting down and not admitting work (HTTP 503)."""


@dataclasses.dataclass
class _Running:
    """In-memory record for one job currently occupying a slot."""

    control: SweepControl
    executor: Executor
    thread: threading.Thread
    qos: str
    tenant: str
    kill_reason: Optional[str] = None   # cancel | deadline | drain


class JobService:
    """See module docstring.  All public methods are thread-safe."""

    def __init__(self, cfg: ServiceConfig, metrics=None) -> None:
        self.cfg = cfg
        self.metrics = metrics
        self.store = JobStore(cfg.data_dir)
        self._lock = threading.RLock()
        self._queue = FairShareQueue()
        self._queued: Dict[str, Dict] = {}      # id -> job doc (queued)
        self._running: Dict[str, _Running] = {}
        self._by_key: Dict[tuple, str] = {}     # (tenant, idem key) -> id
        self._by_spec: Dict[tuple, str] = {}    # (tenant, spec hash) -> id,
        #                                         queued/running jobs only
        self._draining = False
        self._stop = threading.Event()
        self._idle = threading.Event()          # set when nothing runs
        self._idle.set()
        if metrics is not None:
            metrics.gauge("service_queue_depth", lambda: len(self._queue))
            metrics.gauge("service_jobs_running", lambda: len(self._running))
        self._recover()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True, name="svc-monitor")
        self._monitor.start()

    # ------------------------------------------------------------------
    # metrics helper (null-safe: zero overhead when metrics are off)
    # ------------------------------------------------------------------
    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, body: Dict) -> Dict:
        """Admit one submission; returns ``{"job": ..., "existing": ...}``.

        Raises :class:`~repro.service.jobs.JobSpecError` (400),
        :class:`AdmissionError` (429) or :class:`DrainingError` (503).
        Validation runs outside the lock; admission + persistence are
        one atomic step under it.
        """
        spec = J.validate_request(body, self.cfg)
        tenant = spec["tenant"]
        shash = J.spec_hash(spec)
        with self._lock:
            # idempotency first: a retry of accepted work always
            # succeeds, even while the service is draining or full
            key = spec.get("idempotency_key")
            if key is not None:
                existing = self._by_key.get((tenant, key))
                if existing is not None:
                    self._inc("service.jobs.deduped")
                    return {"job": self._load(existing), "existing": True}
            active = self._by_spec.get((tenant, shash))
            if active is not None:
                self._inc("service.jobs.deduped")
                return {"job": self._load(active), "existing": True}

            if self._draining:
                self._inc("service.jobs.rejected_draining")
                raise DrainingError("service is draining; resubmit to "
                                    "the restarted instance")
            depth = len(self._queue)
            if depth >= self.cfg.max_queue_depth:
                self._inc("service.jobs.rejected_queue_full")
                raise AdmissionError(
                    f"queue depth {depth} at capacity "
                    f"{self.cfg.max_queue_depth}",
                    self._retry_after(depth))
            held = self._tenant_load(tenant)
            if held >= self.cfg.tenant_quota:
                self._inc("service.jobs.rejected_tenant_quota")
                raise AdmissionError(
                    f"tenant {tenant} holds {held} jobs, at quota "
                    f"{self.cfg.tenant_quota}",
                    self._retry_after(depth))

            # admitted: persist, then index — from here the job is
            # durable and will reach a terminal state exactly once
            job = self.store.create(spec)
            self._enqueue(job)
            if key is not None:
                self._by_key[(tenant, key)] = job["id"]
            self._by_spec[(tenant, shash)] = job["id"]
            self._inc("service.jobs.submitted")
            self._schedule()
            return {"job": dict(job), "existing": False}

    def _retry_after(self, depth: int) -> int:
        # scale the hint with how far over capacity we are: a deep
        # queue drains one slot-batch at a time
        slots = max(1, self.cfg.slots)
        return max(1, math.ceil(self.cfg.retry_after_s
                                * (1 + depth / (slots * 4))))

    def _tenant_load(self, tenant: str) -> int:
        held = sum(1 for job in self._queued.values()
                   if job["tenant"] == tenant)
        return held + sum(1 for r in self._running.values()
                          if r.tenant == tenant)

    def _enqueue(self, job: Dict, front: bool = False) -> None:
        self._queued[job["id"]] = job
        self._queue.push(job["tenant"], job["qos"], job["id"], front=front)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _load(self, job_id: str) -> Optional[Dict]:
        live = self._queued.get(job_id)
        if live is not None:
            return dict(live)
        return self.store.load(job_id)

    def get(self, job_id: str) -> Optional[Dict]:
        with self._lock:
            return self._load(job_id)

    def list_jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        jobs = self.store.load_all()
        if tenant is not None:
            jobs = [j for j in jobs if j["tenant"] == tenant]
        return jobs

    def status(self) -> Dict:
        with self._lock:
            return {
                "draining": self._draining,
                "slots": self.cfg.slots,
                "running": sorted(self._running),
                "queued": self._queue.jobs(),
                "queue_depth": len(self._queue),
            }

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str,
               tenant: Optional[str] = None) -> Optional[Dict]:
        """Cancel a job; idempotent at every stage of its life.

        Returns the (possibly already-terminal) job document, or None
        when the job does not exist or belongs to a different tenant.
        A queued job is cancelled synchronously; a running job has its
        workers killed and finalises as ``cancelled`` asynchronously.
        """
        with self._lock:
            job = self._load(job_id)
            if job is None or (tenant is not None
                               and job["tenant"] != tenant):
                return None
            if job["state"] in J.TERMINAL_STATES:
                return job                     # idempotent no-op
            if job["id"] in self._queued:
                del self._queued[job["id"]]
                self._queue.remove(job["tenant"], job["qos"], job["id"])
                self._deactivate(job)
                job = self.store.transition(job, J.ST_CANCELLED,
                                            note="cancelled while queued")
                self._inc("service.jobs.cancelled")
                self._schedule()
                return job
            running = self._running.get(job_id)
            if running is not None and running.kill_reason is None:
                running.kill_reason = "cancel"
                running.control.cancel()
                running.executor.kill_job(job_id)
            return job

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        """Fill free slots; ask a bulk job to yield when interactive
        work waits.  Caller holds the lock."""
        if self._draining:
            return          # a draining service never dispatches work
        while len(self._running) < self.cfg.slots:
            item = self._queue.pop()
            if item is None:
                break
            _tenant, job_id = item
            job = self._queued.pop(job_id)
            self._start(job)
        if self._queue.waiting(J.QOS_INTERACTIVE) > 0:
            for running in self._running.values():
                if running.qos == J.QOS_BULK \
                        and not running.control.should_yield \
                        and running.kill_reason is None:
                    running.control.request_yield()
                    self._inc("service.jobs.preempt_requested")
                    break

    def _start(self, job: Dict) -> None:
        control = SweepControl()
        executor = LocalProcessExecutor()
        record = _Running(control=control, executor=executor,
                          thread=None, qos=job["qos"],
                          tenant=job["tenant"])
        thread = threading.Thread(
            target=self._run_job, args=(job, record),
            daemon=True, name=f"svc-job-{job['id']}")
        record.thread = thread
        self._running[job["id"]] = record
        self._idle.clear()
        self.store.transition(job, J.ST_RUNNING)
        thread.start()

    def _sup_config(self) -> SupervisorConfig:
        cfg = self.cfg
        return SupervisorConfig(
            enabled=True, jobs=cfg.sweep_jobs,
            timeout_s=cfg.point_timeout_s, max_retries=cfg.max_retries,
            lease_ttl_s=cfg.lease_ttl_s,
            heartbeat_interval_s=cfg.heartbeat_interval_s)

    def _run_job(self, job: Dict, record: _Running) -> None:
        """Slot thread: drive the job's sweep, then finalise it."""
        job_id = job["id"]
        points = J.points_for(job["spec"])

        def _progress(index, point, outcome, attempts) -> None:
            with self._lock:
                if job["state"] != J.ST_RUNNING:
                    return
                if outcome == "ok":
                    job["progress"]["completed"] += 1
                else:
                    job["progress"]["failed"] += 1
                self.store.save(job)

        try:
            summary = run_supervised_sweep(
                points, self.store.run_dir(job_id),
                sup=self._sup_config(), ckpt=CheckpointConfig(),
                progress=_progress, executor=record.executor,
                control=record.control, job=job_id)
            error = None
        except Exception as exc:          # infra failure, not job failure
            summary = None
            error = f"{type(exc).__name__}: {exc}"
        self._finish(job, record, summary, error)

    def _finish(self, job: Dict, record: _Running,
                summary: Optional[Dict], error: Optional[str]) -> None:
        job_id = job["id"]
        with self._lock:
            del self._running[job_id]
            reason = record.kill_reason
            if summary is not None:
                job["progress"] = {
                    "total": summary["total"],
                    "completed": summary["completed"],
                    "failed": len(summary["failures"]),
                }
            if reason == "cancel":
                self.store.transition(job, J.ST_CANCELLED,
                                      note="cancelled while running")
                self._inc("service.jobs.cancelled")
                self._deactivate(job)
            elif reason == "deadline":
                self.store.transition(
                    job, J.ST_DEADLINE,
                    note=f"deadline of {job['deadline_s']}s exceeded",
                    error="DEADLINE_EXCEEDED")
                self._inc("service.jobs.deadline_exceeded")
                self._deactivate(job)
            elif summary is None:
                self.store.transition(job, J.ST_FAILED, note="supervisor "
                                      "error", error=error)
                self._inc("service.jobs.failed")
                self._deactivate(job)
            elif summary.get("stopped") in ("preempted", "cancelled"):
                # slot yielded (QoS preemption or drain — including the
                # drain-timeout kill escalation): back to the front of
                # the queue with every completed point validated on disk
                self.store.transition(job, J.ST_QUEUED,
                                      note=f"requeued ({reason or 'preempted'})")
                self._enqueue(job, front=True)
                self._inc("service.jobs.preempted")
            elif summary["failures"]:
                failed = sorted(f["index"] for f in summary["failures"])
                self.store.transition(
                    job, J.ST_FAILED,
                    note=f"{len(failed)} point(s) failed",
                    error=f"points failed or quarantined: {failed}",
                    result=self._result_of(summary))
                self._inc("service.jobs.failed")
                self._deactivate(job)
            else:
                self.store.transition(job, J.ST_SUCCEEDED,
                                      result=self._result_of(summary))
                self._inc("service.jobs.succeeded")
                self._deactivate(job)
            if not self._running:
                self._idle.set()
            if not self._stop.is_set():
                self._schedule()
            if self._running:
                self._idle.clear()

    @staticmethod
    def _result_of(summary: Dict) -> Dict:
        return {"total": summary["total"],
                "completed": summary["completed"],
                "skipped": summary["skipped"],
                "failures": len(summary["failures"])}

    def _deactivate(self, job: Dict) -> None:
        """Terminal: release the tenant's active-spec dedupe slot."""
        key = (job["tenant"], job["spec_hash"])
        if self._by_spec.get(key) == job["id"]:
            del self._by_spec[key]

    # ------------------------------------------------------------------
    # deadline monitor
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.2):
            now = time.time()
            with self._lock:
                for job_id, running in list(self._running.items()):
                    job = self._queued.get(job_id) or self.store.load(job_id)
                    if job is None or running.kill_reason is not None:
                        continue
                    deadline = job.get("deadline_unix")
                    if deadline is not None and now > deadline:
                        running.kill_reason = "deadline"
                        running.control.cancel()
                        running.executor.kill_job(job_id)
                for job_id in list(self._queued):
                    job = self._queued[job_id]
                    deadline = job.get("deadline_unix")
                    if deadline is not None and now > deadline:
                        del self._queued[job_id]
                        self._queue.remove(job["tenant"], job["qos"],
                                           job_id)
                        self._deactivate(job)
                        self.store.transition(
                            job, J.ST_DEADLINE,
                            note="deadline expired while queued",
                            error="DEADLINE_EXCEEDED")
                        self._inc("service.jobs.deadline_exceeded")

    # ------------------------------------------------------------------
    # drain (SIGTERM protocol)
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admission; ask every running sweep to yield between
        points.  Returns immediately — pair with :meth:`drain`."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._inc("service.drain.begun")
            for job_id, running in self._running.items():
                if running.kill_reason is None:
                    running.kill_reason = "drain"
                    running.control.request_yield()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every slot is free; escalate to kill at timeout.

        Running jobs finish their in-flight points and are requeued (to
        disk) as ``queued``; a restarted service resumes them.  Returns
        True when the service drained cleanly within the budget.
        """
        self.begin_drain()
        timeout_s = (self.cfg.drain_timeout_s if timeout_s is None
                     else timeout_s)
        clean = self._idle.wait(timeout_s)
        if not clean:
            with self._lock:
                for job_id, running in self._running.items():
                    running.kill_reason = "drain"
                    running.control.cancel()
                    running.executor.kill_job(job_id)
            # killed workers exit immediately; give the threads a
            # bounded final window to persist the requeue transitions
            clean = self._idle.wait(10.0)
        self._stop.set()
        return clean

    def close(self) -> None:
        """Hard teardown (tests): stop the monitor and scheduler, kill
        any running jobs' workers, and wait for the slot threads.  No
        drain semantics — use :meth:`drain` for graceful shutdown."""
        self._stop.set()
        with self._lock:
            self._draining = True
            for job_id, running in self._running.items():
                if running.kill_reason is None:
                    running.kill_reason = "drain"
                running.control.cancel()
                running.executor.kill_job(job_id)
        self._idle.wait(10.0)

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild queue + indexes from the job documents on disk."""
        requeued = 0
        for job in self.store.load_all():
            key = job.get("idempotency_key")
            if key is not None:
                self._by_key[(job["tenant"], key)] = job["id"]
            if job["state"] in J.TERMINAL_STATES:
                continue
            self._by_spec[(job["tenant"], job["spec_hash"])] = job["id"]
            if job["state"] == J.ST_RUNNING:
                # the previous server died holding this slot; its
                # validated points are skipped by the sweep resume path
                self.store.transition(job, J.ST_QUEUED,
                                      note="requeued after restart")
                self._enqueue(job, front=True)
                requeued += 1
            elif job["state"] == J.ST_QUEUED:
                self._enqueue(job)
        if requeued:
            self._inc("service.jobs.recovered")
        with self._lock:
            self._schedule()

"""Two-class fair-share scheduling queue for the job service.

Ordering rules, in priority order:

1. **QoS class**: every queued *interactive* job is offered a slot
   before any *bulk* job.  Combined with the scheduler asking a running
   bulk sweep to yield (:meth:`~repro.harness.supervisor.SweepControl
   .request_yield`) whenever an interactive job waits, an interactive
   submission gets the *next free slot* — without ever interrupting a
   sweep point mid-flight.
2. **Tenant fair share**: within a class, tenants are served
   round-robin (one job per turn, rotating), so a tenant that bulk-
   submits 50 jobs cannot starve a tenant with one.
3. **FIFO per tenant**, except jobs re-queued after preemption or a
   server restart go to the *front* of their tenant's line: partially
   complete work resumes before fresh work starts.

The queue holds job ids only — job state lives in the
:class:`~repro.service.jobs.JobStore` documents.  It is not itself
thread-safe; :class:`~repro.service.core.JobService` serialises access
under its own lock.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from repro.service.jobs import QOS_BULK, QOS_INTERACTIVE


class _ClassQueue:
    """Round-robin over per-tenant FIFO deques for one QoS class."""

    def __init__(self) -> None:
        # insertion-ordered: rotation walks tenants in a stable cycle
        self._tenants: "OrderedDict[str, Deque[str]]" = OrderedDict()

    def __len__(self) -> int:
        return sum(len(q) for q in self._tenants.values())

    def push(self, tenant: str, job_id: str, front: bool = False) -> None:
        queue = self._tenants.get(tenant)
        if queue is None:
            queue = self._tenants[tenant] = deque()
        if front:
            queue.appendleft(job_id)
        else:
            queue.append(job_id)

    def pop(self) -> Optional[Tuple[str, str]]:
        """Take ``(tenant, job_id)`` from the next tenant in rotation."""
        if not self._tenants:
            return None
        tenant, queue = next(iter(self._tenants.items()))
        job_id = queue.popleft()
        # move the served tenant to the back of the rotation; drop it
        # entirely once empty so rotation never spins on empty deques
        del self._tenants[tenant]
        if queue:
            self._tenants[tenant] = queue
        return tenant, job_id

    def remove(self, tenant: str, job_id: str) -> bool:
        queue = self._tenants.get(tenant)
        if not queue:
            return False
        try:
            queue.remove(job_id)
        except ValueError:
            return False
        if not queue:
            del self._tenants[tenant]
        return True

    def jobs(self) -> List[str]:
        out: List[str] = []
        for queue in self._tenants.values():
            out.extend(queue)
        return out


class FairShareQueue:
    """The service's admission queue: two :class:`_ClassQueue` tiers."""

    def __init__(self) -> None:
        self._classes = {QOS_INTERACTIVE: _ClassQueue(),
                         QOS_BULK: _ClassQueue()}

    def __len__(self) -> int:
        return sum(len(c) for c in self._classes.values())

    def push(self, tenant: str, qos: str, job_id: str,
             front: bool = False) -> None:
        self._classes[qos].push(tenant, job_id, front)

    def pop(self) -> Optional[Tuple[str, str]]:
        """Next ``(tenant, job_id)`` to run — interactive first."""
        for qos in (QOS_INTERACTIVE, QOS_BULK):
            item = self._classes[qos].pop() if self._classes[qos] else None
            if item is not None:
                return item
        return None

    def remove(self, tenant: str, qos: str, job_id: str) -> bool:
        """Drop a specific queued job (cancellation before it ran)."""
        return self._classes[qos].remove(tenant, job_id)

    def waiting(self, qos: str) -> int:
        return len(self._classes[qos])

    def jobs(self) -> List[str]:
        """Queued job ids in scheduling-class order (debug/status)."""
        return (self._classes[QOS_INTERACTIVE].jobs()
                + self._classes[QOS_BULK].jobs())

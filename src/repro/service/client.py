"""Stdlib (urllib) client for the job service API.

Used by the ``repro submit``/``jobs``/``cancel`` CLI commands and by
the service chaos harness.  :meth:`ServiceClient.submit` understands
the service's backpressure dialect — it honours ``Retry-After`` on 429
and retries connection failures with the *same idempotency key*, so a
submission that raced a server crash is replayed, not duplicated.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.harness import store


class ServiceError(RuntimeError):
    """A non-2xx API response (carries status + server message)."""

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Minimal JSON-over-HTTP client bound to one service URL."""

    def __init__(self, url: str, timeout_s: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            retry_after = exc.headers.get("Retry-After")
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(
                exc.code, message,
                int(retry_after) if retry_after else None) from exc

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/v1/healthz")

    def status(self) -> Dict:
        return self._request("GET", "/v1/status")

    def metrics(self) -> Dict:
        return self._request("GET", "/v1/metrics")["metrics"]

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str, tenant: Optional[str] = None) -> Dict:
        path = f"/v1/jobs/{job_id}/cancel"
        if tenant:
            path += f"?tenant={tenant}"
        return self._request("POST", path)["job"]

    def submit(self, body: Dict, retries: int = 0,
               backoff_s: float = 0.5) -> Dict:
        """Submit a job; returns ``{"job": ..., "existing": ...}``.

        With *retries* > 0, 429 responses are retried after the
        server's ``Retry-After`` hint and connection errors after
        *backoff_s* (doubling, capped at 10 s).  The body is sent
        verbatim each time: give it an ``idempotency_key`` and a retry
        that raced a crash or a restart resolves to the original job.
        """
        if retries and not body.get("idempotency_key"):
            body = dict(body, idempotency_key=store.new_token("auto-"))
        attempt = 0
        while True:
            try:
                return self._request("POST", "/v1/jobs", body)
            except ServiceError as exc:
                if exc.status != 429 or attempt >= retries:
                    raise
                delay = exc.retry_after_s or backoff_s
            except (urllib.error.URLError, OSError, TimeoutError):
                if attempt >= retries:
                    raise
                delay = min(10.0, backoff_s * (2 ** attempt))
            attempt += 1
            time.sleep(delay)

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.5, terminal=None) -> Dict:
        """Poll until the job reaches a terminal state (or *terminal*,
        a custom set of states).  Connection errors are tolerated —
        the server may be restarting — until the deadline."""
        from repro.service.jobs import TERMINAL_STATES
        terminal = TERMINAL_STATES if terminal is None else terminal
        deadline = time.monotonic() + timeout_s
        last = None
        while time.monotonic() < deadline:
            try:
                last = self.job(job_id)
                if last["state"] in terminal:
                    return last
            except (ServiceError, urllib.error.URLError, OSError,
                    TimeoutError):
                pass
            time.sleep(poll_s)
        raise TimeoutError(
            f"job {job_id} not terminal after {timeout_s}s "
            f"(last seen: {last['state'] if last else 'unreachable'})")


def discover(data_dir: str) -> Optional[str]:
    """The URL advertised by a server over *data_dir*, or None."""
    from repro.service.http import endpoint_path
    doc = store.read_json(endpoint_path(data_dir))
    return doc.get("url") if isinstance(doc, dict) else None

"""Job model and crash-safe job store for the simulation service.

A **job** is one supervised sweep owned by a tenant: a validated spec
(the ``build_sweep_points`` grid parameters), a QoS class, an optional
wall-clock deadline, and a lifecycle that must survive ``kill -9`` of
the server.  Every job is one self-hashed JSON document
(:func:`repro.harness.store.write_json_self_hashed`) under
``<data_dir>/jobs/<job_id>/job.json`` next to the sweep run directory
it owns — the record and the results live together, are written
atomically, and validate themselves on load.

Lifecycle::

    queued -> running -> succeeded | failed
         \\-> cancelled | deadline_exceeded        (terminal)
    running -> queued                              (preemption / restart
                                                    / drain: progress on
                                                    disk is preserved)

Terminal states are **final**: :meth:`JobStore.transition` refuses to
leave one, which is what makes "every accepted job reaches a terminal
state exactly once" checkable — the history list records exactly one
terminal entry, ever.

Idempotent submission is two independent keys, both rebuilt from the
documents on restart:

* an explicit client **idempotency key** (any state, including
  terminal): a retried POST returns the original job;
* the **spec hash** (``sweep_config_hash`` of the resolved point grid)
  deduplicates concurrent submissions of the same work by the same
  tenant while the earlier job is still queued or running.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional

from repro.config import SCHEMES, CheckpointConfig
from repro.harness import store
from repro.harness.supervisor import (build_hetero_points, build_sweep_points,
                                      sweep_config_hash, validate_result)

#: on-disk schema of job.json documents
JOB_SCHEMA = 1

# -- QoS classes ------------------------------------------------------------
QOS_INTERACTIVE = "interactive"
QOS_BULK = "bulk"
QOS_CLASSES = (QOS_INTERACTIVE, QOS_BULK)

# -- job states -------------------------------------------------------------
ST_QUEUED = "queued"
ST_RUNNING = "running"
ST_SUCCEEDED = "succeeded"
ST_FAILED = "failed"
ST_CANCELLED = "cancelled"
ST_DEADLINE = "deadline_exceeded"
TERMINAL_STATES = frozenset({ST_SUCCEEDED, ST_FAILED, ST_CANCELLED,
                             ST_DEADLINE})

#: traffic patterns a submission may request (mirrors
#: :func:`repro.traffic.patterns.make_pattern`)
PATTERNS = ("uniform_random", "tornado", "transpose", "bit_complement",
            "bit_reverse", "shuffle", "neighbor", "hotspot")


class JobSpecError(ValueError):
    """A submission is malformed or out of bounds (HTTP 400)."""


class JobStateError(RuntimeError):
    """An illegal lifecycle transition was attempted (never valid)."""


@dataclasses.dataclass
class ServiceConfig:
    """Service-level knobs: capacity, admission bounds, drain budget."""

    data_dir: str = "service-data"
    slots: int = 2                 #: concurrently running jobs
    sweep_jobs: int = 1            #: worker processes per running job
    max_queue_depth: int = 16      #: queued jobs across all tenants
    tenant_quota: int = 8          #: queued+running jobs per tenant
    max_points_per_job: int = 64
    retry_after_s: float = 2.0     #: base of the Retry-After heuristic
    drain_timeout_s: float = 30.0  #: SIGTERM -> exit budget
    # per-point supervision of each job's sweep
    point_timeout_s: float = 300.0
    max_retries: int = 2
    lease_ttl_s: float = 60.0
    heartbeat_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.sweep_jobs < 0:
            raise ValueError("sweep_jobs must be >= 0 (0 = one per CPU)")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        if self.max_points_per_job < 1:
            raise ValueError("max_points_per_job must be >= 1")
        if self.retry_after_s <= 0 or self.drain_timeout_s <= 0:
            raise ValueError("retry_after_s/drain_timeout_s must be > 0")


# ---------------------------------------------------------------------------
# submission validation
# ---------------------------------------------------------------------------
_SWEEP_KEYS = {"schemes", "pattern", "rates", "seed", "width", "height",
               "slot_table_size", "warmup", "measure"}
#: the heterogeneous family replaces pattern/rates with benchmark lists
_HETERO_KEYS = {"schemes", "cpu_benchmarks", "gpu_benchmarks", "phased",
                "policy", "seed", "width", "height", "warmup", "measure"}
_REQUEST_KEYS = {"tenant", "qos", "deadline_s", "idempotency_key", "sweep"}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise JobSpecError(message)


def _int_in(sweep: Dict, key: str, default: int, lo: int, hi: int) -> int:
    value = sweep.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool)
             and lo <= value <= hi,
             f"sweep.{key} must be an integer in [{lo}, {hi}]")
    return value


def validate_request(body: Dict, cfg: ServiceConfig) -> Dict:
    """Validate one submission; returns the normalised job spec.

    Raises :class:`JobSpecError` with a client-readable message on any
    malformed field — admission control is a separate, later gate.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    unknown = set(body) - _REQUEST_KEYS
    _require(not unknown, f"unknown request fields: {sorted(unknown)}")

    tenant = body.get("tenant")
    _require(isinstance(tenant, str) and 0 < len(tenant) <= 64
             and all(c.isalnum() or c in "._-" for c in tenant),
             "tenant must be 1-64 chars of [A-Za-z0-9._-]")
    qos = body.get("qos", QOS_BULK)
    _require(qos in QOS_CLASSES, f"qos must be one of {QOS_CLASSES}")
    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        _require(isinstance(deadline_s, (int, float))
                 and not isinstance(deadline_s, bool) and deadline_s > 0,
                 "deadline_s must be a positive number of seconds")
    key = body.get("idempotency_key")
    if key is not None:
        _require(isinstance(key, str) and 0 < len(key) <= 128,
                 "idempotency_key must be a 1-128 char string")

    sweep = body.get("sweep")
    _require(isinstance(sweep, dict), "sweep must be a JSON object")
    hetero = "cpu_benchmarks" in sweep or "gpu_benchmarks" in sweep
    allowed = _HETERO_KEYS if hetero else _SWEEP_KEYS
    unknown = set(sweep) - allowed
    _require(not unknown, f"unknown sweep fields: {sorted(unknown)}")
    schemes = sweep.get("schemes")
    _require(isinstance(schemes, list) and schemes
             and all(s in SCHEMES for s in schemes),
             f"sweep.schemes must be a non-empty list from {SCHEMES}")
    if hetero:
        from repro.core.decision import DECISION_POLICIES
        from repro.hetero import CPU_BENCHMARKS, GPU_BENCHMARKS
        cpus = sweep.get("cpu_benchmarks")
        _require(isinstance(cpus, list) and cpus
                 and all(c in CPU_BENCHMARKS for c in cpus),
                 "sweep.cpu_benchmarks must be a non-empty list from "
                 f"{tuple(CPU_BENCHMARKS)}")
        gpus = sweep.get("gpu_benchmarks")
        _require(isinstance(gpus, list) and gpus
                 and all(g in GPU_BENCHMARKS for g in gpus),
                 "sweep.gpu_benchmarks must be a non-empty list from "
                 f"{tuple(GPU_BENCHMARKS)}")
        phased = sweep.get("phased", False)
        _require(isinstance(phased, bool),
                 "sweep.phased must be a boolean")
        policy = sweep.get("policy", "slack")
        _require(policy in DECISION_POLICIES,
                 f"sweep.policy must be one of {DECISION_POLICIES}")
        spec_sweep = {
            "schemes": list(schemes),
            "cpu_benchmarks": list(cpus), "gpu_benchmarks": list(gpus),
            "phased": phased, "policy": policy,
            "seed": _int_in(sweep, "seed", 1, 0, 2**31),
            "width": _int_in(sweep, "width", 6, 2, 32),
            "height": _int_in(sweep, "height", 6, 2, 32),
            "warmup": _int_in(sweep, "warmup", 1500, 0, 200_000),
            "measure": _int_in(sweep, "measure", 4000, 1, 1_000_000),
        }
        n_points = len(schemes) * len(cpus) * len(gpus)
    else:
        pattern = sweep.get("pattern", "uniform_random")
        _require(pattern in PATTERNS,
                 f"sweep.pattern must be one of {PATTERNS}")
        rates = sweep.get("rates")
        _require(isinstance(rates, list) and rates
                 and all(isinstance(r, (int, float))
                         and not isinstance(r, bool)
                         and 0 < r <= 1.0 for r in rates),
                 "sweep.rates must be a non-empty list of numbers in (0, 1]")
        spec_sweep = {
            "schemes": list(schemes), "pattern": pattern,
            "rates": [float(r) for r in rates],
            "seed": _int_in(sweep, "seed", 1, 0, 2**31),
            "width": _int_in(sweep, "width", 6, 2, 32),
            "height": _int_in(sweep, "height", 6, 2, 32),
            "slot_table_size": _int_in(sweep, "slot_table_size", 128, 2, 1024),
            "warmup": _int_in(sweep, "warmup", 1500, 0, 200_000),
            "measure": _int_in(sweep, "measure", 4000, 1, 1_000_000),
        }
        n_points = len(schemes) * len(rates)
    _require(n_points <= cfg.max_points_per_job,
             f"job resolves to {n_points} points, over the per-job cap "
             f"of {cfg.max_points_per_job}")
    return {"tenant": tenant, "qos": qos, "deadline_s": deadline_s,
            "idempotency_key": key, "sweep": spec_sweep}


def points_for(spec: Dict) -> List[Dict]:
    """The resolved point grid for a validated job spec."""
    sweep = spec["sweep"]
    if "cpu_benchmarks" in sweep:
        return build_hetero_points(
            sweep["schemes"], sweep["cpu_benchmarks"],
            sweep["gpu_benchmarks"], seed=sweep["seed"],
            width=sweep["width"], height=sweep["height"],
            warmup=sweep["warmup"], measure=sweep["measure"],
            phased=sweep.get("phased", False),
            policy=sweep.get("policy", "slack"))
    return build_sweep_points(
        sweep["schemes"], sweep["pattern"], sweep["rates"],
        seed=sweep["seed"], width=sweep["width"], height=sweep["height"],
        slot_table_size=sweep["slot_table_size"],
        warmup=sweep["warmup"], measure=sweep["measure"])


def spec_hash(spec: Dict) -> str:
    """Content hash of the work a job will run (dedupe key)."""
    return sweep_config_hash(points_for(spec), CheckpointConfig())


# ---------------------------------------------------------------------------
# persistent store
# ---------------------------------------------------------------------------
class JobStore:
    """One self-hashed document per job under ``<root>/jobs/``.

    Every mutation goes through :meth:`save` (atomic + fsync + embedded
    integrity hash), so a ``kill -9`` at any instant leaves either the
    old record or the new one — never a torn file.  A corrupt document
    found on load is quarantined as ``job.json.corrupt``; its run
    directory (which carries its own checksums) survives untouched.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(self.jobs_root, exist_ok=True)

    @property
    def jobs_root(self) -> str:
        return os.path.join(self.root, "jobs")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "job.json")

    def run_dir(self, job_id: str) -> str:
        """The supervised-sweep run directory owned by *job_id*."""
        return os.path.join(self.job_dir(job_id), "run")

    # ------------------------------------------------------------------
    def create(self, spec: Dict, now: Optional[float] = None) -> Dict:
        """Persist and return a fresh queued job for a validated spec."""
        now = time.time() if now is None else now
        job_id = store.new_token("job-")
        deadline_s = spec.get("deadline_s")
        job = {
            "schema": JOB_SCHEMA,
            "id": job_id,
            "tenant": spec["tenant"],
            "qos": spec["qos"],
            "state": ST_QUEUED,
            "spec": {"sweep": dict(spec["sweep"])},
            "spec_hash": spec_hash(spec),
            "idempotency_key": spec.get("idempotency_key"),
            "deadline_s": deadline_s,
            "deadline_unix": (now + deadline_s) if deadline_s else None,
            "submitted_unix": now,
            "started_unix": None,
            "finished_unix": None,
            "attempts": 0,
            "progress": {"total": len(points_for(spec)),
                         "completed": 0, "failed": 0},
            "history": [{"state": ST_QUEUED, "unix": now}],
            "run_dir": os.path.abspath(self.run_dir(job_id)),
            "result": None,
            "error": None,
        }
        self.save(job)
        return job

    def save(self, job: Dict) -> None:
        store.write_json_self_hashed(self.job_path(job["id"]), job)

    def load(self, job_id: str) -> Optional[Dict]:
        return store.read_json_self_hashed(self.job_path(job_id),
                                           quarantine=True)

    def load_all(self) -> List[Dict]:
        """Every intact job document, oldest submission first."""
        jobs = []
        try:
            names = sorted(os.listdir(self.jobs_root))
        except OSError:
            return []
        for name in names:
            job = self.load(name)
            if job is not None and job.get("schema") == JOB_SCHEMA:
                jobs.append(job)
        jobs.sort(key=lambda j: (j.get("submitted_unix") or 0, j["id"]))
        return jobs

    # ------------------------------------------------------------------
    def transition(self, job: Dict, state: str, note: Optional[str] = None,
                   **fields) -> Dict:
        """Move *job* to *state*, persist, and return it.

        Terminal states are one-way: any attempt to leave one raises
        :class:`JobStateError` — the guard behind the exactly-once
        terminal accounting the chaos harness asserts.
        """
        if job["state"] in TERMINAL_STATES:
            raise JobStateError(
                f"job {job['id']} is already terminal "
                f"({job['state']}); refusing transition to {state}")
        now = time.time()
        job["state"] = state
        entry = {"state": state, "unix": now}
        if note:
            entry["note"] = note
        job["history"].append(entry)
        if state == ST_RUNNING:
            job["attempts"] += 1
            if job["started_unix"] is None:
                job["started_unix"] = now
        if state in TERMINAL_STATES:
            job["finished_unix"] = now
        job.update(fields)
        self.save(job)
        return job


def verify_job_results(job: Dict) -> List[str]:
    """Checksum-validate a completed job's on-disk results.

    Returns human-readable problems (empty = clean).  Needs local
    access to the service data directory; used by ``repro jobs
    --verify`` and the service chaos harness.
    """
    problems: List[str] = []
    points = points_for(job["spec"])
    run_dir = job["run_dir"]
    for index, point in enumerate(points):
        data, reason = validate_result(run_dir, index, point)
        if data is None:
            problems.append(f"point {index}: {reason}")
    return problems


def job_public(job: Dict) -> Dict:
    """The API-facing view of a job document (no integrity hash)."""
    return {k: v for k, v in job.items() if k != store.SELF_HASH_KEY}


def terminal_entries(job: Dict) -> List[Dict]:
    """History entries that are terminal states (chaos: exactly one)."""
    return [h for h in job.get("history", [])
            if h.get("state") in TERMINAL_STATES]

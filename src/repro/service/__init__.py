"""Resilient simulation-as-a-service over the supervised sweep fabric.

The service layer turns the PR 6 sweep machinery into a multi-tenant
job API with the robustness properties ARCHITECTURE.md §16 specifies:
crash-safe job documents, idempotent submission, two-class fair-share
scheduling with point-boundary preemption, admission control with
backpressure, deadline/cancellation enforcement, and a graceful-drain
shutdown protocol.  Everything is stdlib-only.

Layering (transport-independent core, thin adapters):

* :mod:`repro.service.jobs`   — job model, validation, persistent store
* :mod:`repro.service.queue`  — QoS + tenant fair-share queue
* :mod:`repro.service.core`   — scheduler, admission, enforcement
* :mod:`repro.service.http`   — WSGI app + stdlib server with drain
* :mod:`repro.service.client` — urllib client (CLI + chaos harness)
"""

from repro.service.core import AdmissionError, DrainingError, JobService
from repro.service.jobs import (JobSpecError, JobStateError, JobStore,
                                ServiceConfig, verify_job_results)

__all__ = [
    "AdmissionError", "DrainingError", "JobService", "JobSpecError",
    "JobStateError", "JobStore", "ServiceConfig", "verify_job_results",
]

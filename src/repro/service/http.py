"""Stdlib-only HTTP front end for the job service (WSGI).

The application (:func:`make_app`) is a plain WSGI callable over a
:class:`~repro.service.core.JobService`, so the whole API is testable
by calling it with hand-built ``environ`` dicts — no sockets, no
threads.  :func:`serve` wraps it in ``wsgiref``'s threaded server with
the SIGTERM drain protocol for production-shaped use.

API (all JSON)::

    POST /v1/jobs            submit  -> 201 (created) / 200 (idempotent
                                        replay) / 400 / 429 / 503
    GET  /v1/jobs[?tenant=]  list jobs
    GET  /v1/jobs/<id>       one job -> 200 / 404
    POST /v1/jobs/<id>/cancel        -> 200 / 404   (idempotent)
    GET  /v1/status          scheduler view (slots, queue, draining)
    GET  /v1/metrics         counter/gauge snapshot
    GET  /v1/healthz         liveness (+ draining flag)

429 and 503 responses carry ``Retry-After`` (seconds).  A draining
server refuses new work with 503 but keeps answering reads, so clients
can watch their jobs land in a terminal or requeued state.
"""

from __future__ import annotations

import json
import os
import signal
import socketserver
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.harness import store
from repro.service.core import AdmissionError, DrainingError, JobService
from repro.service.jobs import JobSpecError, ServiceConfig, job_public

#: largest request body the service will read (64 KiB is ~100x a spec)
MAX_BODY_BYTES = 65536

_STATUS = {200: "200 OK", 201: "201 Created", 400: "400 Bad Request",
           404: "404 Not Found", 405: "405 Method Not Allowed",
           413: "413 Payload Too Large", 429: "429 Too Many Requests",
           500: "500 Internal Server Error",
           503: "503 Service Unavailable"}


def _read_body(environ) -> Dict:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        raise JobSpecError("invalid Content-Length")
    if length > MAX_BODY_BYTES:
        raise JobSpecError(f"request body over {MAX_BODY_BYTES} bytes")
    raw = environ["wsgi.input"].read(length) if length else b""
    if not raw:
        raise JobSpecError("empty request body")
    try:
        return json.loads(raw)
    except ValueError as exc:
        raise JobSpecError(f"request body is not valid JSON: {exc}")


def make_app(service: JobService):
    """Build the WSGI application over *service*."""

    def _respond(start_response, status: int, payload: Dict,
                 headers: Optional[Dict[str, str]] = None):
        body = json.dumps(payload, sort_keys=True).encode()
        out = [("Content-Type", "application/json"),
               ("Content-Length", str(len(body)))]
        out.extend((headers or {}).items())
        start_response(_STATUS[status], out)
        return [body]

    def _route(method: str, path: str, environ) -> Tuple[int, Dict, Dict]:
        """Dispatch; returns (status, payload, extra headers)."""
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            return 404, {"error": f"no such resource: {path}"}, {}
        parts = parts[1:]

        if parts == ["healthz"] and method == "GET":
            return 200, {"status": "ok",
                         "draining": service.status()["draining"]}, {}
        if parts == ["status"] and method == "GET":
            return 200, service.status(), {}
        if parts == ["metrics"] and method == "GET":
            snap = (service.metrics.snapshot()
                    if service.metrics is not None else {})
            return 200, {"metrics": snap}, {}

        if parts == ["jobs"] and method == "POST":
            out = service.submit(_read_body(environ))
            return (200 if out["existing"] else 201,
                    {"job": job_public(out["job"]),
                     "existing": out["existing"]}, {})
        if parts == ["jobs"] and method == "GET":
            query = parse_qs(environ.get("QUERY_STRING", ""))
            tenant = (query.get("tenant") or [None])[0]
            jobs = [job_public(j) for j in service.list_jobs(tenant)]
            return 200, {"jobs": jobs}, {}
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            job = service.get(parts[1])
            if job is None:
                return 404, {"error": f"no such job: {parts[1]}"}, {}
            return 200, {"job": job_public(job)}, {}
        if len(parts) == 3 and parts[0] == "jobs" \
                and parts[2] == "cancel" and method == "POST":
            query = parse_qs(environ.get("QUERY_STRING", ""))
            tenant = (query.get("tenant") or [None])[0]
            job = service.cancel(parts[1], tenant=tenant)
            if job is None:
                return 404, {"error": f"no such job: {parts[1]}"}, {}
            return 200, {"job": job_public(job)}, {}

        if parts and parts[0] in ("jobs", "healthz", "status", "metrics"):
            return 405, {"error": f"{method} not allowed on {path}"}, {}
        return 404, {"error": f"no such resource: {path}"}, {}

    def app(environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        try:
            status, payload, headers = _route(method, path, environ)
        except JobSpecError as exc:
            status, payload, headers = 400, {"error": str(exc)}, {}
        except AdmissionError as exc:
            status, payload = 429, {"error": exc.reason,
                                    "retry_after_s": exc.retry_after_s}
            headers = {"Retry-After": str(exc.retry_after_s)}
        except DrainingError as exc:
            status, payload = 503, {"error": str(exc)}
            headers = {"Retry-After": "5"}
        except Exception as exc:  # never leak a traceback to the client
            status, payload, headers = 500, {
                "error": f"internal error: {type(exc).__name__}"}, {}
        return _respond(start_response, status, payload, headers)

    return app


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, *args) -> None:  # per-request stderr noise
        pass


class _ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    daemon_threads = True


def endpoint_path(data_dir: str) -> str:
    """Where :func:`serve` advertises its bound address."""
    return os.path.join(data_dir, "service.json")


def serve(cfg: ServiceConfig, host: str = "127.0.0.1", port: int = 0,
          metrics=None, ready=None, install_signals: bool = True) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and exit.

    Binds (port 0 = ephemeral), writes ``service.json`` (url + pid)
    into the data directory so clients and the chaos harness can find
    the endpoint, and serves until a signal arrives.  The drain
    protocol then runs: admission stops (503), running sweeps yield at
    their next point boundary (escalating to kill at the drain
    timeout), every job is persisted queued or terminal, and the
    process exits 0.  *ready*, when given, is called with the bound
    ``(host, port)`` once the socket is listening (test hook).
    """
    service = JobService(cfg, metrics=metrics)
    httpd = make_server(host, port, make_app(service),
                        server_class=_ThreadingWSGIServer,
                        handler_class=_QuietHandler)
    bound = httpd.server_address
    store.write_json_atomic(endpoint_path(cfg.data_dir), {
        "url": f"http://{bound[0]}:{bound[1]}",
        "pid": os.getpid(),
    })

    stop = threading.Event()

    def _drain_then_stop() -> None:
        # keep answering reads (job status, health) while running
        # sweeps yield; only then take the listener down
        service.drain()
        httpd.shutdown()

    def _signalled(signum, frame) -> None:
        if not stop.is_set():
            stop.set()
            service.begin_drain()
            threading.Thread(target=_drain_then_stop,
                             daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _signalled)
        signal.signal(signal.SIGINT, _signalled)
    if ready is not None:
        ready(bound)
    try:
        httpd.serve_forever(poll_interval=0.2)
    finally:
        httpd.server_close()
    if not stop.is_set():          # shutdown without a signal (tests)
        service.drain()
    return 0

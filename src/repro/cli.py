"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``       one synthetic simulation, optionally traced
              (``--trace``/``--metrics``)
``trace``     short traced run: writes a JSONL + Chrome/Perfetto trace
              and prints the event summary
``sweep``     load-latency sweep over synthetic traffic (Figure 4 style)
``energy``    energy-saving comparison at one injection rate (Figure 5)
``hetero``    one heterogeneous workload mix across schemes (Figure 8)
``table3``    GPU injection / CS-fraction table (Table III)
``faults``    resilience sweep under injected faults (link failures,
              lost CONFIG messages) with the conservation watchdog on
``fig``       regenerate a whole paper artefact (fig4/fig5/fig6/fig8/
              fig9/table3) via the experiment harness
``inspect``   run a short simulation and dump live state (slot tables,
              occupancy heatmap, circuits)
``verify-replay``  snapshot mid-run, restore into a fresh build, re-run
              and fail loudly on any state-hash/stats divergence
``verify-equivalence``  run each scheme under the legacy and the
              activity-tracked fast engine from the same seed and
              require identical state hashes at every checkpoint
``bench``     time the legacy vs fast engine on idle and loaded-epoch
              scenarios plus a parallel supervised sweep; writes
              ``BENCH_simperf.json``
``profile``   cProfile one loaded epoch and print the hottest frames
``resume``    pick up a killed supervised sweep (``sweep --supervised``)
              where it left off
``chaos``     chaos-test the sweep fabric: run a real supervised sweep
              under injected SIGKILLs, supervisor loss, file corruption
              and disk-full errors, then assert the result is identical
              to an undisturbed serial run (``--service`` runs the
              campaign against the job service instead, SIGKILLing the
              whole server between polls)
``serve``     run the simulation-as-a-service job server (stdlib HTTP)
``submit``    submit a sweep job to a running server
``jobs``      list jobs / show one job (``--wait``, ``--verify``)
``cancel``    cancel a job (idempotent at every stage)

Exit codes (uniform across commands)
------------------------------------

==== ======================================================
0    success
1    the command ran but the work failed (failed points,
     chaos mismatch, benchmark regression, job failed)
2    configuration error: bad flags, invalid sweep/job spec,
     unresumable run directory (``SweepConfigError``)
3    transient/infrastructure error: server unreachable,
     connection refused, backpressure that outlasted retries
130  interrupted (SIGINT)
==== ======================================================

Examples
--------

    python -m repro sweep transpose --rates 0.1,0.3,0.5
    python -m repro run hybrid_tdm_vc4 --trace out/run --metrics out/m.json
    python -m repro trace hybrid_tdm_vc4 --pattern tornado
    python -m repro sweep transpose --supervised --run-dir runs/t1
    python -m repro resume runs/t1
    python -m repro verify-replay --schemes packet_vc4,hybrid_tdm_vc4
    python -m repro hetero ART BLACKSCHOLES
    python -m repro fig fig5 --csv out.csv
    python -m repro inspect --scheme hybrid_tdm_vc4 --pattern tornado
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import SCHEMES, scheme_config
from repro.core.decision import DECISION_POLICIES
from repro.harness import experiments as experiments_mod
from repro.harness.report import format_table, write_csv
from repro.harness.runner import load_latency_sweep, run_synthetic

#: uniform exit codes (see module docstring / README)
EXIT_FAILURE = 1
EXIT_CONFIG = 2
EXIT_TRANSIENT = 3
EXIT_INTERRUPT = 130


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", default=None, help="also write rows to CSV")


def _emit(headers, rows, title: str, csv_path: Optional[str]) -> None:
    print(format_table(headers, rows, title=title))
    if csv_path:
        write_csv(csv_path, headers, rows)
        print(f"\nwrote {csv_path}")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="PREFIX",
                   help="write a structured trace to PREFIX.jsonl and "
                        "PREFIX.chrome.json (Perfetto-loadable)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write a sampled metrics time series to PATH")
    p.add_argument("--metrics-interval", type=int, default=100,
                   help="cycles between metrics samples")


def _make_observability(trace_prefix: Optional[str],
                        metrics_path: Optional[str],
                        metrics_interval: int = 100):
    """Observability bundle from CLI flags, or None when neither is set."""
    if not trace_prefix and not metrics_path:
        return None
    from repro.obs import Observability
    return Observability(
        trace_jsonl=f"{trace_prefix}.jsonl" if trace_prefix else None,
        trace_chrome=f"{trace_prefix}.chrome.json" if trace_prefix else None,
        metrics_path=metrics_path,
        sample_interval=metrics_interval)


def _print_obs_summary(summary) -> None:
    if not summary:
        return
    if "events" in summary:
        print(f"\ntrace: {summary['events']} events "
              f"({summary['dropped']} dropped)")
        for ev, n in summary.get("counts", {}).items():
            print(f"  {ev:<16} {n}")
    for key in ("trace_jsonl", "trace_chrome", "metrics_path"):
        if summary.get(key):
            print(f"wrote {summary[key]}")


# ---------------------------------------------------------------------------
def cmd_run(args) -> int:
    obs = _make_observability(args.trace, args.metrics,
                              args.metrics_interval)
    r = run_synthetic(args.scheme, args.pattern, args.rate,
                      warmup=args.warmup, measure=args.measure,
                      seed=args.seed, width=args.width, height=args.height,
                      slot_table_size=args.slot_table_size,
                      observability=obs)
    rows = [(r.scheme, r.offered, r.accepted, r.avg_latency, r.p99_latency,
             r.cs_fraction, r.energy.total / 1e6, r.note or "ok")]
    _emit(("scheme", "offered", "accepted", "avg_lat", "p99", "cs_frac",
           "total_uJ", "status"), rows,
          f"Run: {args.scheme} @ {args.pattern} rate {args.rate}", args.csv)
    if obs is not None:
        _print_obs_summary(obs.finalize_summary)
    return 0


def cmd_trace(args) -> int:
    prefix = args.out or f"trace-{args.scheme}"
    obs = _make_observability(prefix, args.metrics, args.metrics_interval)
    r = run_synthetic(args.scheme, args.pattern, args.rate,
                      warmup=args.warmup, measure=args.measure,
                      seed=args.seed, width=args.width, height=args.height,
                      slot_table_size=args.slot_table_size,
                      observability=obs)
    print(f"{args.scheme} @ {args.pattern} rate {args.rate}: "
          f"{r.messages_delivered} messages, "
          f"avg latency {r.avg_latency:.1f}"
          + (f" ({r.note})" if r.note else ""))
    _print_obs_summary(obs.finalize_summary)
    return 0


def cmd_sweep(args) -> int:
    rates = [float(r) for r in args.rates.split(",")]
    schemes = args.schemes.split(",")
    if args.dry_run:
        return _dry_run_sweep(args, schemes, rates)
    if args.supervised:
        return _supervised_sweep(args, schemes, rates)
    if args.trace or args.metrics:
        return _observed_sweep(args, schemes, rates)
    rows = []
    for scheme in schemes:
        for r in load_latency_sweep(scheme, args.pattern, rates=rates,
                                    seed=args.seed, engine=args.engine):
            rows.append((scheme, r.offered, r.accepted, r.avg_latency,
                         r.p99_latency, r.cs_fraction))
    _emit(("scheme", "offered", "accepted", "avg_lat", "p99", "cs_frac"),
          rows, f"Load-latency sweep: {args.pattern}", args.csv)
    return 0


def _observed_sweep(args, schemes, rates) -> int:
    """In-process sweep with per-point trace/metrics dumps under an
    output directory (one file set per (scheme, rate) point)."""
    import os
    out_dir = args.run_dir or "obs"
    os.makedirs(out_dir, exist_ok=True)
    rows = []
    for scheme in schemes:
        for rate in rates:
            stem = os.path.join(out_dir,
                                f"{scheme}-{args.pattern}-{rate:g}")
            obs = _make_observability(
                stem if args.trace else None,
                stem + ".metrics.json" if args.metrics else None,
                args.metrics_interval)
            r = run_synthetic(scheme, args.pattern, rate, seed=args.seed,
                              observability=obs)
            rows.append((scheme, r.offered, r.accepted, r.avg_latency,
                         r.p99_latency, r.cs_fraction))
    _emit(("scheme", "offered", "accepted", "avg_lat", "p99", "cs_frac"),
          rows, f"Load-latency sweep: {args.pattern}", args.csv)
    print(f"\nper-point observability dumps under {out_dir}/")
    return 0


def _print_sweep_summary(summary) -> None:
    rows = [(res["row"].get("scheme", "?"), res["row"].get("offered", 0.0),
             res["row"].get("accepted", float("nan")),
             res["row"].get("avg_latency", float("nan")),
             res["row"].get("p99_latency", float("nan")),
             res["row"].get("note", "") or res["status"])
            for res in summary["results"]]
    print(format_table(
        ("scheme", "offered", "accepted", "avg_lat", "p99", "status"),
        rows, title="Supervised sweep results"))
    print(f"\n{summary['completed']}/{summary['total']} points completed "
          f"({summary['skipped']} already done), "
          f"{len(summary['failures'])} failures")
    for failure in summary["failures"]:
        pt = failure["point"]
        print(f"  point {failure['index']} "
              f"({pt['scheme']} @ {pt['rate']}): {failure['outcome']} "
              f"after {failure['attempts']} attempt(s)")


def _dry_run_sweep(args, schemes, rates) -> int:
    """Validate and print the resolved sweep without running anything.

    Everything a real invocation would reject — unknown schemes or
    pattern, an inconsistent supervisor config — is rejected here too
    (exit 2); a clean dry run prints every resolved point with its
    spec hash plus the sweep config hash, and exits 0.
    """
    from repro.config import CheckpointConfig
    from repro.harness.supervisor import (build_sweep_points,
                                          point_spec_hash,
                                          sweep_config_hash)
    from repro.service.jobs import PATTERNS

    bad = [s for s in schemes if s not in SCHEMES]
    if bad:
        print(f"unknown scheme(s) {bad}; expected {list(SCHEMES)}",
              file=sys.stderr)
        return EXIT_CONFIG
    if args.pattern not in PATTERNS:
        print(f"unknown pattern {args.pattern!r}; expected one of "
              f"{list(PATTERNS)}", file=sys.stderr)
        return EXIT_CONFIG
    if args.supervised:
        sup = _supervisor_config(args)      # validates; may exit 2
        if sup is None:
            return EXIT_CONFIG
        if not args.run_dir:
            print("--supervised requires --run-dir", file=sys.stderr)
            return EXIT_CONFIG
    points = build_sweep_points(schemes, args.pattern, rates,
                                seed=args.seed,
                                trace=bool(args.trace),
                                metrics=bool(args.metrics),
                                metrics_interval=args.metrics_interval,
                                engine=args.engine)
    rows = [(i, p["scheme"], p["pattern"], p["rate"],
             point_spec_hash(p)[:16]) for i, p in enumerate(points)]
    print(format_table(("index", "scheme", "pattern", "rate", "spec_hash"),
                       rows, title="Dry run: resolved sweep points"))
    # identical construction to _supervised_sweep so the printed hash
    # matches what a real run would record in sweep.json
    cfg_hash = sweep_config_hash(points, CheckpointConfig(
        enabled=args.checkpoint_cycles > 0,
        interval_cycles=args.checkpoint_cycles))
    print(f"\n{len(points)} point(s); sweep config hash {cfg_hash}")
    print("dry run: nothing executed")
    return 0


def _supervisor_config(args):
    """SupervisorConfig from sweep flags, or None after printing the
    validation error (the config-error exit path)."""
    from repro.config import SupervisorConfig
    try:
        return SupervisorConfig(
            enabled=True, timeout_s=args.timeout,
            max_retries=args.retries, jobs=args.jobs,
            lease_ttl_s=args.lease_ttl,
            heartbeat_interval_s=args.heartbeat_interval)
    except ValueError as exc:
        print(f"invalid supervisor config: {exc}", file=sys.stderr)
        return None


def _supervised_sweep(args, schemes, rates) -> int:
    from repro.config import CheckpointConfig
    from repro.harness.supervisor import (build_sweep_points,
                                          run_supervised_sweep)

    if not args.run_dir:
        print("--supervised requires --run-dir", file=sys.stderr)
        return EXIT_CONFIG
    sup = _supervisor_config(args)
    if sup is None:
        return EXIT_CONFIG
    ckpt = CheckpointConfig(enabled=args.checkpoint_cycles > 0,
                            interval_cycles=args.checkpoint_cycles)
    points = build_sweep_points(schemes, args.pattern, rates,
                                seed=args.seed,
                                trace=bool(args.trace),
                                metrics=bool(args.metrics),
                                metrics_interval=args.metrics_interval,
                                engine=args.engine)

    def progress(index, point, outcome, attempts):
        print(f"[{index + 1}/{len(points)}] {point['scheme']} "
              f"@ {point['rate']}: {outcome}")

    summary = run_supervised_sweep(points, args.run_dir, sup, ckpt,
                                   progress=progress)
    _print_sweep_summary(summary)
    return 0 if not summary["failures"] else 1


def cmd_resume(args) -> int:
    from repro.harness.supervisor import SweepConfigError, resume_sweep
    try:
        summary = resume_sweep(args.run_dir, jobs=args.jobs)
    except (FileNotFoundError, SweepConfigError) as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    _print_sweep_summary(summary)
    return 0 if not summary["failures"] else 1


def cmd_chaos(args) -> int:
    if args.service:
        return _service_chaos(args)
    from repro.harness.chaos import ChaosConfig, run_chaos

    cfg = ChaosConfig(points=args.points, kill_rate=args.kill_rate,
                      corrupt_rate=args.corrupt_rate,
                      diskfull_rate=args.diskfull_rate,
                      supervisor_kill_rate=args.supervisor_kill_rate,
                      cycles=args.cycles, jobs=args.jobs, seed=args.seed,
                      timeout_s=args.timeout)
    report = run_chaos(cfg, args.run_dir, progress=print)
    print(f"\n{report['total_kills']} worker kill(s), "
          f"{report['supervisor_kills']} supervisor kill(s), "
          f"{report['total_corruptions']} corruption(s) over "
          f"{report['cycles_run']} cycle(s) in {report['elapsed_s']}s")
    if report["ok"]:
        print("CHAOS PASS: manifest complete, checksum-clean, identical "
              "to the undisturbed serial run")
        print(f"report: {report['report_path']}")
        return 0
    print("CHAOS FAIL:")
    for problem in report["problems"]:
        print(f"  {problem}")
    print(f"report: {report['report_path']}")
    return 1


def _service_chaos(args) -> int:
    from repro.harness.chaos import ServiceChaosConfig, run_service_chaos

    cfg = ServiceChaosConfig(
        points=args.points, server_kill_rate=args.server_kill_rate,
        kills=args.server_kills, seed=args.seed,
        timeout_s=args.service_timeout)
    report = run_service_chaos(cfg, args.run_dir, progress=print)
    print(f"\n{report['server_kills']} server kill(s), "
          f"{report['jobs']} job(s) over {report['elapsed_s']}s")
    if report["ok"]:
        print("SERVICE CHAOS PASS: every accepted job terminal exactly "
              "once, checksum-clean, identical to the serial reference")
        print(f"report: {report['report_path']}")
        return 0
    print("SERVICE CHAOS FAIL:")
    for problem in report["problems"]:
        print(f"  {problem}")
    print(f"report: {report['report_path']}")
    return 1


# ---------------------------------------------------------------------------
# service commands
# ---------------------------------------------------------------------------
def _service_config(args):
    from repro.service import ServiceConfig
    return ServiceConfig(
        data_dir=args.data_dir, slots=args.slots,
        sweep_jobs=args.sweep_jobs,
        max_queue_depth=args.max_queue_depth,
        tenant_quota=args.tenant_quota,
        max_points_per_job=args.max_points,
        drain_timeout_s=args.drain_timeout,
        point_timeout_s=args.timeout, max_retries=args.retries,
        lease_ttl_s=args.lease_ttl,
        heartbeat_interval_s=args.heartbeat_interval)


def cmd_serve(args) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.service.http import serve

    try:
        cfg = _service_config(args)
    except ValueError as exc:
        print(f"invalid service config: {exc}", file=sys.stderr)
        return EXIT_CONFIG

    def ready(bound) -> None:
        print(f"serving on http://{bound[0]}:{bound[1]} "
              f"(data dir {cfg.data_dir}); SIGTERM drains", flush=True)

    return serve(cfg, host=args.host, port=args.port,
                 metrics=MetricsRegistry(), ready=ready)


def _service_url(args) -> str:
    if getattr(args, "url", None):
        return args.url
    from repro.service.client import discover
    url = discover(args.data_dir)
    if url is None:
        raise ConnectionError(
            f"no service endpoint advertised under {args.data_dir!r}; "
            f"is the server running?  (pass --url to target it directly)")
    return url


def _print_job(job, as_json: bool) -> None:
    import json as json_mod
    if as_json:
        print(json_mod.dumps(job, indent=2, sort_keys=True))
        return
    progress = job.get("progress") or {}
    print(f"{job['id']}  {job['state']:<18} {job['qos']:<12} "
          f"tenant={job['tenant']} "
          f"points={progress.get('completed', 0)}"
          f"/{progress.get('total', '?')}"
          + (f" error={job['error']}" if job.get("error") else ""))


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient

    if args.cpu_benchmarks or args.gpu_benchmarks:
        if not (args.cpu_benchmarks and args.gpu_benchmarks):
            print("error: --cpu-benchmarks and --gpu-benchmarks must be "
                  "given together", file=sys.stderr)
            return EXIT_CONFIG
        sweep = {
            "schemes": args.schemes.split(","),
            "cpu_benchmarks": args.cpu_benchmarks.split(","),
            "gpu_benchmarks": args.gpu_benchmarks.split(","),
            "seed": args.seed,
            "width": args.width, "height": args.height,
            "warmup": args.warmup, "measure": args.measure,
        }
        if args.phased:
            sweep["phased"] = True
    else:
        sweep = {
            "schemes": args.schemes.split(","),
            "pattern": args.pattern,
            "rates": [float(r) for r in args.rates.split(",")],
            "seed": args.seed,
            "width": args.width, "height": args.height,
            "slot_table_size": args.slot_table_size,
            "warmup": args.warmup, "measure": args.measure,
        }
    body = {"tenant": args.tenant, "qos": args.qos, "sweep": sweep}
    if args.deadline is not None:
        body["deadline_s"] = args.deadline
    if args.idempotency_key:
        body["idempotency_key"] = args.idempotency_key
    client = ServiceClient(_service_url(args))
    out = client.submit(body, retries=args.submit_retries)
    job = out["job"]
    if out["existing"]:
        print("replayed existing job (idempotent submission)")
    _print_job(job, args.json)
    if not args.wait:
        return 0
    job = client.wait(job["id"], timeout_s=args.wait_timeout)
    _print_job(job, args.json)
    return 0 if job["state"] == "succeeded" else EXIT_FAILURE


def cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient
    from repro.service.jobs import verify_job_results

    client = ServiceClient(_service_url(args))
    if args.id is None:
        for job in client.jobs(tenant=args.tenant):
            _print_job(job, args.json)
        return 0
    job = (client.wait(args.id, timeout_s=args.wait_timeout)
           if args.wait else client.job(args.id))
    _print_job(job, args.json)
    code = 0
    if args.wait and job["state"] != "succeeded":
        code = EXIT_FAILURE
    if args.verify:
        problems = verify_job_results(job)
        if problems:
            print(f"VERIFY FAIL ({len(problems)} problem(s)):")
            for problem in problems:
                print(f"  {problem}")
            return EXIT_FAILURE
        print("verify: all point results present and checksum-clean")
    return code


def cmd_cancel(args) -> int:
    from repro.service.client import ServiceClient

    job = ServiceClient(_service_url(args)).cancel(args.id,
                                                   tenant=args.tenant)
    _print_job(job, args.json)
    return 0


def cmd_verify_replay(args) -> int:
    from repro.harness.verify import verify_replay

    failed = False
    for scheme in args.schemes.split(","):
        report = verify_replay(
            scheme, pattern=args.pattern, rate=args.rate,
            pre_cycles=args.pre, post_cycles=args.post, seed=args.seed,
            width=args.width, height=args.height,
            slot_table_size=args.slot_table_size)
        verdict = "PASS" if report.ok else "FAIL"
        print(f"{verdict} {scheme}: restore={report.restore_hash_ok} "
              f"final={report.final_hash_ok} stats={report.stats_ok} "
              f"(snapshot {report.hash_at_snapshot[:16]})")
        for mismatch in report.mismatches:
            print(f"    {mismatch}")
        failed = failed or not report.ok
    return 1 if failed else 0


def cmd_verify_equivalence(args) -> int:
    from repro.harness.verify import verify_equivalence

    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    failed = False
    for scheme in args.schemes.split(","):
        report = verify_equivalence(
            scheme, pattern=args.pattern, rate=args.rate,
            cycles=args.cycles, interval=args.interval, seed=args.seed,
            width=args.width, height=args.height,
            slot_table_size=args.slot_table_size,
            stop_cycle=args.stop_cycle, engines=engines)
        verdict = "PASS" if report.ok else "FAIL"
        finals = " ".join(f"{name}={report.final_hashes[name][:16]}"
                          for name in report.engines)
        print(f"{verdict} {scheme}: {report.checkpoints} checkpoints, "
              f"final {finals}")
        for mismatch in report.mismatches:
            print(f"    {mismatch}")
        failed = failed or not report.ok
    return 1 if failed else 0


def cmd_bench(args) -> int:
    import json as json_mod

    from repro.harness.bench import (compare_to_baseline, run_bench,
                                     select_scenarios, time_supervised_sweep,
                                     write_bench_json)

    scenarios = None
    if args.scenarios:
        try:
            scenarios = select_scenarios(args.scenarios.split(","))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
    report = run_bench(repeats=args.repeats, seed=args.seed,
                       scenarios=scenarios)
    rows = [(r["scenario"], r["legacy_cps"], r["fast_cps"], r["batch_cps"],
             r["ratio"], r["batch_ratio"],
             f"{r['target_ratio']}/{r['batch_target']}",
             "PASS" if r["ok"] else "FAIL")
            for r in report["scenarios"]]
    print(format_table(
        ("scenario", "legacy_cps", "fast_cps", "batch_cps", "fast_x",
         "batch_x", "targets", "ok"),
        rows, title=f"Engine throughput (best of {args.repeats})"))
    if not args.no_replicas:
        from repro.harness.bench import time_replica_throughput
        rep_fig = time_replica_throughput(seed=args.seed)
        report["replicas"] = rep_fig
        print(f"\nbatched replicas: {rep_fig['replicas']} seeds x "
              f"{rep_fig['cycles_per_replica']} cycles: "
              f"{rep_fig['batched_wall_seconds']}s wall "
              f"({rep_fig['batched_cps']} cycles/s aggregate)")
    if not args.no_sweep:
        sweep_fig = time_supervised_sweep(jobs=args.jobs, seed=args.seed)
        report["sweep"] = sweep_fig
        print(f"\nsupervised sweep: {sweep_fig['points']} points, "
              f"{sweep_fig['jobs']} job(s): "
              f"{sweep_fig['sweep_wall_seconds']}s wall")
    write_bench_json(report, args.json)
    print(f"\nwrote {args.json}")
    ok = report["ok"]
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json_mod.load(fh)
        # >= 1 reads as percent (compare_to_baseline does the same)
        tol = args.tolerance / 100.0 if args.tolerance >= 1.0 \
            else args.tolerance
        failures = compare_to_baseline(report, baseline,
                                       tolerance=args.tolerance)
        if failures:
            ok = False
            print(f"\nregression vs {args.baseline}:")
            for failure in failures:
                print(f"  {failure}")
        else:
            print(f"\nno regression vs {args.baseline} "
                  f"(tolerance {100 * tol:.0f}%)")
    return 0 if ok else 1


def cmd_profile(args) -> int:
    from repro.harness.profiling import profile_epoch

    stop = None if args.stop_cycle < 0 else args.stop_cycle
    report = profile_epoch(
        scheme=args.scheme, pattern=args.pattern, rate=args.rate,
        cycles=args.cycles, stop_cycle=stop,
        engine=args.engine, seed=args.seed,
        width=args.width, height=args.height,
        sort=args.sort, limit=args.limit, out=args.out)
    print(report, end="")
    if args.out:
        print(f"wrote {args.out} (pstats dump)")
    return 0


def cmd_energy(args) -> int:
    base = run_synthetic("packet_vc4", args.pattern, args.rate,
                         seed=args.seed)
    rows = [("packet_vc4", base.energy.total / 1e6,
             base.energy_per_message_pj / 1000, 0.0, 0.0)]
    for scheme in ("hybrid_tdm_vc4", "hybrid_tdm_vct"):
        r = run_synthetic(scheme, args.pattern, args.rate, seed=args.seed)
        save = 100 * (1 - r.energy_per_message_pj
                      / base.energy_per_message_pj)
        rows.append((scheme, r.energy.total / 1e6,
                     r.energy_per_message_pj / 1000, r.cs_fraction, save))
    _emit(("scheme", "total_uJ", "nJ_per_msg", "cs_frac", "save_%"),
          rows, f"Energy @ {args.pattern} rate {args.rate}", args.csv)
    return 0


def cmd_hetero(args) -> int:
    from repro.hetero import HeteroSystem, PhaseConfig, run_hetero_replay

    schemes = args.schemes.split(",")
    phases = PhaseConfig() if args.phased else None

    if args.replay:
        path = f"{args.replay}.trace.jsonl"
        rows = []
        for scheme in schemes:
            res = run_hetero_replay(
                scheme, path, warmup=args.warmup, measure=args.measure,
                seed=args.seed, engine=args.engine, policy=args.policy)
            rows.append((scheme, res.cs_fraction, res.avg_pkt_latency,
                         res.energy.total / 1e6, res.messages_delivered))
        _emit(("scheme", "cs_frac", "avg_lat", "total_uJ", "messages"),
              rows, f"Trace replay: {path}", args.csv)
        return 0

    recorder = None
    rows = []
    base = None
    for i, scheme in enumerate(schemes):
        system = HeteroSystem(scheme, args.cpu, args.gpu, seed=args.seed,
                              engine=args.engine, phases=phases,
                              policy=args.policy)
        rec = None
        if args.record and i == 0:
            from repro.traffic import MessageTraceRecorder
            rec = recorder = MessageTraceRecorder()
        res = system.run(warmup=args.warmup, measure=args.measure,
                         recorder=rec)
        if base is None:
            base = res
        rows.append((scheme,
                     100 * (1 - res.energy.total / base.energy.total),
                     res.cpu_ipc / base.cpu_ipc,
                     res.gpu_throughput / base.gpu_throughput,
                     res.cs_fraction, res.gpu_injection_rate))
    _emit(("scheme", "energy_save_%", "cpu_speedup", "gpu_speedup",
           "cs_frac", "gpu_inj"), rows,
          f"Heterogeneous mix {args.cpu} x {args.gpu}", args.csv)
    if recorder is not None:
        path = f"{args.record}.trace.jsonl"
        recorder.save(path, info={
            "scheme": schemes[0], "cpu_benchmark": args.cpu,
            "gpu_benchmark": args.gpu, "warmup": args.warmup,
            "measure": args.measure, "seed": args.seed,
            "phased": bool(args.phased), "policy": args.policy})
        print(f"\nrecorded {len(recorder.events)} events "
              f"({schemes[0]}) to {path}")
    return 0


def cmd_table3(args) -> int:
    result = experiments_mod.table3(seed=args.seed)
    print(result.text)
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
    return 0


def cmd_faults(args) -> int:
    drops = [float(d) for d in args.drops.split(",")]
    result = experiments_mod.fault_sweep(
        scheme=args.scheme, pattern=args.pattern, rate=args.rate,
        drop_rates=drops, link_faults=args.link_faults,
        width=args.width, height=args.height,
        setup_timeout=args.setup_timeout, seed=args.seed)
    print(result.text)
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_fig(args) -> int:
    fn = getattr(experiments_mod, args.name, None)
    if fn is None or args.name not in ("fig4", "fig5", "fig6", "fig8",
                                       "fig9", "table3"):
        print(f"unknown artefact {args.name!r}; expected fig4/fig5/fig6/"
              f"fig8/fig9/table3", file=sys.stderr)
        return EXIT_CONFIG
    result = fn(seed=args.seed)
    print(result.text)
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_inspect(args) -> int:
    from repro import Simulator, build_network
    from repro import inspect as insp
    from repro.traffic import attach_synthetic_sources, make_pattern

    cfg = scheme_config(args.scheme)
    sim = Simulator(seed=args.seed)
    net = build_network(cfg, sim)
    pattern = make_pattern(args.pattern, net.mesh, sim.rng)
    attach_synthetic_sources(net, pattern, injection_rate=args.rate,
                             rng=sim.rng)
    sim.run(args.cycles)
    print(insp.network_summary(net))
    print()
    print(insp.occupancy_heatmap(net))
    print()
    if hasattr(net, "clock"):
        print(insp.vc_power_map(net))
        print()
        print(insp.circuit_listing(net))
        print()
        print(insp.slot_table_dump(net, args.node))
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TDM hybrid-switched NoC reproduction (Yin et al. 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one synthetic run, optionally traced")
    p.add_argument("scheme", nargs="?", default="hybrid_tdm_vc4",
                   choices=list(SCHEMES))
    p.add_argument("--pattern", default="transpose")
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--warmup", type=int, default=1500)
    p.add_argument("--measure", type=int, default=4000)
    p.add_argument("--width", type=int, default=6)
    p.add_argument("--height", type=int, default=6)
    p.add_argument("--slot-table-size", type=int, default=128)
    _add_obs_flags(p)
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("trace",
                       help="short traced run (JSONL + Perfetto trace)")
    p.add_argument("scheme", nargs="?", default="hybrid_tdm_vc4",
                   choices=list(SCHEMES))
    p.add_argument("--pattern", default="transpose")
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=700)
    p.add_argument("--width", type=int, default=4)
    p.add_argument("--height", type=int, default=4)
    p.add_argument("--slot-table-size", type=int, default=64)
    p.add_argument("--out", default=None, metavar="PREFIX",
                   help="trace file prefix (default trace-<scheme>)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="also write a metrics time series to PATH")
    p.add_argument("--metrics-interval", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("sweep", help="load-latency sweep (Figure 4 style)")
    p.add_argument("pattern", nargs="?", default="transpose")
    p.add_argument("--rates", default="0.05,0.15,0.25,0.35,0.45")
    p.add_argument("--schemes",
                   default="packet_vc4,hybrid_tdm_vc4,hybrid_tdm_vct")
    p.add_argument("--engine", default=None,
                   choices=("legacy", "fast", "batch"),
                   help="pin every point to one scheduler (default: "
                        "the worker's process default)")
    p.add_argument("--supervised", action="store_true",
                   help="run each point in a supervised subprocess with "
                        "timeout/retry and a failure manifest")
    p.add_argument("--dry-run", action="store_true",
                   help="validate the configuration, print the resolved "
                        "point list with spec hashes, and exit without "
                        "running anything")
    p.add_argument("--run-dir", default=None,
                   help="directory for supervised results (resumable)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-point wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="retries for crashed/timed-out points")
    p.add_argument("--jobs", type=int, default=0,
                   help="concurrent supervised points (0 = one per CPU)")
    p.add_argument("--checkpoint-cycles", type=int, default=0,
                   help="snapshot each point's state every N cycles")
    p.add_argument("--lease-ttl", type=float, default=60.0,
                   help="heartbeat staleness (s) after which a worker's "
                        "lease expires and its point is reclaimed "
                        "(0 disables lease expiry)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   help="period (s) of worker heartbeat writes")
    p.add_argument("--trace", action="store_true",
                   help="write per-point trace dumps (JSONL + Chrome "
                        "format) next to the results")
    p.add_argument("--metrics", action="store_true",
                   help="write per-point metrics time series next to "
                        "the results")
    p.add_argument("--metrics-interval", type=int, default=100,
                   help="cycles between metrics samples")
    _add_common(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("resume",
                       help="resume a killed supervised sweep")
    p.add_argument("run_dir", help="run directory from sweep --supervised")
    p.add_argument("--jobs", type=int, default=None,
                   help="override the concurrency recorded in sweep.json")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("chaos",
                       help="chaos-test the supervised sweep fabric")
    p.add_argument("--run-dir", default="chaos-run",
                   help="directory for the reference + chaos runs and "
                        "chaos-report.json")
    p.add_argument("--points", type=int, default=8,
                   help="sweep-grid size for the campaign")
    p.add_argument("--kill-rate", type=float, default=0.3,
                   help="per-second SIGKILL hazard per running worker")
    p.add_argument("--corrupt-rate", type=float, default=0.4,
                   help="per-file truncate/bit-flip probability between "
                        "resume cycles")
    p.add_argument("--diskfull-rate", type=float, default=0.1,
                   help="per-write injected-ENOSPC probability inside "
                        "workers")
    p.add_argument("--supervisor-kill-rate", type=float, default=0.5,
                   help="probability of SIGKILLing the whole supervisor "
                        "per disturbed cycle")
    p.add_argument("--cycles", type=int, default=4,
                   help="resume cycles; the final one runs undisturbed")
    p.add_argument("--jobs", type=int, default=2,
                   help="concurrency of the chaos run")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-point wall-clock timeout in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--service", action="store_true",
                   help="chaos-test the job service instead: SIGKILL "
                        "the whole server between polls, restart it, "
                        "and assert every accepted job reaches a "
                        "terminal state exactly once with checksum-"
                        "clean results identical to a serial reference")
    p.add_argument("--server-kill-rate", type=float, default=0.35,
                   help="per-poll probability of SIGKILLing the server "
                        "(service mode)")
    p.add_argument("--server-kills", type=int, default=2,
                   help="max server SIGKILLs in the campaign "
                        "(service mode)")
    p.add_argument("--service-timeout", type=float, default=300.0,
                   help="campaign budget in seconds (service mode)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("serve", help="run the job service (stdlib HTTP)")
    p.add_argument("--data-dir", default="service-data",
                   help="persistent root for job documents + results")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 binds an ephemeral port; the bound address "
                        "is advertised in <data-dir>/service.json")
    p.add_argument("--slots", type=int, default=2,
                   help="jobs running concurrently")
    p.add_argument("--sweep-jobs", type=int, default=1,
                   help="worker processes per running job (0 = one "
                        "per CPU)")
    p.add_argument("--max-queue-depth", type=int, default=16,
                   help="queued jobs accepted before 429 backpressure")
    p.add_argument("--tenant-quota", type=int, default=8,
                   help="queued+running jobs one tenant may hold")
    p.add_argument("--max-points", type=int, default=64,
                   help="largest point grid one job may resolve to")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="SIGTERM drain budget before in-flight points "
                        "are killed (they resume after restart)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-point wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--lease-ttl", type=float, default=60.0)
    p.add_argument("--heartbeat-interval", type=float, default=1.0)
    p.set_defaults(fn=cmd_serve)

    def _add_client_flags(p, tenant_required: bool = False) -> None:
        p.add_argument("--url", default=None,
                       help="service URL (default: discover from "
                            "<data-dir>/service.json)")
        p.add_argument("--data-dir", default="service-data")
        p.add_argument("--tenant", required=tenant_required, default=None)
        p.add_argument("--json", action="store_true",
                       help="print full job documents as JSON")

    p = sub.add_parser("submit", help="submit a sweep job to a server")
    _add_client_flags(p, tenant_required=True)
    p.add_argument("--qos", default="bulk",
                   choices=("interactive", "bulk"))
    p.add_argument("--schemes",
                   default="packet_vc4,hybrid_tdm_vc4,hybrid_tdm_vct")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rates", default="0.05,0.15,0.25")
    p.add_argument("--cpu-benchmarks", default=None,
                   help="comma list of CPU benchmarks; with "
                        "--gpu-benchmarks, submits a heterogeneous "
                        "closed-loop sweep instead of pattern/rates")
    p.add_argument("--gpu-benchmarks", default=None,
                   help="comma list of GPU benchmarks (hetero sweep)")
    p.add_argument("--phased", action="store_true",
                   help="phase-structured hetero workload "
                        "(hetero sweeps only)")
    p.add_argument("--width", type=int, default=6)
    p.add_argument("--height", type=int, default=6)
    p.add_argument("--slot-table-size", type=int, default=128)
    p.add_argument("--warmup", type=int, default=1500)
    p.add_argument("--measure", type=int, default=4000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--deadline", type=float, default=None,
                   help="wall-clock deadline in seconds; the job is "
                        "killed and marked deadline_exceeded past it")
    p.add_argument("--idempotency-key", default=None,
                   help="retrying with the same key replays the "
                        "original job instead of duplicating it")
    p.add_argument("--submit-retries", type=int, default=0,
                   help="retry 429/connection errors this many times "
                        "(an idempotency key is auto-generated)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("jobs", help="list jobs or show one job")
    _add_client_flags(p)
    p.add_argument("id", nargs="?", default=None)
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal (requires id)")
    p.add_argument("--wait-timeout", type=float, default=600.0)
    p.add_argument("--verify", action="store_true",
                   help="checksum-validate the job's on-disk results "
                        "(requires local access to the data dir)")
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser("cancel", help="cancel a job (idempotent)")
    _add_client_flags(p)
    p.add_argument("id")
    p.set_defaults(fn=cmd_cancel)

    p = sub.add_parser("verify-replay",
                       help="verify snapshot/restore determinism")
    p.add_argument("--schemes", default="packet_vc4,hybrid_tdm_vc4")
    p.add_argument("--pattern", default="transpose")
    p.add_argument("--rate", type=float, default=0.15)
    p.add_argument("--pre", type=int, default=600,
                   help="cycles before the snapshot")
    p.add_argument("--post", type=int, default=600,
                   help="cycles replayed after the snapshot")
    p.add_argument("--width", type=int, default=4)
    p.add_argument("--height", type=int, default=4)
    p.add_argument("--slot-table-size", type=int, default=64)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_verify_replay)

    p = sub.add_parser("verify-equivalence",
                       help="verify N-way engine equivalence "
                            "(legacy/fast/batch by default)")
    p.add_argument("--engines", default="legacy,fast,batch",
                   help="comma-separated engines to compare; the first "
                        "is the baseline the others are diffed against")
    p.add_argument("--schemes",
                   default="packet_vc4,hybrid_sdm_vc4,hybrid_tdm_vc4,"
                           "hybrid_tdm_vct,hybrid_tdm_hop_vc4,"
                           "hybrid_tdm_hop_vct")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.12)
    p.add_argument("--cycles", type=int, default=300)
    p.add_argument("--interval", type=int, default=100,
                   help="cycles between state-hash checkpoints")
    p.add_argument("--stop-cycle", type=int, default=None,
                   help="stop traffic sources at this cycle so the "
                        "drain/sleep path is exercised")
    p.add_argument("--width", type=int, default=4)
    p.add_argument("--height", type=int, default=4)
    p.add_argument("--slot-table-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_verify_equivalence)

    p = sub.add_parser("bench",
                       help="engine cycles/sec benchmark "
                            "(legacy vs fast vs batch)")
    p.add_argument("--repeats", type=int, default=5,
                   help="interleaved timing repeats; best run kept")
    p.add_argument("--json", default="BENCH_simperf.json",
                   help="output path for the machine-readable report")
    p.add_argument("--baseline", default=None,
                   help="committed BENCH_simperf.json to regress "
                        "fast/batch-engine throughput against")
    p.add_argument("--no-replicas", action="store_true",
                   help="skip the batched-replica throughput figure")
    p.add_argument("--tolerance", type=float, default=0.02,
                   help="allowed slowdown vs the baseline; values >= 1 "
                        "are read as a percentage (10 means 10%%)")
    p.add_argument("--jobs", type=int, default=0,
                   help="concurrency for the timed supervised sweep "
                        "(0 = one per CPU)")
    p.add_argument("--no-sweep", action="store_true",
                   help="skip the supervised-sweep wall-clock figure")
    p.add_argument("--scenarios", default=None,
                   help="comma-separated scenario subset (e.g. "
                        "hetero_mix,trace_replay)")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("profile",
                       help="cProfile one loaded epoch (hot-loop report)")
    p.add_argument("scheme", nargs="?", default="hybrid_tdm_vc4",
                   choices=list(SCHEMES))
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--cycles", type=int, default=2500)
    p.add_argument("--stop-cycle", type=int, default=500,
                   help="stop traffic here so the drain/sleep path "
                        "shows up; pass -1 to never stop")
    p.add_argument("--engine", default="fast",
                   choices=("legacy", "fast", "batch"))
    p.add_argument("--width", type=int, default=4)
    p.add_argument("--height", type=int, default=4)
    p.add_argument("--sort", default="cumulative",
                   help="pstats sort key (cumulative, tottime, calls...)")
    p.add_argument("--limit", type=int, default=25,
                   help="number of frames to print")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also dump raw pstats data to PATH")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("energy", help="energy comparison (Figure 5 style)")
    p.add_argument("pattern", nargs="?", default="tornado")
    p.add_argument("--rate", type=float, default=0.25)
    _add_common(p)
    p.set_defaults(fn=cmd_energy)

    p = sub.add_parser("hetero", help="heterogeneous mix (Figure 8 style)")
    p.add_argument("cpu", nargs="?", default="ART")
    p.add_argument("gpu", nargs="?", default="BLACKSCHOLES")
    p.add_argument("--schemes", default="packet_vc4,hybrid_tdm_vc4,"
                   "hybrid_tdm_hop_vc4,hybrid_tdm_hop_vct")
    p.add_argument("--warmup", type=int, default=2000)
    p.add_argument("--measure", type=int, default=6000)
    p.add_argument("--record", default=None, metavar="PREFIX",
                   help="record the first scheme's message trace to "
                        "PREFIX.trace.jsonl")
    p.add_argument("--replay", default=None, metavar="PREFIX",
                   help="replay PREFIX.trace.jsonl across --schemes "
                        "instead of running the closed-loop mix")
    p.add_argument("--phased", action="store_true",
                   help="phase-structured workload (compute/memory phases, "
                        "GPU kernel bursts, hotspot skew)")
    p.add_argument("--policy", default="slack",
                   choices=list(DECISION_POLICIES),
                   help="circuit-decision policy for hybrid schemes")
    p.add_argument("--engine", default=None,
                   choices=("legacy", "fast", "batch"))
    _add_common(p)
    p.set_defaults(fn=cmd_hetero)

    p = sub.add_parser("table3", help="GPU injection & CS fractions")
    _add_common(p)
    p.set_defaults(fn=cmd_table3)

    p = sub.add_parser("faults", help="fault-injection resilience sweep")
    p.add_argument("--scheme", default="hybrid_tdm_vc4",
                   choices=list(SCHEMES))
    p.add_argument("--pattern", default="transpose")
    p.add_argument("--rate", type=float, default=0.20)
    p.add_argument("--drops", default="0.0,0.005,0.01,0.02,0.05",
                   help="CONFIG-message drop rates to sweep")
    p.add_argument("--link-faults", type=int, default=2,
                   help="permanent bidirectional link failures")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--setup-timeout", type=int, default=256)
    _add_common(p)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("fig", help="regenerate a paper artefact")
    p.add_argument("name", choices=["fig4", "fig5", "fig6", "fig8",
                                    "fig9", "table3"])
    _add_common(p)
    p.set_defaults(fn=cmd_fig)

    p = sub.add_parser("inspect", help="dump live simulation state")
    p.add_argument("--scheme", default="hybrid_tdm_vc4",
                   choices=list(SCHEMES))
    p.add_argument("--pattern", default="tornado")
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--node", type=int, default=0)
    _add_common(p)
    p.set_defaults(fn=cmd_inspect)

    return parser


def _classify_exit(exc: BaseException) -> Optional[int]:
    """Map an escaped exception to the uniform exit-code table, or
    None for genuine bugs (which must propagate with a traceback)."""
    import urllib.error

    from repro.harness.supervisor import SweepConfigError
    from repro.service.client import ServiceError
    from repro.service.jobs import JobSpecError

    if isinstance(exc, (SweepConfigError, JobSpecError)):
        return EXIT_CONFIG
    if isinstance(exc, ServiceError):
        # backpressure and server-side trouble are retryable; other
        # 4xx responses mean the request itself was wrong
        if exc.status in (429, 503) or exc.status >= 500:
            return EXIT_TRANSIENT
        return EXIT_CONFIG
    if isinstance(exc, (urllib.error.URLError, ConnectionError,
                        TimeoutError, OSError)):
        return EXIT_TRANSIENT
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except Exception as exc:
        code = _classify_exit(exc)
        if code is None:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Crash-safe snapshots and deterministic-replay hashing.

This module turns the kernel's reproducibility contract ("runs are
exactly reproducible", :mod:`repro.sim.kernel`) into checkable
machinery:

``capture_state``
    Collects the full mutable state of a (``Simulator``, ``Network``)
    pair through the component :meth:`state_dict` protocol, plus the
    module-level id counters, and *freezes* it with a single pickle
    round-trip.  The single pass is essential: a flit can sit in a link
    pipe while its packet is tracked by the source NI and its connection
    record lives in two manager dicts — one pickling pass preserves all
    of that sharing, per-component copies would not.

``restore_state``
    Loads a captured tree onto a freshly *rebuilt* simulator/network
    pair (same config, same seed, same construction path).  Wiring —
    links, callbacks, shared controller references — is never
    serialized; it is recreated by construction and only mutable state
    is overwritten.  The RNG bit-generator state is restored in place so
    every component holding ``sim.rng`` keeps a valid reference.

``state_hash``
    A canonical SHA-256 over a captured tree.  Two trees hash equal iff
    they are structurally identical (including object-sharing topology),
    which is what the ``repro verify-replay`` command and the property
    tests compare.

``save_snapshot`` / ``load_snapshot`` / ``CheckpointManager``
    On-disk format with a checksummed header, atomic tmp-file + rename
    writes, corruption detection on load and automatic fallback to the
    previous good snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from collections import deque
from enum import Enum
from typing import Dict, List, NamedTuple, Optional

import numpy as np

#: bump when the capture tree layout changes incompatibly
SNAPSHOT_VERSION = 1

#: file magic; the trailing newline keeps the header line-oriented
MAGIC = b"RSNP1\n"


class SnapshotError(RuntimeError):
    """Base error for snapshot serialization problems."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed validation (magic/header/checksum)."""


# ---------------------------------------------------------------------------
# checksum / durable-write surface (shared with repro.harness.store)
# ---------------------------------------------------------------------------
def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of *data* — the checksum used everywhere on disk."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str, chunk: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents, streamed in *chunk* blocks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Durable atomic write: tmp file + flush + fsync + rename.

    The rename is additionally made durable by fsyncing the containing
    directory (best effort — not all filesystems support it), so a
    crash immediately after this returns cannot lose the rename.
    A crash at any earlier moment leaves at most a stray ``*.tmp``
    file; the final name is never visible half-written.
    """
    path = os.path.abspath(path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:  # pragma: no cover - platform dependent
        dfd = os.open(os.path.dirname(path), os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# capture / restore
# ---------------------------------------------------------------------------
def capture_state(sim, net) -> Dict:
    """Capture the full mutable state of *sim* + *net* as a frozen tree.

    The returned tree is decoupled from the live objects (mutating the
    simulation afterwards does not change it) and is what
    :func:`state_hash`, :func:`save_snapshot` and :func:`restore_state`
    operate on.
    """
    from repro.core import circuit as _circuit_mod
    from repro.network import flit as _flit_mod

    tree = {
        "format": SNAPSHOT_VERSION,
        "sim": sim.state_dict(),
        "ids": {
            "msg": _flit_mod._msg_ids.value,
            "pkt": _flit_mod._pkt_ids.value,
            "conn": _circuit_mod._conn_ids.value,
        },
        "net": net.state_dict(),
    }
    return _freeze(tree)


def restore_state(sim, net, tree: Dict) -> None:
    """Load a captured *tree* onto *sim* and *net*.

    *sim*/*net* must have been rebuilt through the same construction
    path (same config and seed) as the pair the tree was captured from;
    only mutable state is overwritten, wiring is left as constructed.
    The caller's *tree* is not consumed — a private frozen copy is
    loaded, so the same tree can be restored multiple times (and hashed
    afterwards) without aliasing live simulation objects.
    """
    from repro.core import circuit as _circuit_mod
    from repro.network import flit as _flit_mod

    if tree.get("format") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot format {tree.get('format')!r} != {SNAPSHOT_VERSION}")
    tree = _freeze(tree)
    sim.load_state_dict(tree["sim"])
    _flit_mod._msg_ids.value = int(tree["ids"]["msg"])
    _flit_mod._pkt_ids.value = int(tree["ids"]["pkt"])
    _circuit_mod._conn_ids.value = int(tree["ids"]["conn"])
    net.load_state_dict(tree["net"])
    # sleep flags are scheduler metadata, not state: after a restore every
    # object must re-evaluate its quiescence from the loaded state
    sim.wake_all()


def _freeze(tree: Dict) -> Dict:
    """Deep-copy *tree* via one pickle round-trip, preserving sharing."""
    try:
        return pickle.loads(pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # unpicklable leak (closure, generator, ...)
        raise SnapshotError(f"state tree is not picklable: {exc}") from exc


def reset_id_counters() -> None:
    """Zero the module-global message/packet/connection id allocators.

    The allocators are captured into every snapshot (the ``ids``
    sub-tree above), so they are part of the canonical state hash.  A
    run that wants a *reproducible* hash must therefore start them from
    a known point — otherwise the hash encodes how many objects the
    hosting process happened to allocate before the run, and the same
    simulation hashes differently in a fresh interpreter than in a
    long-lived one (or in a fork of it).
    """
    from repro.core import circuit as _circuit_mod
    from repro.network import flit as _flit_mod

    _flit_mod._msg_ids.value = 0
    _flit_mod._pkt_ids.value = 0
    _circuit_mod._conn_ids.value = 0


# ---------------------------------------------------------------------------
# canonical state hash
# ---------------------------------------------------------------------------
def state_hash(tree: Dict) -> str:
    """Canonical SHA-256 hex digest of a captured state tree.

    Encoding rules (documented in ARCHITECTURE.md):

    * scalars encode as a type tag + value; floats by IEEE-754 bits so
      ``-0.0`` != ``0.0`` and NaN hashes stably,
    * dicts encode in insertion order (both sides of every comparison
      are pickle round-trips of same-process state, and pickle preserves
      insertion order), sets in sorted order,
    * containers and objects are memoized by identity: the first visit
      emits content, later visits emit a back-reference — so the
      object-*sharing* topology is part of the hash,
    * objects encode their class name plus all ``__slots__`` (walking
      the MRO) and ``__dict__`` attributes, attribute names sorted,
    * callables raise ``TypeError`` — a closure in a state tree is a
      serialization leak and should fail loudly.
    """
    h = hashlib.sha256()
    _encode(tree, h, {}, "$")
    return h.hexdigest()


def _encode(obj, h, memo: Dict[int, int], path: str) -> None:
    # scalars first: never memoized (small ints / interned strings share
    # identity without sharing meaning)
    if obj is None:
        h.update(b"N")
        return
    if obj is True:
        h.update(b"T")
        return
    if obj is False:
        h.update(b"F")
        return
    t = type(obj)
    if t is int:
        h.update(b"i" + str(obj).encode())
        return
    if t is float:
        h.update(b"f" + struct.pack("<d", obj))
        return
    if t is str:
        b = obj.encode("utf-8")
        h.update(b"s" + str(len(b)).encode() + b":")
        h.update(b)
        return
    if t is bytes:
        h.update(b"b" + str(len(obj)).encode() + b":")
        h.update(obj)
        return
    if isinstance(obj, Enum):
        # catches IntEnum too (its type is not int)
        h.update(b"E" + type(obj).__name__.encode() + b"." + obj.name.encode())
        return
    if isinstance(obj, np.generic):
        _encode(obj.item(), h, memo, path)
        return

    # containers / objects: memoized by identity so shared references
    # hash as back-refs and cycles terminate
    oid = id(obj)
    if oid in memo:
        h.update(b"@" + str(memo[oid]).encode())
        return
    memo[oid] = len(memo)

    if t is dict:
        h.update(b"D" + str(len(obj)).encode() + b"{")
        for k, v in obj.items():
            _encode(k, h, memo, path)
            h.update(b"=")
            _encode(v, h, memo, path + f".{k!r}")
        h.update(b"}")
        return
    if t in (list, tuple, deque):
        tag = {list: b"L", tuple: b"U", deque: b"Q"}[t]
        h.update(tag + str(len(obj)).encode() + b"[")
        for i, v in enumerate(obj):
            _encode(v, h, memo, path + f"[{i}]")
        h.update(b"]")
        return
    if t in (set, frozenset):
        h.update(b"S" + str(len(obj)).encode() + b"{")
        for v in sorted(obj, key=repr):
            _encode(v, h, memo, path)
        h.update(b"}")
        return
    if t is np.ndarray:
        h.update(b"A" + str(obj.dtype).encode() + b":"
                 + str(obj.shape).encode() + b":")
        h.update(np.ascontiguousarray(obj).tobytes())
        return
    if callable(obj) and not hasattr(obj, "__slots__") \
            and not hasattr(obj, "__dict__"):
        raise TypeError(f"unhashable callable in state tree at {path}: {obj!r}")

    # generic object: class + slots-chain + __dict__, names sorted
    names: List[str] = []
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__") and hasattr(obj, name):
                names.append(name)
    d = getattr(obj, "__dict__", None)
    if d is not None:
        names.extend(d.keys())
    if not names and callable(obj):
        raise TypeError(f"unhashable callable in state tree at {path}: {obj!r}")
    h.update(b"O" + type(obj).__name__.encode() + b"(")
    for name in sorted(set(names)):
        value = getattr(obj, name)
        if callable(value) and not isinstance(value, type):
            raise TypeError(
                f"callable attribute in state tree at {path}.{name}: "
                f"{value!r} — exclude it from state_dict()")
        h.update(name.encode() + b"=")
        _encode(value, h, memo, path + f".{name}")
    h.update(b")")


# ---------------------------------------------------------------------------
# on-disk format
# ---------------------------------------------------------------------------
def save_snapshot(path: str, tree: Dict, cycle: int,
                  meta: Optional[Dict] = None) -> str:
    """Atomically write *tree* to *path*.

    Layout: ``MAGIC`` + one JSON header line (version, cycle, payload
    SHA-256 + byte count, caller metadata) + the pickle payload.  The
    write goes to a tmp file in the same directory, is flushed + fsynced
    and then renamed over *path*, so a crash mid-write never leaves a
    half-written file under the final name.
    """
    payload = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": SNAPSHOT_VERSION,
        "cycle": int(cycle),
        "sha256": sha256_bytes(payload),
        "payload_bytes": len(payload),
        "meta": meta or {},
    }
    blob = MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    atomic_write_bytes(path, blob)
    return path


def load_snapshot(path: str) -> "LoadedSnapshot":
    """Read and validate a snapshot file.

    Raises :class:`SnapshotCorruptError` on bad magic, unparseable
    header, truncated payload or checksum mismatch.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotCorruptError(f"{path}: unreadable: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise SnapshotCorruptError(f"{path}: bad magic")
    rest = blob[len(MAGIC):]
    nl = rest.find(b"\n")
    if nl < 0:
        raise SnapshotCorruptError(f"{path}: truncated header")
    try:
        header = json.loads(rest[:nl])
    except ValueError as exc:
        raise SnapshotCorruptError(f"{path}: bad header: {exc}") from exc
    if header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"{path}: snapshot version {header.get('version')!r} "
            f"!= {SNAPSHOT_VERSION}")
    payload = rest[nl + 1:]
    if len(payload) != header.get("payload_bytes"):
        raise SnapshotCorruptError(
            f"{path}: payload truncated ({len(payload)} bytes, header "
            f"says {header.get('payload_bytes')})")
    if sha256_bytes(payload) != header.get("sha256"):
        raise SnapshotCorruptError(f"{path}: checksum mismatch")
    try:
        tree = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotCorruptError(f"{path}: unpicklable payload: {exc}") from exc
    return LoadedSnapshot(path=path, header=header, tree=tree)


class LoadedSnapshot(NamedTuple):
    path: str
    header: Dict
    tree: Dict


class CheckpointManager:
    """Rotating on-disk checkpoints with corrupt-file fallback.

    ``save`` writes ``ckpt-{cycle:012d}.rsnap`` atomically and prunes to
    the newest *keep* files; ``load_latest`` tries snapshots newest
    first, records any corrupt ones in :attr:`errors` and returns the
    first that validates (or None when none do).
    """

    def __init__(self, directory: str, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = directory
        self.keep = keep
        self.errors: List[str] = []
        os.makedirs(directory, exist_ok=True)

    def _path(self, cycle: int) -> str:
        return os.path.join(self.directory, f"ckpt-{cycle:012d}.rsnap")

    def list_snapshots(self) -> List[str]:
        """Snapshot paths, oldest first (names sort by cycle)."""
        names = sorted(n for n in os.listdir(self.directory)
                       if n.startswith("ckpt-") and n.endswith(".rsnap"))
        return [os.path.join(self.directory, n) for n in names]

    def save(self, tree: Dict, cycle: int,
             meta: Optional[Dict] = None) -> str:
        path = save_snapshot(self._path(cycle), tree, cycle, meta)
        self._prune()
        return path

    def _prune(self) -> None:
        snaps = self.list_snapshots()
        for path in snaps[:-self.keep]:
            try:
                os.remove(path)
            except OSError:
                pass

    def load_latest(self) -> Optional[LoadedSnapshot]:
        for path in reversed(self.list_snapshots()):
            try:
                return load_snapshot(path)
            except SnapshotCorruptError as exc:
                self.errors.append(str(exc))
        return None

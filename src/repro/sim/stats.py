"""Statistics primitives used across the simulator.

All classes are plain accumulators with O(1) update cost so they can be
called from per-cycle hot loops.  Percentile queries on
:class:`LatencySample` retain the raw samples (network latencies are the
headline metric of the paper, so we keep full fidelity there).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """Named integer event counters backed by a dict.

    >>> c = Counter()
    >>> c.inc("buffer_write"); c.inc("buffer_write", 2)
    >>> c["buffer_write"]
    3
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def items(self):
        return self._counts.items()

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def merge(self, other: "Counter") -> None:
        for k, v in other._counts.items():
            self.inc(k, v)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({body})"


class RunningMean:
    """Streaming mean/variance (Welford) without storing samples."""

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class LatencySample:
    """Retains raw latency samples for mean/percentile reporting.

    Percentile queries sort lazily and cache the sorted array until the
    next append, so reporting several percentiles of the same window
    (avg/p50/p99/max in every sweep row) sorts once instead of once per
    query.  The cache is derived state: it is dropped from pickles (and
    therefore from ``state_dict`` hashes — whether a percentile was
    queried must never change a snapshot) and rebuilt on demand.
    """

    __slots__ = ("samples", "_sorted")

    def __init__(self) -> None:
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, x: float) -> None:
        self.samples.append(x)
        self._sorted = None

    def extend(self, xs: Iterable[float]) -> None:
        self.samples.extend(xs)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else float("nan")

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100].

        Zero-sample runs (e.g. a point that livelocks before any flit is
        measured) yield NaN rather than raising, so sweep reports can
        still be rendered.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile p must be in [0, 100], got {p!r}")
        if not self.samples:
            return float("nan")
        xs = self._sorted
        if xs is None:
            xs = self._sorted = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(xs)))
        return xs[rank - 1]

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else float("nan")

    def __getstate__(self):
        return self.samples

    def __setstate__(self, samples) -> None:
        self.samples = samples
        self._sorted = None


class Histogram:
    """Fixed-width bucket histogram for bounded integer metrics."""

    __slots__ = ("bucket_width", "buckets", "overflow", "n")

    def __init__(self, bucket_width: int = 1, num_buckets: int = 64) -> None:
        if bucket_width < 1 or num_buckets < 1:
            raise ValueError("bucket_width and num_buckets must be >= 1")
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.overflow = 0
        self.n = 0

    def add(self, x: float) -> None:
        idx = int(x // self.bucket_width)
        if 0 <= idx < len(self.buckets):
            self.buckets[idx] += 1
        else:
            self.overflow += 1
        self.n += 1

    def as_list(self) -> List[int]:
        return list(self.buckets)


class TimeWeighted:
    """Time-weighted integral of a piecewise-constant value.

    Used for leakage-energy accounting of power-gated structures: set the
    number of powered VCs / active slot-table entries whenever it changes
    and read ``integral`` (value x cycles) after :meth:`finalize`.
    """

    __slots__ = ("value", "_last_cycle", "integral")

    def __init__(self, value: float = 0.0, cycle: int = 0) -> None:
        self.value = value
        self._last_cycle = cycle
        self.integral = 0.0

    def set(self, value: float, cycle: int) -> None:
        if cycle < self._last_cycle:
            raise ValueError("time went backwards")
        self.integral += self.value * (cycle - self._last_cycle)
        self.value = value
        self._last_cycle = cycle

    def finalize(self, cycle: int) -> float:
        """Integrate up to *cycle* and return the integral."""
        self.set(self.value, cycle)
        return self.integral


class ConservationLedger:
    """Monotonic flit ledger for the conservation audit.

    Unlike the per-component :class:`Counter` objects, this ledger is
    never reset by a measurement-window restart: the invariant *every
    injected flit is eventually ejected, consumed in a router, dropped
    with a recorded cause, or still in the network* must hold over the
    whole run.  All routers and NIs of one network share one instance.
    """

    __slots__ = ("injected", "ejected", "consumed", "dropped")

    def __init__(self) -> None:
        self.injected = 0    #: flits that entered a router from an NI
        self.ejected = 0     #: flits handed back to an NI
        self.consumed = 0    #: config flits consumed inside a router
        self.dropped: Dict[str, int] = {}   #: cause -> flits dropped

    def drop(self, cause: str, amount: int = 1) -> None:
        self.dropped[cause] = self.dropped.get(cause, 0) + amount

    @property
    def dropped_total(self) -> int:
        return sum(self.dropped.values())

    @property
    def progress(self) -> int:
        """Monotonic resolution count (the watchdog's liveness metric)."""
        return self.ejected + self.consumed + self.dropped_total

    def imbalance(self, in_network: int) -> int:
        """Flits unaccounted for given *in_network* flits still in
        routers/links.  Zero iff the conservation invariant holds."""
        return self.injected - self.progress - in_network

    def as_dict(self) -> Dict[str, float]:
        return {"injected": self.injected, "ejected": self.ejected,
                "consumed": self.consumed, "dropped": self.dropped_total,
                **{f"dropped_{k}": v for k, v in self.dropped.items()}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConservationLedger(inj={self.injected} ej={self.ejected}"
                f" cons={self.consumed} drop={self.dropped})")


class WindowedRate:
    """Rate of events over a sliding window of whole epochs.

    Used by the VC power-gating controller (utilisation per epoch) and the
    connection manager (per-destination message frequency).
    """

    __slots__ = ("epoch_len", "_events", "_epoch_start", "last_rate")

    def __init__(self, epoch_len: int) -> None:
        if epoch_len < 1:
            raise ValueError("epoch_len must be >= 1")
        self.epoch_len = epoch_len
        self._events = 0.0
        self._epoch_start = 0
        self.last_rate = 0.0

    def record(self, amount: float = 1.0) -> None:
        self._events += amount

    def maybe_rollover(self, cycle: int) -> bool:
        """Close the epoch if *cycle* passed its end.  Returns True on close."""
        if cycle - self._epoch_start >= self.epoch_len:
            self.last_rate = self._events / max(1, cycle - self._epoch_start)
            self._events = 0.0
            self._epoch_start = cycle
            return True
        return False

"""Struct-of-arrays batch engine (``Simulator(engine="batch")``).

The batch engine layers two mechanisms on top of the activity-tracked
fast scheduler:

* :mod:`repro.sim.batch.layout` compiles a built network into flat
  NumPy arrays — per-VC credits, buffer occupancies, link pipe
  registers, slot-table/DLT ownership, CS reservations — so whole-
  network predicates (is every router's datapath empty?) are single
  vectorized reductions instead of per-object method dispatch.
* :mod:`repro.sim.batch.engine` uses those predicates to *fast-forward*
  provably quiescent stretches: when every component is either asleep
  (its skipped phases are no-ops by the fast-engine contract) or doing
  closed-form always-on bookkeeping (gating utilisation sampling), the
  cycle counter jumps to the next event and the k skipped cycles are
  applied as O(1) array updates that are bit-identical to stepping.
* :mod:`repro.sim.batch.replica` steps N independently-seeded copies of
  one workload through a single shared loop (batched replicas), with
  per-replica id-allocator banking so every replica's trajectory is
  bit-identical to a solo run.

Correctness is carried by the three-way differential harness
(:func:`repro.harness.verify.verify_equivalence` with
``engines=("legacy", "fast", "batch")``), not by construction alone.
"""

from repro.sim.batch.engine import BatchEngine
from repro.sim.batch.layout import CompiledLayout, compile_layout
from repro.sim.batch.replica import ReplicaSet

__all__ = ["BatchEngine", "CompiledLayout", "compile_layout",
           "ReplicaSet"]

"""Vectorized active-window datapath for the batch engine.

The quiescence fast-forward (``engine.py``) makes *idle* stretches
nearly free, but every loaded cycle still runs the per-flit Python
pipeline.  :class:`VectorStepper` is the complementary fast lane: while
the network is *busy*, it steps whole windows of cycles with the
router datapath resolved as whole-network NumPy array operations over
the ``m_*`` mirror in :class:`~repro.sim.batch.layout.CompiledLayout`.

Bit-exactness contract
----------------------
The stepper must be indistinguishable from the legacy engine at every
cycle boundary — same winner selection, same credit timing, same
counter values (including dict insertion order), same RNG draw order.
It gets there by being *object-authoritative*:

* The objects remain the single source of truth.  Every mutation a
  vectorized phase decides on is applied as the exact scalar effect
  sequence the legacy code would run (same counter keys in the same
  order, same float accumulations, same wake calls); the mirror arrays
  are dual-written — scalar effects eagerly, mirror updates batched
  into one fancy-indexed write per array per phase — and only ever
  used to *find* work, never to hold state the objects don't.  The
  batching is exact because each phase arbitrates off a snapshot taken
  at its start and nothing reads the mirror again until the batch has
  been applied.
* Whole phases that cannot be vectorized exactly run object-side: NI
  ``inject`` and non-router ``control`` execute through the fast
  engine's awake lists, so endpoint RNG draws and manager decisions
  happen in the canonical registration order.
* Router ``control`` below the next gating epoch is a pure early
  return, and windows never cross an epoch boundary or overlap a VC
  drain — so skipping it is exact.

Vectorized per cycle (the PS pipeline of Section II-D):

* *deliver* via an event schedule: every in-flight (pipe, due) pair is
  registered in a dict keyed by due cycle, so delivery is O(arrivals),
  not O(routers).
* *VA*: eligibility (head flit present+ready, no output VC held) is a
  single boolean reduction; the few eligible heads then run the exact
  scalar allocation loop in legacy order (row-major == port-major).
* *SA/ST*: resolved sequentially over the five outports — preserving
  the legacy arbitration order and the crossbar-input constraint
  (``used_in``) — but vectorized over routers: per outport, the
  candidate masks, rotated round-robin keys and argmin winners for
  every router come out of a handful of array ops; winner effects are
  applied scalar in legacy order.

Spill rules (the opportunistic part): a router leaves the vector lane
for any cycle in which something irregular touches it — a circuit
flit or CONFIG packet arrives, a fault-killed packet shows up, a
circuit injection is scheduled, its config VC is busy, or its crossbar
flags are dirty.  Spilled routers run
their ordinary ``transfer`` and are re-derived into the mirror
afterwards.  Whole-window aborts: fault activation (``disable_sleep``)
and slot-table resizes are watched per cycle via the slot clock's
``(generation, active)`` key; epochs bound the window at entry.

Unsupported configurations (SDM routers, overridden NI pumps, tracing,
live faults, unknown control-phase objects) are detected at compile or
entry time and simply keep the stepper disabled — the batch engine
then behaves exactly as before this optimisation.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Set

import numpy as np

from repro.network.flit import FlitKind, MessageClass
from repro.network.interface import NetworkInterface
from repro.network.router import PacketRouter
from repro.network.routing import xy_outport
from repro.network.topology import LOCAL, NUM_PORTS
from repro.obs.trace import NULL_RECORDER
from repro.sim.batch.layout import NO_HEAD

_EMPTY_SET: frozenset = frozenset()


class VectorStepper:
    """Opportunistic vectorized window executor (see module doc)."""

    #: cycles between entry probes after a decline (amortises the
    #: O(routers) busy scan)
    PROBE_INTERVAL = 16
    #: minimum cycles to the window horizon worth paying entry cost for
    MIN_WINDOW = 16
    #: consecutive router-side-idle cycles before handing control back
    #: to the engine (whose quiescence fast-forward takes over)
    EXIT_IDLE_STREAK = 8
    #: probe back-off after an idle exit (avoids enter/exit thrash at
    #: the tail of a drained burst)
    EXIT_COOLDOWN = 32

    def __init__(self, engine, sim) -> None:
        self.engine = engine
        self.sim = sim
        self._net = None
        self._layout = None
        self._ok = False
        self.unsupported_reason: Optional[str] = "uncompiled"
        self._routers: List[PacketRouter] = []
        self._router_index: Dict[int, int] = {}
        self._interfaces: List[NetworkInterface] = []
        self._g_routers: List = []          # [(ri, router)] with gating
        self._hybrid = False
        self._clock = None
        self._stealing = False
        self._min_hot = 1
        self._g_enter = False
        self._cooldown = 0
        # static compiled arrays ------------------------------------------
        self._ones = None       # (R,) all-True row mask template
        self._rb3 = None        # (R,1,1) flat row base: ri * P * V
        # per-window state ------------------------------------------------
        self._cycle = 0
        self._wend = 0
        self._gen_key = None
        self._sched: Dict[int, list] = {}
        self._irr: Set[int] = set()
        self._in_entry: List[list] = []
        self._cin_entry: List[list] = []
        self._out_entry: List[list] = []
        self._credit_entry: List[list] = []
        self._ni_entry: Dict[int, tuple] = {}
        self._probe_pipes: tuple = ()
        self._w_inject: List = []
        self._w_control: List = []
        self._w_sleepables: List = []
        self._g_vmask = None            # (R,P,V) bool, False off gating rows
        self._g_totals: List[int] = []  # per-ri sample denominator
        self._g_deficit: Dict[int, int] = {}
        # flat views over the mirror arrays (set at window entry)
        self._f_hr = self._f_hk = self._f_free = None
        self._f_oip = self._f_oiv = self._f_cred = self._f_sap = None
        #: introspection counters (phase breakdown + tests)
        self.windows = 0
        self.window_declines = 0
        self.vector_cycles = 0
        self.spill_router_cycles = 0
        self.t_window = 0.0
        self.t_spill = 0.0

    @property
    def supported(self) -> bool:
        """Whether the vector lane compiled for this network (False
        also when disabled or below the profitability size gate)."""
        return self._ok

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, net, layout) -> None:
        """Classify the network/simulator; sets :attr:`unsupported_reason`
        (None when the vector lane is available)."""
        self._ok = False
        self._net = net
        self._layout = layout
        mode = os.environ.get("REPRO_BATCH_VECTOR", "auto")
        if mode == "0":
            self.unsupported_reason = "disabled by REPRO_BATCH_VECTOR=0"
            return
        if net is None or layout is None:
            self.unsupported_reason = "no compiled network"
            return
        from repro.core.hybrid_router import HybridRouter
        routers = list(net.routers)
        if not routers:
            self.unsupported_reason = "no routers"
            return
        hybrid = isinstance(routers[0], HybridRouter)
        want = HybridRouter if hybrid else PacketRouter
        for r in routers:
            # exact-type check: subclasses (e.g. the SDM router) override
            # datapath internals the vector lane mirrors
            if type(r) is not want:
                self.unsupported_reason = (
                    f"unsupported router type {type(r).__name__}")
                return
        # the vectorized round-robin key assumes the uniform geometry the
        # builder produces (mod == NUM_PORTS * total_vcs == P * V)
        if layout.n_ports != NUM_PORTS or any(
                r.total_vcs != layout.n_vcs for r in routers):
            self.unsupported_reason = "non-uniform router geometry"
            return
        if hybrid:
            clock = routers[0].clock
            for r in routers:
                if r.clock is not clock:
                    self.unsupported_reason = "routers on different slot clocks"
                    return
            self._clock = clock
            self._stealing = bool(routers[0].cfg.circuit.slot_stealing)
        else:
            self._clock = None
            self._stealing = False
        self._hybrid = hybrid

        sim = self.sim
        rset = {id(r) for r in routers}
        pl = sim._phase_lists
        for obj in pl["deliver"]:
            if id(obj) not in rset:
                self.unsupported_reason = (
                    f"non-router deliver object {type(obj).__name__}")
                return
        for obj in pl["transfer"]:
            if id(obj) not in rset:
                self.unsupported_reason = (
                    f"non-router transfer object {type(obj).__name__}")
                return
        iset = {id(ni) for ni in net.interfaces}
        for obj in pl["inject"]:
            if not isinstance(obj, NetworkInterface) or id(obj) not in iset:
                self.unsupported_reason = (
                    f"unsupported inject object {type(obj).__name__}")
                return
            if (type(obj)._pump_injection
                    is not NetworkInterface._pump_injection
                    or type(obj).inject is not NetworkInterface.inject):
                self.unsupported_reason = (
                    f"{type(obj).__name__} overrides the injection pump")
                return
        from repro.core.circuit import ConnectionManager
        from repro.core.slot_sizing import SlotSizeController
        from repro.obs.metrics import MetricsSampler
        from repro.sim.kernel import Watchdog
        allowed = (PacketRouter, ConnectionManager, SlotSizeController,
                   MetricsSampler, Watchdog)
        for obj in pl["control"]:
            if not isinstance(obj, allowed):
                self.unsupported_reason = (
                    f"unmodelled control object {type(obj).__name__}")
                return

        self._routers = routers
        self._router_index = {id(r): ri for ri, r in enumerate(routers)}
        self._interfaces = list(net.interfaces)
        self._g_routers = [(ri, r) for ri, r in enumerate(routers)
                           if r.gating is not None]
        n = len(routers)
        # Profitability gate: the fixed per-cycle cost of the array
        # pass (a few dozen NumPy dispatches) must undercut the Python
        # work it replaces.  Measured crossover: gating schemes (every
        # router samples utilisation every cycle) win from ~64 routers;
        # non-gating schemes only carry enough vectorizable scan work
        # from ~256 routers.  ``REPRO_BATCH_VECTOR=force`` bypasses the
        # size gate (the differential tests use it so small meshes
        # exercise the lane); correctness is identical either way.
        if mode != "force":
            gating_net = bool(self._g_routers)
            if (gating_net and n < 64) or (not gating_net and n < 256):
                self.unsupported_reason = (
                    "below profitable network size "
                    "(REPRO_BATCH_VECTOR=force overrides)")
                return
        self._min_hot = max(3, n // 8)
        # a gating-heavy network pays O(routers) sampling every cycle
        # even when almost idle — the vector lane wins there with any
        # traffic at all, so entry is gated on a single hot router
        self._g_enter = len(self._g_routers) >= self._min_hot
        self._ones = np.ones(n, dtype=bool)
        self._rb3 = (np.arange(n, dtype=np.int64)
                     * (NUM_PORTS * layout.n_vcs))[:, None, None]
        self._probe_pipes = ()
        self._ok = True
        self.unsupported_reason = None

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------
    def maybe_run_window(self, end: int) -> int:
        """Open a vectorized window if profitable and safe; returns the
        number of cycles executed (0 when declined)."""
        if not self._ok or self._cooldown > 0:
            if self._cooldown > 0:
                self._cooldown -= 1
            return 0
        sim = self.sim
        if not sim._sleep_enabled or sim.obs is not NULL_RECORDER:
            return 0
        n_hot = 0
        for r in self._routers:
            if r._buffered_flits:
                n_hot += 1
        if n_hot == 0 or (n_hot < self._min_hot and not self._g_enter):
            self._cooldown = self.PROBE_INTERVAL - 1
            return 0
        t0 = perf_counter()
        if not self._enter(end):
            self.window_declines += 1
            self._cooldown = self.PROBE_INTERVAL - 1
            self.t_window += perf_counter() - t0
            return 0
        self.windows += 1
        executed, idle_exit = self._run_window()
        self.t_window += perf_counter() - t0
        if idle_exit:
            self._cooldown = self.EXIT_COOLDOWN
        return executed

    def _enter(self, end: int) -> bool:
        """Dynamic safety checks + full mirror derivation."""
        sim = self.sim
        cycle = sim.cycle
        lh = self._routers[0].link_health
        if lh is not None and lh.any_faults:
            return False
        wend = end
        for _, r in self._g_routers:
            g = r.gating
            if g._draining >= 0:
                return False
            if g._next_epoch < wend:
                wend = g._next_epoch
        if wend - cycle < self.MIN_WINDOW:
            return False
        for ctrl in self.engine._slot_ctrls:
            if ctrl._resize_pending:
                return False
        layout = self._layout
        layout.ensure_mirror()
        if self._hybrid:
            clock = self._clock
            self._gen_key = (clock.generation, clock.active)
            layout.derive_reserved(clock)
        self._ensure_entries()
        irr = self._irr
        sched = self._sched
        irr.clear()
        sched.clear()
        in_entry = self._in_entry
        cin_entry = self._cin_entry
        for ri, r in enumerate(self._routers):
            if r.obs.enabled or r.stalled_until > cycle:
                return False
            layout.derive_router(ri, r)
            if self._router_irregular(r):
                irr.add(ri)
            for p in range(NUM_PORTS):
                link = r.in_links[p]
                if link is not None:
                    if link.faulty:
                        return False
                    if link._pipe:
                        ent = in_entry[ri][p]
                        for due, _ in link._pipe:
                            sched.setdefault(due, []).append(ent)
                clink = r.credit_in[p]
                if clink is not None and clink._pipe:
                    ent = cin_entry[ri][p]
                    for due, _ in clink._pipe:
                        sched.setdefault(due, []).append(ent)
                ol = r.out_links[p]
                if ol is not None and ol.faulty:
                    return False
        if self._g_routers:
            self._derive_gating_arrays()
        # flat views for the bulk mirror updates (the m_* arrays are
        # allocated once and written in place, so views stay valid)
        self._f_hr = layout.m_head_ready.reshape(-1)
        self._f_hk = layout.m_head_ok.reshape(-1)
        self._f_free = layout.m_free.reshape(-1)
        self._f_oip = layout.m_own_ip.reshape(-1)
        self._f_oiv = layout.m_own_iv.reshape(-1)
        self._f_cred = layout.m_credits.reshape(-1)
        self._f_sap = layout.m_saptr.reshape(-1)
        self._wend = wend
        self._rebuild_lists()
        return True

    def _ensure_entries(self) -> None:
        """(Re)build the pipe -> consumer entry maps.

        Pipe deques are replaced wholesale by snapshot restores, so a
        cached map is only valid while the probe pipes are identical."""
        if self._probe_pipes:
            ok = True
            for link, pipe in self._probe_pipes:
                if link._pipe is not pipe:
                    ok = False
                    break
            if ok:
                return
        routers = self._routers
        pipe_map: Dict[int, tuple] = {}
        in_entry: List[list] = []
        cin_entry: List[list] = []
        probes = []
        for ri, r in enumerate(routers):
            row_f: list = []
            row_c: list = []
            for p in range(NUM_PORTS):
                il = r.in_links[p]
                if il is None:
                    row_f.append(None)
                else:
                    ent = (il._pipe, ri, p, False)
                    row_f.append(ent)
                    pipe_map[id(il._pipe)] = ent
                    if not probes:
                        probes.append((il, il._pipe))
                ci = r.credit_in[p]
                if ci is None:
                    row_c.append(None)
                else:
                    ent = (ci._pipe, ri, p, True)
                    row_c.append(ent)
                    pipe_map[id(ci._pipe)] = ent
                    if len(probes) < 2:
                        probes.append((ci, ci._pipe))
            in_entry.append(row_f)
            cin_entry.append(row_c)
        out_entry: List[list] = []
        credit_entry: List[list] = []
        for r in routers:
            row_o: list = []
            row_c = []
            for p in range(NUM_PORTS):
                ol = r.out_links[p]
                row_o.append(None if ol is None
                             else pipe_map.get(id(ol._pipe)))
                cl = r.credit_out[p]
                row_c.append(None if cl is None
                             else pipe_map.get(id(cl._pipe)))
            out_entry.append(row_o)
            credit_entry.append(row_c)
        ni_entry: Dict[int, tuple] = {}
        for ni in self._interfaces:
            il = ni.inject_link
            ent = None if il is None else pipe_map.get(id(il._pipe))
            ni_entry[id(ni)] = (ent, 0 if il is None else il.latency)
        self._in_entry = in_entry
        self._cin_entry = cin_entry
        self._out_entry = out_entry
        self._credit_entry = credit_entry
        self._ni_entry = ni_entry
        self._probe_pipes = tuple(probes)

    def _derive_gating_arrays(self) -> None:
        """Window-static sampling masks.  ``active_vcs`` only changes at
        gating-epoch boundaries, which bound the window, so one mask per
        window is exact."""
        layout = self._layout
        vmask = np.zeros((len(self._routers), NUM_PORTS, layout.n_vcs),
                         dtype=bool)
        totals = [0] * len(self._routers)
        for ri, r in self._g_routers:
            av = r.active_vcs
            vmask[ri, :, :av] = True
            totals[ri] = av * NUM_PORTS
        self._g_vmask = vmask
        self._g_totals = totals
        self._g_deficit.clear()

    def _router_irregular(self, r) -> bool:
        """Persistent conditions that keep a router object-stepped."""
        if self._hybrid and (r._cs_inject or r._cs_flags_dirty):
            return True
        cv = r.config_vc
        for port in r.in_ports:
            if port.vcs[cv].busy:
                return True
        for staged in r._arrivals:
            if staged:
                return True
        return False

    def _rebuild_lists(self) -> None:
        """Mirror of the fast engine's awake-list rebuild for the phases
        the window runs object-side (router control is skipped: below
        the next epoch it is a pure early return)."""
        sim = self.sim
        sim._rebuild_awake_lists()
        self._w_inject = sim._awake_inject
        self._w_control = [o.control for o in sim._phase_lists["control"]
                           if o._sim_in_lists
                           and not isinstance(o, PacketRouter)]
        self._w_sleepables = sim._awake_sleepables

    # ------------------------------------------------------------------
    # hooks (installed for the duration of one window)
    # ------------------------------------------------------------------
    def _ni_notify(self, ni) -> None:
        """Called by the NI injection pump right after the inlined
        inject-link send: registers the delivery in the event schedule."""
        ent, lat = self._ni_entry[id(ni)]
        if ent is not None:
            sched = self._sched
            due = self._cycle + lat
            lst = sched.get(due)
            if lst is None:
                sched[due] = [ent]
            else:
                lst.append(ent)

    def _router_notify(self, r) -> None:
        """Called by ``schedule_cs_injection``: the router now holds a
        pending circuit injection and must be object-stepped."""
        self._irr.add(self._router_index[id(r)])

    # ------------------------------------------------------------------
    # the window loop
    # ------------------------------------------------------------------
    def _run_window(self):
        sim = self.sim
        layout = self._layout
        routers = self._routers
        sched = self._sched
        irr = self._irr
        hybrid = self._hybrid
        clock = self._clock
        wend = self._wend
        gating = bool(self._g_routers)
        ones = self._ones
        n_vcs = layout.n_vcs
        c = sim.cycle
        executed = 0
        idle_streak = 0
        idle_exit = False
        arrived: Set[int] = set()
        cyc_irr: Set[int] = set()
        for ni in self._interfaces:
            ni._vector_notify = self._ni_notify
        if hybrid:
            notify = self._router_notify
            for r in routers:
                r._vector_notify = notify
        try:
            while c < wend:
                if not sim._sleep_enabled:
                    break       # fault activated mid-window
                if hybrid and (clock.generation,
                               clock.active) != self._gen_key:
                    self._gen_key = (clock.generation, clock.active)
                    layout.derive_reserved(clock)
                if sim._wake_pending:
                    self._rebuild_lists()
                self._cycle = c
                # deliver ---------------------------------------------
                entries = sched.pop(c, None)
                if entries:
                    ic: list = []   # credit arrivals, bulk-mirrored
                    for pipe, ri, port, is_credit in entries:
                        if not pipe or pipe[0][0] > c:
                            continue    # duplicate entry already drained
                        r = routers[ri]
                        if is_credit:
                            crow = r.credits[port]
                            fbase = (ri * NUM_PORTS + port) * n_vcs
                            while pipe and pipe[0][0] <= c:
                                v = pipe.popleft()[1]
                                crow[v] += 1
                                ic.append(fbase + v)
                            continue
                        staged = r._arrivals[port]
                        while pipe and pipe[0][0] <= c:
                            f = pipe.popleft()[1]
                            staged.append(f)
                            if (f.is_circuit or f.packet.dropped
                                    or f.packet.mclass == MessageClass.CONFIG):
                                cyc_irr.add(ri)
                        arrived.add(ri)
                    if ic:
                        # one credit per (router, port, vc) per cycle
                        # (one SA win per downstream inport), so the
                        # fancy in-place add never sees duplicates
                        self._f_cred[ic] += 1
                # transfer: spilled routers (object-side) -------------
                if irr or cyc_irr:
                    spilled = sorted(irr | cyc_irr) if cyc_irr \
                        else sorted(irr)
                    t0 = perf_counter()
                    deficit = self._g_deficit
                    for ri in spilled:
                        r = routers[ri]
                        r.transfer(c)
                        self._capture_sends(ri, r, c)
                        if self._router_irregular(r):
                            # still irregular: its mirror rows stay
                            # stale, which is safe — they are masked
                            # out of VA/SA and the gating sampler, and
                            # ``irr`` non-empty already blocks the
                            # idle exit — so the O(P*V) re-derive is
                            # deferred to the return transition
                            irr.add(ri)
                        else:
                            layout.derive_router(ri, r)
                            irr.discard(ri)
                        if gating and r.gating is not None:
                            # sampled itself inside transfer; subtract
                            # from the deferred bulk sample count
                            deficit[ri] = deficit.get(ri, 0) + 1
                        arrived.discard(ri)
                    self.spill_router_cycles += len(spilled)
                    self.t_spill += perf_counter() - t0
                    spilled_set: frozenset = frozenset(spilled)
                    cyc_irr.clear()
                    mask = ones.copy()
                    mask[spilled] = False
                else:
                    spilled_set = _EMPTY_SET
                    mask = None
                # transfer: regular arrivals + vector VA/SA -----------
                if arrived:
                    hu_i: list = []
                    hu_r: list = []
                    hu_k: list = []
                    for ri in sorted(arrived):
                        self._stage_arrivals(routers[ri], ri, c,
                                             hu_i, hu_r, hu_k)
                    arrived.clear()
                    if hu_i:
                        self._f_hr[hu_i] = hu_r
                        self._f_hk[hu_i] = hu_k
                self._vector_va(mask, c)
                self._vector_sa(mask, c)
                if gating:
                    self._sample_gating(spilled_set)
                # inject + control (object-side, canonical order) -----
                for method in self._w_inject:
                    method(c)
                for method in self._w_control:
                    method(c)
                # sleep scan (same cadence as the fast engine) --------
                if c & 3 == 3:
                    slept = False
                    for obj in self._w_sleepables:
                        if obj._sim_awake and obj.sim_idle(c):
                            obj._sim_awake = False
                            obj._sim_in_lists = False
                            slept = True
                    if slept:
                        self._rebuild_lists()
                c += 1
                sim.cycle = c
                executed += 1
                if sched or irr \
                        or (layout.m_head_ready != NO_HEAD).any():
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_streak >= self.EXIT_IDLE_STREAK:
                        idle_exit = True
                        break
        finally:
            for ni in self._interfaces:
                ni._vector_notify = None
            if hybrid:
                for r in routers:
                    r._vector_notify = None
            if gating:
                # the bulk sampler defers the unconditional
                # ``_busy_samples += 1`` (one per vectorized cycle) to
                # window exit; nothing reads it mid-window (the epoch
                # pop happens at/after ``wend``, never inside)
                deficit = self._g_deficit
                for ri, r in self._g_routers:
                    r._busy_samples += executed - deficit.get(ri, 0)
                deficit.clear()
            sched.clear()
            # the engine's fast path owns the awake lists again
            sim._wake_pending = True
            self.vector_cycles += executed
        return executed, idle_exit

    # ------------------------------------------------------------------
    # scalar effect sequences (bit-exact legacy replicas)
    # ------------------------------------------------------------------
    def _stage_arrivals(self, r, ri: int, c: int,
                        hu_i: list, hu_r: list, hu_k: list) -> None:
        """Regular-router arrival processing: the exact per-flit effect
        sequence of ``PacketRouter._buffer_write`` (base) or the inlined
        demux in ``HybridRouter.transfer`` (hybrid, all-PS arrivals).
        New-head mirror updates are appended to the ``hu_*`` bulk lists
        (applied by the caller before the vectorized VA)."""
        n_vcs = self._layout.n_vcs
        counts = r.counters._counts
        in_ports = r.in_ports
        port_buffered = r._port_buffered
        pipe_lat = r.rcfg.ps_pipeline_latency
        hybrid = self._hybrid
        head_kind = FlitKind.HEAD
        head_tail_kind = FlitKind.HEAD_TAIL
        base = ri * NUM_PORTS * n_vcs
        for inport in range(NUM_PORTS):
            staged = r._arrivals[inport]
            if not staged:
                continue
            for flit in staged:
                if hybrid:
                    counts["slot_read"] = counts.get("slot_read", 0) + 1
                v = flit.vc
                vcobj = in_ports[inport].vcs[v]
                fifo = vcobj.fifo
                if len(fifo) >= vcobj.depth:
                    raise OverflowError(
                        "VC buffer overflow: credit protocol violated")
                fifo.append(flit)
                flit.ready_cycle = c + pipe_lat
                r._buffered_flits += 1
                port_buffered[inport] += 1
                counts["buffer_write"] = counts.get("buffer_write", 0) + 1
                if len(fifo) == 1:
                    hu_i.append(base + inport * n_vcs + v)
                    hu_r.append(flit.ready_cycle)
                    kind = flit.kind
                    hu_k.append(kind is head_kind
                                or kind is head_tail_kind)
            staged.clear()

    def _vector_va(self, mask, c: int) -> None:
        """Route compute + VC allocation across the whole network."""
        layout = self._layout
        elig = layout.m_head_ok & layout.m_free & (layout.m_head_ready <= c)
        if mask is not None:
            elig &= mask[:, None, None]
        if not elig.any():
            return
        routers = self._routers
        va = self._va_candidate
        n_vcs = layout.n_vcs
        pv = NUM_PORTS * n_vcs
        oi: list = []   # allocated (router, outport, ovc) flat indices
        ips: list = []
        ivs: list = []
        fi: list = []   # input-VC flat indices that became bound
        # flat row-major order == the legacy (router, inport, invc) scan
        for f in np.flatnonzero(elig.ravel()).tolist():
            ri, rem = divmod(f, pv)
            p, v = divmod(rem, n_vcs)
            va(routers[ri], ri, p, v, c, f, oi, ips, ivs, fi)
        if oi:
            self._f_oip[oi] = ips
            self._f_oiv[oi] = ivs
            self._f_free[fi] = False

    def _va_candidate(self, r, ri: int, inport: int, invc: int, c: int,
                      f: int, oi: list, ips: list, ivs: list,
                      fi: list) -> None:
        vcobj = r.in_ports[inport].vcs[invc]
        out = vcobj.route_outport
        if out is None:
            # non-CONFIG, fault-free: the memoised X-Y route (the vector
            # lane never sees CONFIG heads — the config VC spills)
            dst = vcobj.fifo[0].packet.dst
            out = r._xy_cache[dst]
            if out is None:
                out = r._xy_cache[dst] = xy_outport(r.mesh, r.node, dst)
            vcobj.route_outport = out
        owners = r.out_vc_owner[out]
        limit = r._downstream_active_vcs(out)
        ovc = None
        for k in range(limit):
            if owners[k] is None:
                ovc = k
                break
        if ovc is None:
            return
        vcobj.out_vc = ovc
        owners[ovc] = (inport, invc)
        r._owned_out[out] += 1
        r.counters.inc("vc_arb")
        n_vcs = self._layout.n_vcs
        oi.append((ri * NUM_PORTS + out) * n_vcs + ovc)
        ips.append(inport)
        ivs.append(invc)
        fi.append(f)

    def _vector_sa(self, mask, c: int) -> None:
        """Switch allocation + traversal across the whole network.

        Candidate masks, rotated round-robin keys and argmin winners
        for every (router, outport) come out of one batch of full-array
        ops; the crossbar-input constraint (a winner's inport is
        unavailable to the same router's higher outports) only binds
        when a router wins more than one outport in one cycle, so it is
        enforced by a scalar rescan of just those rows.  The rescan can
        reuse the batch snapshot: a winner at a lower outport only
        mutates that outport's state or its own input VC, which cannot
        be a candidate at another outport (one output VC per input VC).
        Same-cycle SA effects of different routers are independent, so
        resolving in (router, outport) order is unobservable."""
        layout = self._layout
        own_ip = layout.m_own_ip
        has = own_ip >= 0
        if mask is not None:
            has &= mask[:, None, None]
        if not has.any():
            return
        own_iv = layout.m_own_iv
        n_vcs = layout.n_vcs
        mod = NUM_PORTS * n_vcs
        posv = own_ip * n_vcs + own_iv
        # unowned entries gather at small negative indices (numpy wraps,
        # never faults) and are masked off by ``has``; an owner can only
        # exist behind a real link (VA routes are always link-backed),
        # so no separate ``m_has_link`` mask is needed
        front = layout.m_head_ready.reshape(-1)[posv + self._rb3] <= c
        cand = has & front & (layout.m_credits > 0)
        if self._hybrid:
            slot = c % self._clock.active
            res_slot = layout.m_reserved[:, :, slot]
            if not self._stealing:
                cand &= ~res_slot[:, :, None]
        else:
            res_slot = None
        ncand = cand.sum(axis=2)
        wr, wp = np.nonzero(ncand)
        if wr.size == 0:
            return
        key = np.where(cand, (posv - layout.m_saptr[:, :, None]) % mod,
                       mod)
        wovc = key.argmin(axis=2)
        ww = wovc[wr, wp]
        rl = wr.tolist()
        pl = wp.tolist()
        ol = ww.tolist()
        ip_w = own_ip[wr, wp, ww].tolist()
        iv_w = own_iv[wr, wp, ww].tolist()
        nc_w = ncand[wr, wp].tolist()
        rs_w = None if res_slot is None else res_slot[wr, wp].tolist()
        routers = self._routers
        sched = self._sched
        credit_entry = self._credit_entry
        out_entry = self._out_entry
        pv = NUM_PORTS * n_vcs
        tail_kind = FlitKind.TAIL
        head_kind = FlitKind.HEAD
        head_tail_kind = FlitKind.HEAD_TAIL
        # bulk mirror-update lists (flat indices are unique per cycle:
        # one winner per (router, outport), one inport per winner)
        sp_i: list = []
        sp_v: list = []
        dc: list = []
        co: list = []
        fs: list = []
        hu_i: list = []
        hu_r: list = []
        hu_k: list = []
        prev_ri = -1
        used = 0
        for k in range(len(rl)):
            ri = rl[k]
            p = pl[k]
            if ri != prev_ri:
                prev_ri = ri
                used = 0
                r = routers[ri]
                base = ri * pv
                counts = r.counters._counts
                in_ports = r.in_ports
                credit_out = r.credit_out
                out_links = r.out_links
                rcredits = r.credits
                port_buffered = r._port_buffered
                sa_ptr = r._sa_ptr
                owner = r.out_vc_owner
                owned_out = r._owned_out
                has_gating = r.gating is not None
                crentry = credit_entry[ri]
                oentry = out_entry[ri]
            if used == 0:
                ovc = ol[k]
                wip = ip_w[k]
                wiv = iv_w[k]
                nc = nc_w[k]
            else:
                # this router already won a lower outport this cycle:
                # redo the pick with its inport(s) masked out, exactly
                # the legacy ``used_in`` filter (strict-less first-win
                # == argmin first occurrence)
                crow = cand[ri, p]
                krow = key[ri, p]
                iprow = own_ip[ri, p]
                best = -1
                best_key = mod
                best_ip = -1
                nc = 0
                for v in range(n_vcs):
                    if crow[v]:
                        ipv = int(iprow[v])
                        if used >> ipv & 1:
                            continue
                        nc += 1
                        kv = krow[v]
                        if kv < best_key:
                            best_key = kv
                            best = v
                            best_ip = ipv
                if nc == 0:
                    continue
                ovc = best
                wip = best_ip
                wiv = int(own_iv[ri, p, best])
            used |= 1 << wip
            # exact effect sequence of one SA win + switch traversal
            # (mirrors ``HybridRouter._sa_st``'s inlined winner body,
            # behaviour-identical to base ``_sa_pick`` + ``_traverse``)
            counts["sw_arb"] = counts.get("sw_arb", 0) + 1
            if nc > 1:
                ptr = wip * n_vcs + wiv + 1
                sa_ptr[p] = ptr
                sp_i.append(ri * NUM_PORTS + p)
                sp_v.append(ptr)
            if rs_w is not None and rs_w[k]:
                counts["slot_steal"] = counts.get("slot_steal", 0) + 1
            vcobj = in_ports[wip].vcs[wiv]
            fifo = vcobj.fifo
            flit = fifo.popleft()
            r._buffered_flits -= 1
            port_buffered[wip] -= 1
            counts["buffer_read"] = counts.get("buffer_read", 0) + 1
            counts["xbar"] = counts.get("xbar", 0) + 1
            if has_gating:
                wait = c - flit.ready_cycle
                r._qdelay_accum += max(0, wait)
                r._qdelay_samples += 1
            clink = credit_out[wip]
            if clink is not None:
                due = c + clink.latency
                clink._pipe.append((due, wiv))
                ws = clink.wake_sink
                if ws is not None and not ws._sim_awake:
                    ws.sim_wake()
                ent = crentry[wip]
                if ent is not None:
                    lst = sched.get(due)
                    if lst is None:
                        sched[due] = [ent]
                    else:
                        lst.append(ent)
            flit.vc = ovc
            if p != LOCAL:
                rcredits[p][ovc] -= 1
                dc.append(base + p * n_vcs + ovc)
                counts["link"] = counts.get("link", 0) + 1
            flit.packet.hops_taken += 1
            kind = flit.kind
            if kind is tail_kind or kind is head_tail_kind:
                owner[p][ovc] = None
                owned_out[p] -= 1
                vcobj.route_outport = None
                vcobj.out_vc = None
                co.append(base + p * n_vcs + ovc)
                fs.append(base + wip * n_vcs + wiv)
            olk = out_links[p]
            due = c + olk.latency
            olk._pipe.append((due, flit))
            olk.flits_carried += 1
            ws = olk.wake_sink
            if ws is not None and not ws._sim_awake:
                ws.sim_wake()
            ent = oentry[p]
            if ent is not None:
                lst = sched.get(due)
                if lst is None:
                    sched[due] = [ent]
                else:
                    lst.append(ent)
            # head mirror for the popped VC
            hu_i.append(base + wip * n_vcs + wiv)
            if fifo:
                nf = fifo[0]
                hu_r.append(nf.ready_cycle)
                nk = nf.kind
                hu_k.append(nk is head_kind or nk is head_tail_kind)
            else:
                hu_r.append(NO_HEAD)
                hu_k.append(False)
        # bulk-apply the mirror updates (deferral is exact: the winner
        # loop only consults the pre-cycle snapshot arrays, and the
        # gating sampler runs after this method returns)
        if sp_i:
            self._f_sap[sp_i] = sp_v
        if dc:
            self._f_cred[dc] -= 1
        if co:
            self._f_oip[co] = -1
            self._f_oiv[co] = -1
            self._f_free[fs] = True
        if hu_i:
            self._f_hr[hu_i] = hu_r
            self._f_hk[hu_i] = hu_k

    def _capture_sends(self, ri: int, r, c: int) -> None:
        """Register anything an object-stepped router sent this cycle in
        the event schedule (a pipe tail due exactly ``latency`` from now
        was appended this cycle)."""
        sched = self._sched
        out_entry = self._out_entry[ri]
        credit_entry = self._credit_entry[ri]
        for p in range(NUM_PORTS):
            ol = r.out_links[p]
            if ol is not None and ol._pipe \
                    and ol._pipe[-1][0] == c + ol.latency:
                ent = out_entry[p]
                if ent is not None:
                    sched.setdefault(c + ol.latency, []).append(ent)
            cl = r.credit_out[p]
            if cl is not None and cl._pipe \
                    and cl._pipe[-1][0] == c + cl.latency:
                ent = credit_entry[p]
                if ent is not None:
                    sched.setdefault(c + cl.latency, []).append(ent)

    def _sample_gating(self, spilled) -> None:
        """Per-cycle VC utilisation sampling for gating routers, exactly
        replicating ``_sample_utilisation``: the busy count is an array
        reduction; each router with a nonzero count takes the identical
        ``busy / total`` addition with Python ints (adding an exact
        ``0.0`` to a non-negative float is the identity, so zero-count
        routers are skipped bit-exactly; the unconditional
        ``_busy_samples += 1`` is deferred to window exit).  Spilled
        routers already sampled inside their object-side ``transfer``."""
        layout = self._layout
        busy = (~layout.m_free) | (layout.m_head_ready != NO_HEAD)
        busy &= self._g_vmask
        counts = busy.sum(axis=(1, 2))
        nz = np.flatnonzero(counts)
        if nz.size == 0:
            return
        routers = self._routers
        totals = self._g_totals
        cl = counts[nz].tolist()
        for j, ri in enumerate(nz.tolist()):
            if ri in spilled:
                continue
            routers[ri]._busy_accum += cl[j] / totals[ri]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "supported": self._ok,
            "unsupported_reason": self.unsupported_reason,
            "windows": self.windows,
            "window_declines": self.window_declines,
            "vector_cycles": self.vector_cycles,
            "spill_router_cycles": self.spill_router_cycles,
            "window_time": self.t_window,
            "spill_time": self.t_spill,
        }

"""Batched replicas: N independently-seeded copies of one workload.

Sweep throughput in this repo is normally process-level (the supervisor
forks one worker per point).  :class:`ReplicaSet` multiplies that
*within* a process: it builds N copies of the same workload with
different seeds and steps them through one shared loop in lockstep
chunks, every replica running the batch engine so quiescent stretches
fast-forward.

The subtlety is the module-global id allocators (message/packet ids in
:mod:`repro.network.flit`, connection ids in :mod:`repro.core.circuit`).
A solo run starts them at zero; interleaving N replicas through shared
globals would make every replica's ids depend on its neighbours and
break bit-equality with solo runs.  The replica set therefore *banks*
the allocators per replica: each replica's counter values are saved
when its slice of the chunk ends and written back just before its next
slice begins, so every replica observes exactly the allocator sequence
a solo run would.  (The shared flit pool needs no banking: pooled flits
are fully re-initialised on pop, and pool contents are never part of
any hash.)

A replica that raises :class:`~repro.sim.kernel.LivelockError` is
retired — its error is recorded and the remaining replicas keep
running, mirroring the supervisor's per-point fault isolation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import circuit as _circuit_mod
from repro.network import flit as _flit_mod
from repro.sim.checkpoint import capture_state, restore_state, state_hash
from repro.sim.kernel import LivelockError


def _save_ids() -> Tuple[int, int, int]:
    return (_flit_mod._msg_ids.value, _flit_mod._pkt_ids.value,
            _circuit_mod._conn_ids.value)


def _load_ids(bank: Tuple[int, int, int]) -> None:
    _flit_mod._msg_ids.value = bank[0]
    _flit_mod._pkt_ids.value = bank[1]
    _circuit_mod._conn_ids.value = bank[2]


class Replica:
    """One (sim, net, sources) instance plus its banked allocators."""

    __slots__ = ("index", "seed", "sim", "net", "sources", "ids",
                 "error")

    def __init__(self, index: int, seed: int, sim, net, sources) -> None:
        self.index = index
        self.seed = seed
        self.sim = sim
        self.net = net
        self.sources = sources
        self.ids = _save_ids()
        self.error: Optional[LivelockError] = None

    @property
    def active(self) -> bool:
        return self.error is None


class ReplicaSet:
    """N seeds of one workload stepped through a single shared loop.

    Parameters
    ----------
    factory:
        ``factory(seed) -> (sim, net, sources)`` building one replica.
        Each invocation sees freshly zeroed id allocators, so the
        factory must be the canonical construction path (anything built
        through :func:`repro.harness.runner.prepare_synthetic`
        qualifies).
    seeds:
        One seed per replica; replicas keep this order everywhere
        (hashes, stats, snapshots).
    """

    def __init__(self, factory: Callable[[int], tuple],
                 seeds: Sequence[int]) -> None:
        if not seeds:
            raise ValueError("ReplicaSet needs at least one seed")
        self.replicas: List[Replica] = []
        for i, seed in enumerate(seeds):
            _load_ids((0, 0, 0))
            sim, net, sources = factory(seed)
            self.replicas.append(Replica(i, seed, sim, net, sources))
        #: per-replica executed-cycle counters (lockstep unless retired)
        self.cycles_run = np.zeros(len(seeds), dtype=np.int64)

    @classmethod
    def synthetic(cls, scheme: str, pattern: str, rate: float,
                  seeds: Sequence[int], *, width: int = 4, height: int = 4,
                  slot_table_size: int = 32,
                  stop_cycle: Optional[int] = None) -> "ReplicaSet":
        """Build a replica set over the synthetic-traffic harness."""
        from repro.harness.runner import prepare_synthetic

        def factory(seed: int):
            sim, net, sources = prepare_synthetic(
                scheme, pattern, rate, seed=seed, width=width,
                height=height, slot_table_size=slot_table_size,
                engine="batch")
            if stop_cycle is not None:
                for src in sources:
                    src.stop_cycle = stop_cycle
            return sim, net, sources

        return cls(factory, seeds)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def active_count(self) -> int:
        return sum(1 for r in self.replicas if r.active)

    def run(self, cycles: int, chunk: Optional[int] = None) -> None:
        """Advance every active replica by *cycles* cycles.

        The chunk size only affects scheduling granularity (how often
        the loop rotates between replicas), never results: each
        replica's allocator bank is installed before its slice and
        saved after, so its trajectory is bit-identical to a solo run
        issued the same ``run`` calls.
        """
        if chunk is None:
            chunk = cycles
        remaining = cycles
        while remaining > 0:
            k = min(chunk, remaining)
            for rep in self.replicas:
                if not rep.active:
                    continue
                _load_ids(rep.ids)
                try:
                    rep.sim.run(k)
                    self.cycles_run[rep.index] += k
                except LivelockError as err:
                    rep.error = err
                finally:
                    rep.ids = _save_ids()
            remaining -= k

    # ------------------------------------------------------------------
    # observation / snapshots
    # ------------------------------------------------------------------
    def hashes(self) -> List[Optional[str]]:
        """Canonical state hash per replica (None for retired ones)."""
        out: List[Optional[str]] = []
        for rep in self.replicas:
            if not rep.active:
                out.append(None)
                continue
            _load_ids(rep.ids)
            out.append(state_hash(capture_state(rep.sim, rep.net)))
        return out

    def snapshot(self, index: int) -> Dict:
        """Checkpoint one replica (its banked allocators included)."""
        rep = self.replicas[index]
        _load_ids(rep.ids)
        return capture_state(rep.sim, rep.net)

    def restore(self, index: int, state: Dict) -> None:
        """Restore one replica from :meth:`snapshot` output; the
        restored allocator values become the replica's bank."""
        rep = self.replicas[index]
        restore_state(rep.sim, rep.net, state)
        rep.ids = _save_ids()
        rep.error = None

    def stats(self) -> dict:
        """Aggregate throughput/coverage over the set."""
        per_replica = [r.sim._batch.stats() if r.sim._batch else None
                       for r in self.replicas]
        # set-wide engine totals: how much of the whole campaign ran as
        # fast-forward skips vs vectorized windows vs object stepping
        engine = {"steps": 0, "skips": 0, "cycles_skipped": 0,
                  "windows": 0, "vector_cycles": 0,
                  "spill_router_cycles": 0}
        for st in per_replica:
            if st is None:
                continue
            for key in ("steps", "skips", "cycles_skipped"):
                engine[key] += st[key]
            for key in ("windows", "vector_cycles", "spill_router_cycles"):
                engine[key] += st["stepper"][key]
        return {
            "replicas": len(self.replicas),
            "active": self.active_count,
            "cycles_run": [int(c) for c in self.cycles_run],
            "retired": [{"index": r.index, "seed": r.seed,
                         "cycle": r.error.cycle}
                        for r in self.replicas if r.error is not None],
            "batch": per_replica,
            "engine_totals": engine,
        }

"""Compiled quiescence fast-forward on top of the fast scheduler.

:class:`BatchEngine` drives a :class:`~repro.sim.kernel.Simulator`
constructed with ``engine="batch"``.  Busy cycles execute through the
ordinary fast-engine step (awake lists of bound methods), so the batch
engine is never slower than ``engine="fast"``.  What it adds is a
*skip*: whenever the whole network is provably quiescent, the cycle
counter jumps straight to the next scheduled event and the skipped
cycles are applied as O(1) closed-form updates that are bit-identical
to stepping them.

The skip is sound only when every registered object falls into one of
three classes over the skipped stretch:

sleeping sleepables
    Routers and NIs that the fast scheduler has put to sleep.  By the
    fast-engine contract their skipped phases mutate no snapshot state
    and draw no RNG — skipping cycles is indistinguishable from the
    no-op phases the legacy engine would run.

always-on protocol objects
    Objects that run every cycle but whose per-cycle work is closed
    form while quiescent:

    * a VC-gating router samples utilisation every ``transfer``; with
      every VC empty and unowned the sample is exactly ``0.0``, so
      ``k`` skipped cycles collapse to ``_busy_samples += k``
      (:meth:`~repro.network.router.PacketRouter.sim_skip_quiet`).
      Its controller's ``control`` tick is a pure early-return below
      ``_next_epoch`` — the skip horizon never crosses an epoch
      boundary, and no skip happens while a drain is in progress.
    * the TDM :class:`~repro.core.slot_sizing.SlotSizeController`
      returns immediately unless a resize is pending; a pending resize
      blocks the skip instead.

blockers
    Anything else (watchdogs, fault injectors, metrics samplers,
    connection managers, ...).  Their per-cycle behaviour is not
    modelled; their presence disables fast-forwarding entirely and the
    run degrades to plain fast/legacy stepping.  Fault-injected runs
    additionally call :meth:`Simulator.disable_sleep`, which the gate
    checks first.

The *cheap gate* run every cycle is O(1): no pending wakes and the
awake-sleepable list reduced to exactly the never-idle gating routers.
Only when it passes does the engine refresh the compiled layout and run
the vectorized whole-network reduction plus the per-protocol checks.

Quiescence probes also carry *hysteresis*: on always-loaded scenarios
the full check fails every cycle and its O(routers) proof cost makes
batch slower than fast.  After :data:`~BatchEngine.PROBE_FAIL_LIMIT`
consecutive full-check failures the engine suspends full checks for
:data:`~BatchEngine.PROBE_SUSPEND` cycles at a time; any drain window
or cheap-gate failure (i.e. a change in the activity picture) re-arms
them immediately.

Loaded cycles additionally route through the opportunistic vectorized
window executor (:class:`~repro.sim.batch.stepper.VectorStepper`),
which steps busy stretches as whole-network array operations and is
bit-exact by construction — see that module's documentation.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from repro.core.slot_sizing import SlotSizeController
from repro.sim.batch.layout import CompiledLayout
from repro.sim.batch.stepper import VectorStepper


class BatchEngine:
    """Fast-forward controller bound to one simulator (see module doc)."""

    #: consecutive full-check failures before probes are suspended
    PROBE_FAIL_LIMIT = 8
    #: cycles between full checks while suspended (periodic re-arm so a
    #: scenario that *does* eventually drain still gets its skips)
    PROBE_SUSPEND = 256

    def __init__(self, sim) -> None:
        self.sim = sim
        self._layout: Optional[CompiledLayout] = None
        self._net = None
        self._compiled_objects = -1
        self._gating_routers: List = []
        self._slot_ctrls: List[SlotSizeController] = []
        self._blockers: List = []
        self.stepper = VectorStepper(self, sim)
        self._probe_fails = 0
        self._probe_resume = 0
        #: introspection counters (asserted on by the batch-engine tests)
        self.skips = 0
        self.cycles_skipped = 0
        self.full_checks = 0
        self.steps = 0
        self.probes_suppressed = 0
        self.t_run = 0.0
        self.t_probe = 0.0

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def attach_network(self, net) -> None:
        """Bind the built network whose datapath the engine compiles.

        Called by :func:`repro.network.network.build_network`; without a
        bound network the engine still runs correctly but never skips
        (there is nothing to prove quiescence over)."""
        self._net = net
        self._compiled_objects = -1   # force recompile on next run

    def _compile(self) -> None:
        """Classify the simulator's registered objects (see module doc).

        Cheap and idempotent; re-run whenever the object count changes
        (components are only ever added, never removed)."""
        sim = self.sim
        self._compiled_objects = len(sim._objects)
        self._gating_routers = []
        self._slot_ctrls = []
        self._blockers = []
        for obj in sim._objects:
            if obj._sim_can_sleep:
                if getattr(obj, "gating", None) is not None:
                    self._gating_routers.append(obj)
            elif isinstance(obj, SlotSizeController):
                self._slot_ctrls.append(obj)
            else:
                self._blockers.append(obj)
        if self._net is not None:
            self._layout = CompiledLayout(self._net)
        else:
            self._layout = None
        self.stepper.compile(self._net, self._layout)

    @property
    def layout(self) -> Optional[CompiledLayout]:
        """The compiled struct-of-arrays view (None before first run
        or when no network was attached)."""
        return self._layout

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance the simulator by exactly *cycles* cycles.

        The state at return — and at every cycle boundary an outer
        caller can observe between ``run`` calls — is bit-identical to
        stepping every cycle (verified by the three-way differential
        harness across all schemes)."""
        sim = self.sim
        if len(sim._objects) != self._compiled_objects:
            self._compile()
        end = sim.cycle + cycles
        step = sim._step
        stepper = self.stepper
        t0 = perf_counter()
        if self._blockers and not stepper.supported:
            # unmodelled always-on objects block every skip and the
            # vector lane is off for this network: the batch machinery
            # can never engage, so run the plain fast-engine loop
            # without paying the per-cycle gate checks (this is what
            # keeps batch ~= fast on always-busy closed-loop scenarios
            # like hetero_mix)
            self.steps += end - sim.cycle
            for _ in range(end - sim.cycle):
                step()
            self.t_run += perf_counter() - t0
            return
        while sim.cycle < end:
            if self._try_skip(end) > 0:
                continue
            if stepper.maybe_run_window(end) > 0:
                continue
            step()
            self.steps += 1
        self.t_run += perf_counter() - t0

    def _try_skip(self, end: int) -> int:
        """Skip to the next event if provably safe; returns cycles
        skipped (0 when the network is not quiescent)."""
        sim = self.sim
        # O(1) gate ---------------------------------------------------
        if not sim._sleep_enabled:
            return 0           # disable_sleep(): faults in play
        if self._blockers:
            return 0           # unmodelled always-on objects registered
        if sim._wake_pending:
            return 0           # an event just landed; lists are stale
        if len(sim._awake_sleepables) != len(self._gating_routers):
            return 0           # some router/NI is awake with real work
        # hysteresis: on always-loaded runs the full check fails every
        # cycle; after PROBE_FAIL_LIMIT consecutive failures only probe
        # every PROBE_SUSPEND cycles (cheap-gate failures re-arm above)
        cycle = sim.cycle
        if self._probe_fails >= self.PROBE_FAIL_LIMIT \
                and cycle < self._probe_resume:
            self.probes_suppressed += 1
            return 0
        # full check (activity transitions only) ----------------------
        self.full_checks += 1
        t0 = perf_counter()
        try:
            k = self._full_check(end, cycle)
        finally:
            self.t_probe += perf_counter() - t0
        if k == 0:
            self._probe_fails += 1
            if self._probe_fails >= self.PROBE_FAIL_LIMIT:
                self._probe_resume = cycle + self.PROBE_SUSPEND
        else:
            self._probe_fails = 0
        return k

    def _full_check(self, end: int, cycle: int) -> int:
        """The O(routers) quiescence proof; returns cycles skipped."""
        sim = self.sim
        horizon = end
        for ctrl in self._slot_ctrls:
            if ctrl._resize_pending:
                return 0
        for r in self._gating_routers:
            g = r.gating
            if g._draining >= 0:
                # drain completion is checked every tick; a drain also
                # re-arms suppressed probes (activity is about to change)
                self._probe_fails = 0
                return 0
            if not r.sim_quiescent(cycle):
                return 0
            if g._next_epoch < horizon:
                horizon = g._next_epoch
        layout = self._layout
        if layout is not None:
            layout.refresh()
            if not layout.datapath_empty(cycle):
                return 0
        k = horizon - cycle
        if k <= 0:
            return 0           # sitting on an epoch boundary: step it
        # apply the closed form ---------------------------------------
        for r in self._gating_routers:
            r.sim_skip_quiet(k)
        sim.cycle = cycle + k
        self.skips += 1
        self.cycles_skipped += k
        return k

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Skip/step counters plus the layout occupancy summary."""
        out = {"skips": self.skips, "cycles_skipped": self.cycles_skipped,
               "full_checks": self.full_checks, "steps": self.steps,
               "probes_suppressed": self.probes_suppressed,
               "compiled": self._layout is not None,
               "stepper": self.stepper.stats()}
        if self._layout is not None:
            out["layout"] = self._layout.summary()
        return out

    def phase_profile(self) -> dict:
        """Wall-clock breakdown of where :meth:`run` time went:
        vectorized window stepping, object-side spill stepping inside
        windows, quiescence probing, and the residual per-object
        stepping (which includes the fast-forward bookkeeping — the
        closed-form skip itself is O(routers) and negligible)."""
        st = self.stepper
        vector = max(0.0, st.t_window - st.t_spill)
        other = max(0.0, self.t_run - st.t_window - self.t_probe)
        return {
            "total": self.t_run,
            "vector_step": vector,
            "spill_step": st.t_spill,
            "quiescence_probe": self.t_probe,
            "object_step": other,
            "windows": st.windows,
            "vector_cycles": st.vector_cycles,
            "spill_router_cycles": st.spill_router_cycles,
            "fast_forward_skips": self.skips,
            "cycles_skipped": self.cycles_skipped,
        }

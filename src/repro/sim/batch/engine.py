"""Compiled quiescence fast-forward on top of the fast scheduler.

:class:`BatchEngine` drives a :class:`~repro.sim.kernel.Simulator`
constructed with ``engine="batch"``.  Busy cycles execute through the
ordinary fast-engine step (awake lists of bound methods), so the batch
engine is never slower than ``engine="fast"``.  What it adds is a
*skip*: whenever the whole network is provably quiescent, the cycle
counter jumps straight to the next scheduled event and the skipped
cycles are applied as O(1) closed-form updates that are bit-identical
to stepping them.

The skip is sound only when every registered object falls into one of
three classes over the skipped stretch:

sleeping sleepables
    Routers and NIs that the fast scheduler has put to sleep.  By the
    fast-engine contract their skipped phases mutate no snapshot state
    and draw no RNG — skipping cycles is indistinguishable from the
    no-op phases the legacy engine would run.

always-on protocol objects
    Objects that run every cycle but whose per-cycle work is closed
    form while quiescent:

    * a VC-gating router samples utilisation every ``transfer``; with
      every VC empty and unowned the sample is exactly ``0.0``, so
      ``k`` skipped cycles collapse to ``_busy_samples += k``
      (:meth:`~repro.network.router.PacketRouter.sim_skip_quiet`).
      Its controller's ``control`` tick is a pure early-return below
      ``_next_epoch`` — the skip horizon never crosses an epoch
      boundary, and no skip happens while a drain is in progress.
    * the TDM :class:`~repro.core.slot_sizing.SlotSizeController`
      returns immediately unless a resize is pending; a pending resize
      blocks the skip instead.

blockers
    Anything else (watchdogs, fault injectors, metrics samplers,
    connection managers, ...).  Their per-cycle behaviour is not
    modelled; their presence disables fast-forwarding entirely and the
    run degrades to plain fast/legacy stepping.  Fault-injected runs
    additionally call :meth:`Simulator.disable_sleep`, which the gate
    checks first.

The *cheap gate* run every cycle is O(1): no pending wakes and the
awake-sleepable list reduced to exactly the never-idle gating routers.
Only when it passes does the engine refresh the compiled layout and run
the vectorized whole-network reduction plus the per-protocol checks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.slot_sizing import SlotSizeController
from repro.sim.batch.layout import CompiledLayout


class BatchEngine:
    """Fast-forward controller bound to one simulator (see module doc)."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._layout: Optional[CompiledLayout] = None
        self._net = None
        self._compiled_objects = -1
        self._gating_routers: List = []
        self._slot_ctrls: List[SlotSizeController] = []
        self._blockers: List = []
        #: introspection counters (asserted on by the batch-engine tests)
        self.skips = 0
        self.cycles_skipped = 0
        self.full_checks = 0
        self.steps = 0

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def attach_network(self, net) -> None:
        """Bind the built network whose datapath the engine compiles.

        Called by :func:`repro.network.network.build_network`; without a
        bound network the engine still runs correctly but never skips
        (there is nothing to prove quiescence over)."""
        self._net = net
        self._compiled_objects = -1   # force recompile on next run

    def _compile(self) -> None:
        """Classify the simulator's registered objects (see module doc).

        Cheap and idempotent; re-run whenever the object count changes
        (components are only ever added, never removed)."""
        sim = self.sim
        self._compiled_objects = len(sim._objects)
        self._gating_routers = []
        self._slot_ctrls = []
        self._blockers = []
        for obj in sim._objects:
            if obj._sim_can_sleep:
                if getattr(obj, "gating", None) is not None:
                    self._gating_routers.append(obj)
            elif isinstance(obj, SlotSizeController):
                self._slot_ctrls.append(obj)
            else:
                self._blockers.append(obj)
        if self._net is not None:
            self._layout = CompiledLayout(self._net)
        else:
            self._layout = None

    @property
    def layout(self) -> Optional[CompiledLayout]:
        """The compiled struct-of-arrays view (None before first run
        or when no network was attached)."""
        return self._layout

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance the simulator by exactly *cycles* cycles.

        The state at return — and at every cycle boundary an outer
        caller can observe between ``run`` calls — is bit-identical to
        stepping every cycle (verified by the three-way differential
        harness across all schemes)."""
        sim = self.sim
        if len(sim._objects) != self._compiled_objects:
            self._compile()
        end = sim.cycle + cycles
        step = sim._step
        while sim.cycle < end:
            if self._try_skip(end) == 0:
                step()
                self.steps += 1

    def _try_skip(self, end: int) -> int:
        """Skip to the next event if provably safe; returns cycles
        skipped (0 when the network is not quiescent)."""
        sim = self.sim
        # O(1) gate ---------------------------------------------------
        if not sim._sleep_enabled:
            return 0           # disable_sleep(): faults in play
        if self._blockers:
            return 0           # unmodelled always-on objects registered
        if sim._wake_pending:
            return 0           # an event just landed; lists are stale
        if len(sim._awake_sleepables) != len(self._gating_routers):
            return 0           # some router/NI is awake with real work
        # full check (activity transitions only) ----------------------
        self.full_checks += 1
        cycle = sim.cycle
        horizon = end
        for ctrl in self._slot_ctrls:
            if ctrl._resize_pending:
                return 0
        for r in self._gating_routers:
            g = r.gating
            if g._draining >= 0:
                return 0       # drain completion is checked every tick
            if not r.sim_quiescent(cycle):
                return 0
            if g._next_epoch < horizon:
                horizon = g._next_epoch
        layout = self._layout
        if layout is not None:
            layout.refresh()
            if not layout.datapath_empty(cycle):
                return 0
        k = horizon - cycle
        if k <= 0:
            return 0           # sitting on an epoch boundary: step it
        # apply the closed form ---------------------------------------
        for r in self._gating_routers:
            r.sim_skip_quiet(k)
        sim.cycle = cycle + k
        self.skips += 1
        self.cycles_skipped += k
        return k

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Skip/step counters plus the layout occupancy summary."""
        out = {"skips": self.skips, "cycles_skipped": self.cycles_skipped,
               "full_checks": self.full_checks, "steps": self.steps,
               "compiled": self._layout is not None}
        if self._layout is not None:
            out["layout"] = self._layout.summary()
        return out

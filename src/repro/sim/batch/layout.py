"""Struct-of-arrays compilation of a built network.

:func:`compile_layout` walks a wired :class:`~repro.network.network.Network`
once and lays its mutable datapath state out as flat NumPy arrays —
per-VC credits and buffer occupancies, link pipe registers, downstream
VC ownership, staged arrivals, slot-table/CS reservations, NI queues.
The arrays are *derived* views: the authoritative state stays on the
objects (so ``state_dict`` / checkpointing are untouched), and
:meth:`CompiledLayout.refresh` re-derives the arrays in one pass.

The point of the flat form is that whole-network predicates become
single vectorized reductions.  The batch engine's fast-forward gate
("is every router's datapath provably empty?") is
:meth:`CompiledLayout.datapath_empty` — one ``ndarray.any()`` over the
packed state instead of a Python loop of per-object method dispatch.
The same arrays back the consistency assertions in the batch-engine
tests (:meth:`assert_consistent`) and the occupancy summaries used by
the bench harness.

Array shapes (R routers, P ports, V max VCs per port, N interfaces):

====================  =========  =========================================
``occupancy``         (R, P, V)  flits buffered per input VC
``credits``           (R, P, V)  downstream credits held per output VC
``owner_mask``        (R, P, V)  downstream VC currently owned (bool)
``link_inflight``     (R, P)     flits in the input link pipe register
``credit_inflight``   (R, P)     credits in the upstream credit pipe
``arrivals``          (R, P)     flits staged for the current deliver
``buffered``          (R,)       router's cached total buffered count
``stalled_until``     (R,)       fault-stall horizon (0 when none)
``cs_pending``        (R,)       pending CS injections + dirty CS flags
``reserved_slots``    (R,)       reserved slot-table entries (TDM/CS)
``ni_backlog``        (N,)       queued packets + open reassembly VCs
``ni_inflight``       (N,)       eject/credit pipe contents + CS holds
====================  =========  =========================================

A second family of arrays — the ``m_*`` *mirror* (head-flit request
tables, VC-allocation freedom, downstream ownership, credit counts,
round-robin pointers, TDM slot-ownership masks) — backs the vectorized
active-window datapath in :mod:`repro.sim.batch.stepper`.  Unlike the
derived views above these are dual-written: the stepper updates them at
the same program point as the matching object mutation, so they are
exact every cycle while a window is open (and meaningless outside one;
each window entry re-derives them via :meth:`CompiledLayout.derive_router`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.network.flit import FlitKind

#: sentinel "no head flit" readiness (far beyond any reachable cycle)
NO_HEAD = 1 << 62


def _pipe_len(link) -> int:
    """Length of a link's pipe register (0 for an absent link)."""
    return 0 if link is None else len(link._pipe)


class CompiledLayout:
    """Flat-array mirror of one network's datapath state.

    Construction allocates; :meth:`refresh` fills.  The arrays are only
    meaningful for the cycle at which :meth:`refresh` was last called —
    the batch engine refreshes immediately before each vectorized
    quiescence check, which only happens on activity *transitions*
    (never on steady-state busy cycles).
    """

    def __init__(self, net) -> None:
        self.net = net
        routers = net.routers
        interfaces = net.interfaces
        self.n_routers = len(routers)
        self.n_interfaces = len(interfaces)
        self.n_ports = max(len(r.in_ports) for r in routers)
        self.n_vcs = max(len(port.vcs)
                         for r in routers for port in r.in_ports)

        shape_rpv = (self.n_routers, self.n_ports, self.n_vcs)
        shape_rp = (self.n_routers, self.n_ports)
        self.occupancy = np.zeros(shape_rpv, dtype=np.int32)
        self.credits = np.zeros(shape_rpv, dtype=np.int32)
        self.owner_mask = np.zeros(shape_rpv, dtype=bool)
        self.link_inflight = np.zeros(shape_rp, dtype=np.int32)
        self.credit_inflight = np.zeros(shape_rp, dtype=np.int32)
        self.arrivals = np.zeros(shape_rp, dtype=np.int32)
        self.buffered = np.zeros(self.n_routers, dtype=np.int32)
        self.stalled_until = np.zeros(self.n_routers, dtype=np.int64)
        self.cs_pending = np.zeros(self.n_routers, dtype=np.int32)
        self.reserved_slots = np.zeros(self.n_routers, dtype=np.int32)
        self.ni_backlog = np.zeros(self.n_interfaces, dtype=np.int32)
        self.ni_inflight = np.zeros(self.n_interfaces, dtype=np.int32)
        #: number of refresh passes (introspection for tests/bench)
        self.refreshes = 0

        # vector-stepper mirror arrays (repro.sim.batch.stepper): unlike
        # the derived views above, these are *dual-written* — the stepper
        # updates them scalar-by-scalar at the same moment it applies the
        # matching object mutation, so they are exact at every cycle
        # boundary inside a vectorized window.  Allocated lazily by
        # :meth:`ensure_mirror` (plain batch runs never pay for them).
        self.m_head_ready: Optional[np.ndarray] = None  # (R,P,V) int64
        self.m_head_ok: Optional[np.ndarray] = None     # (R,P,V) bool
        self.m_free: Optional[np.ndarray] = None        # (R,P,V) bool
        self.m_own_ip: Optional[np.ndarray] = None      # (R,P,V) int64
        self.m_own_iv: Optional[np.ndarray] = None      # (R,P,V) int64
        self.m_credits: Optional[np.ndarray] = None     # (R,P,V) int64
        self.m_saptr: Optional[np.ndarray] = None       # (R,P)   int64
        self.m_has_link: Optional[np.ndarray] = None    # (R,P)   bool
        self.m_reserved: Optional[np.ndarray] = None    # (R,P,S) bool
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Re-derive every array from the live objects (one pass)."""
        self.refreshes += 1
        occupancy = self.occupancy
        credits = self.credits
        owner_mask = self.owner_mask
        occupancy[:] = 0
        credits[:] = 0
        owner_mask[:] = False

        for ri, r in enumerate(self.net.routers):
            buffered = 0
            for pi, port in enumerate(r.in_ports):
                for vi, vc in enumerate(port.vcs):
                    n = len(vc.fifo)
                    occupancy[ri, pi, vi] = n
                    buffered += n
                self.link_inflight[ri, pi] = _pipe_len(r.in_links[pi])
                self.credit_inflight[ri, pi] = _pipe_len(r.credit_in[pi])
                self.arrivals[ri, pi] = len(r._arrivals[pi])
            for pi, row in enumerate(r.credits):
                for vi, c in enumerate(row):
                    credits[ri, pi, vi] = c
            for pi, owners in enumerate(r.out_vc_owner):
                for vi, owner in enumerate(owners):
                    owner_mask[ri, pi, vi] = owner is not None
            self.buffered[ri] = r._buffered_flits
            assert buffered == r._buffered_flits, \
                "router buffered-flit cache out of sync with its VCs"
            self.stalled_until[ri] = r.stalled_until
            self.cs_pending[ri] = self._cs_pending(r)
            slot_state = getattr(r, "slot_state", None)
            self.reserved_slots[ri] = (0 if slot_state is None
                                       else slot_state.reserved_entries())

        for ni_i, ni in enumerate(self.net.interfaces):
            open_vcs = sum(1 for s in ni.vc_in_use if s is not None)
            self.ni_backlog[ni_i] = len(ni.ps_queue) + open_vcs
            self.ni_inflight[ni_i] = (
                _pipe_len(ni.eject_link) + _pipe_len(ni.credit_in)
                + getattr(ni, "_cs_outstanding", 0))

    @staticmethod
    def _cs_pending(r) -> int:
        """Circuit-switching work a router is still holding.

        Counts scheduled CS injections plus, for the SDM router, any
        sub-channel rows still marked in use (those keep the router's
        ``sim_idle`` false too — this mirrors, not replaces, the
        per-class idle predicates)."""
        n = len(getattr(r, "_cs_inject", ()))
        if getattr(r, "_cs_flags_dirty", False):
            n += 1
        for rows in (getattr(r, "_cs_in_used", None),
                     getattr(r, "_cs_out_used", None)):
            if rows:
                # flat per-port bools (TDM hybrid) or nested per-port
                # per-subchannel rows (SDM)
                for row in rows:
                    if isinstance(row, (list, tuple)):
                        n += sum(1 for used in row if used)
                    elif row:
                        n += 1
        return n

    # ------------------------------------------------------------------
    # vector-stepper mirror (see repro.sim.batch.stepper)
    # ------------------------------------------------------------------
    def ensure_mirror(self) -> None:
        """Allocate the dual-written mirror arrays (idempotent).

        Shapes follow the derived views; sentinel conventions:
        ``m_head_ready == NO_HEAD`` means the VC FIFO is empty,
        ``m_own_ip == -1`` means the downstream VC is unowned."""
        if self.m_head_ready is not None:
            return
        shape_rpv = (self.n_routers, self.n_ports, self.n_vcs)
        shape_rp = (self.n_routers, self.n_ports)
        self.m_head_ready = np.full(shape_rpv, NO_HEAD, dtype=np.int64)
        self.m_head_ok = np.zeros(shape_rpv, dtype=bool)
        self.m_free = np.ones(shape_rpv, dtype=bool)
        self.m_own_ip = np.full(shape_rpv, -1, dtype=np.int64)
        self.m_own_iv = np.full(shape_rpv, -1, dtype=np.int64)
        self.m_credits = np.zeros(shape_rpv, dtype=np.int64)
        self.m_saptr = np.zeros(shape_rp, dtype=np.int64)
        self.m_has_link = np.zeros(shape_rp, dtype=bool)
        for ri, r in enumerate(self.net.routers):
            for p in range(self.n_ports):
                self.m_has_link[ri, p] = r.out_links[p] is not None

    def derive_router(self, ri: int, r) -> None:
        """Re-derive every mirror row of router *ri* from the object.

        Called at window entry for every router and after each spilled
        (object-stepped) router cycle, re-synchronising the arrays with
        whatever the per-object code mutated."""
        hr = self.m_head_ready
        hk = self.m_head_ok
        fr = self.m_free
        head_kind = FlitKind.HEAD
        head_tail_kind = FlitKind.HEAD_TAIL
        for p, port in enumerate(r.in_ports):
            for v, vc in enumerate(port.vcs):
                fifo = vc.fifo
                if fifo:
                    f = fifo[0]
                    hr[ri, p, v] = f.ready_cycle
                    kind = f.kind
                    hk[ri, p, v] = (kind is head_kind
                                    or kind is head_tail_kind)
                else:
                    hr[ri, p, v] = NO_HEAD
                    hk[ri, p, v] = False
                fr[ri, p, v] = vc.out_vc is None
        oip = self.m_own_ip
        oiv = self.m_own_iv
        cr = self.m_credits
        for p in range(self.n_ports):
            row = r.credits[p]
            for v, n in enumerate(row):
                cr[ri, p, v] = n
            for v, owner in enumerate(r.out_vc_owner[p]):
                if owner is None:
                    oip[ri, p, v] = -1
                    oiv[ri, p, v] = -1
                else:
                    oip[ri, p, v] = owner[0]
                    oiv[ri, p, v] = owner[1]
            self.m_saptr[ri, p] = r._sa_ptr[p]
        res = self.m_reserved
        if res is not None:
            slot_state = getattr(r, "slot_state", None)
            if slot_state is not None:
                for p in range(self.n_ports):
                    row = slot_state.out_owner[p]
                    for s in range(res.shape[2]):
                        res[ri, p, s] = row[s] != -1

    def derive_reserved(self, clock) -> None:
        """(Re)build the TDM slot-ownership mask for the whole network.

        ``m_reserved[ri, p, s]`` mirrors ``out_owner[p][s] != -1`` over
        the *active* wheel; rebuilt whenever the stepper observes a
        ``(generation, active)`` change on the shared slot clock."""
        active = clock.active
        res = self.m_reserved
        if res is None or res.shape[2] != active:
            res = self.m_reserved = np.zeros(
                (self.n_routers, self.n_ports, active), dtype=bool)
        else:
            res[:] = False
        for ri, r in enumerate(self.net.routers):
            out_owner = r.slot_state.out_owner
            for p in range(self.n_ports):
                row = out_owner[p]
                for s in range(active):
                    if row[s] != -1:
                        res[ri, p, s] = True

    # ------------------------------------------------------------------
    # vectorized whole-network predicates
    # ------------------------------------------------------------------
    def datapath_empty(self, cycle: int) -> bool:
        """True when no flit, credit, staged arrival, CS injection or
        fault stall exists anywhere in the compiled network — a single
        pass of array reductions.  Slot-table *reservations* are
        excluded on purpose: an established idle circuit holds its slots
        without doing per-cycle work, so reservations do not block
        fast-forwarding (CS data in flight shows up in the pipe and
        occupancy arrays instead)."""
        if self.occupancy.any() or self.arrivals.any():
            return False
        if self.link_inflight.any() or self.credit_inflight.any():
            return False
        if self.owner_mask.any() or self.cs_pending.any():
            return False
        if self.ni_backlog.any() or self.ni_inflight.any():
            return False
        return not (self.stalled_until > cycle).any()

    def summary(self) -> dict:
        """Aggregate occupancy figures (bench/diagnostic output)."""
        return {
            "buffered_flits": int(self.occupancy.sum()),
            "flits_on_links": int(self.link_inflight.sum()),
            "credits_in_flight": int(self.credit_inflight.sum()),
            "owned_out_vcs": int(self.owner_mask.sum()),
            "cs_pending": int(self.cs_pending.sum()),
            "reserved_slots": int(self.reserved_slots.sum()),
            "ni_backlog": int(self.ni_backlog.sum()),
            "ni_inflight": int(self.ni_inflight.sum()),
        }

    # ------------------------------------------------------------------
    def assert_consistent(self, cycle: Optional[int] = None) -> None:
        """Cross-check the arrays against the object graph (tests only).

        Verifies that a fresh compilation matches this layout after
        :meth:`refresh`, and that the vectorized
        :meth:`datapath_empty` agrees with the per-object idle
        predicates when they are all idle."""
        self.refresh()
        fresh = CompiledLayout(self.net)
        for name in ("occupancy", "credits", "owner_mask",
                     "link_inflight", "credit_inflight", "arrivals",
                     "buffered", "stalled_until", "cs_pending",
                     "reserved_slots", "ni_backlog", "ni_inflight"):
            a, b = getattr(self, name), getattr(fresh, name)
            if not np.array_equal(a, b):
                raise AssertionError(
                    f"layout array {name!r} diverged from a fresh "
                    f"compilation:\n{a}\nvs\n{b}")
        if cycle is not None:
            objects_idle = all(
                r.sim_quiescent(cycle) for r in self.net.routers) and all(
                ni.sim_idle(cycle) for ni in self.net.interfaces)
            if objects_idle and not self.datapath_empty(cycle):
                raise AssertionError(
                    "per-object predicates say quiescent but the "
                    f"vectorized reduction disagrees: {self.summary()}")


def compile_layout(net) -> CompiledLayout:
    """Compile *net* into a :class:`CompiledLayout` (see module doc)."""
    return CompiledLayout(net)

"""Cycle-level simulation kernel (S1).

Provides the deterministic clocked stepping engine, seeded random number
management, and statistics primitives shared by every other subsystem.
"""

from repro.sim.kernel import Simulator, SimObject
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencySample,
    RunningMean,
    TimeWeighted,
    WindowedRate,
)

__all__ = [
    "Simulator",
    "SimObject",
    "Counter",
    "Histogram",
    "LatencySample",
    "RunningMean",
    "TimeWeighted",
    "WindowedRate",
]

"""Clocked simulation kernel.

The NoC models in this package are *cycle driven*: every component exposes
phase methods that the :class:`Simulator` invokes in a fixed global order
each cycle.  The phase split mirrors the structural timing of a synchronous
router (link delivery happens before switch traversal, which happens before
controller bookkeeping) and makes the simulation deterministic regardless
of component registration order within a phase tier.

Phases per cycle (in order):

``deliver``   link/credit pipelines hand flits and credits to consumers
``transfer``  routers run the circuit-switched pass then the packet pipeline
``inject``    network interfaces inject/eject, endpoints generate traffic
``control``   slow controllers: VC power gating, slot-table sizing,
              connection management, statistics sampling

All randomness must come from :attr:`Simulator.rng` (a seeded NumPy
``Generator``) so runs are exactly reproducible.

Engines
-------
The simulator ships three schedulers that are *behaviourally identical*
(verified by the differential-equivalence harness in
:mod:`repro.harness.verify`):

``legacy``
    Every registered object runs every phase it overrides, every cycle.

``batch``
    The fast engine plus compiled-schedule fast-forward: when the whole
    network is provably quiescent, whole stretches of cycles are applied
    as O(1) closed-form array updates instead of being stepped (see
    :mod:`repro.sim.batch`).  Gated by the same three-way differential
    harness; identical ``state_hash`` trajectory at every observation
    point.

``fast`` (default)
    Activity-tracked: a component whose :meth:`SimObject.sim_idle`
    predicate holds at the end of a cycle is put to sleep and skipped
    until an event wakes it — a flit or credit entering one of its
    links (:class:`~repro.network.link.FlitLink` pokes its
    ``wake_sink``), a message enqueued at an NI, a circuit injection
    scheduled on a router, an endpoint attachment, or a snapshot
    restore.  Sleep is only entered after the component has executed a
    provably no-op cycle, so skipped phases never differ from the
    no-ops the legacy engine would have run, and ``state_hash`` stays
    identical cycle for cycle.  Fault-injected runs disable sleeping
    wholesale (:meth:`Simulator.disable_sleep`): fault events mutate
    components behind the scheduler's back, and correctness beats speed
    on those rare runs.

    The scheduler keeps *awake lists*: per-phase lists holding only the
    components that must run (everything that cannot sleep, plus the
    currently-awake sleepables).  The per-cycle loop therefore never
    touches sleeping components at all — no per-object ``_sim_awake``
    check on the hot path.  Wakes (:meth:`SimObject.sim_wake`) mark the
    component for (re-)insertion and set a kernel flag; the lists are
    rebuilt lazily, in canonical registration order, at the next cycle
    boundary.  A component woken mid-cycle thus runs its phases again
    starting with the *next* cycle — which is hash-identical to the old
    behaviour, because the phases it would have run in the wake cycle
    are provably no-ops: every wake event is a *future* delivery (link
    latencies >= 1, circuit injections are slot-aligned ahead of time)
    or targets a component that is still awake (the CS-callback paths
    hold their NI awake through ``_cs_outstanding``).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.trace import NULL_RECORDER

#: Canonical phase names in execution order.
PHASES = ("deliver", "transfer", "inject", "control")


def default_engine() -> str:
    """The engine used when a caller does not choose one explicitly.

    ``REPRO_ENGINE`` overrides the built-in default ("fast"), so whole
    harness entry points (golden-fixture regeneration, sweeps, the
    hetero system) can be re-run under another engine without threading
    a parameter through every call site.
    """
    env = os.environ.get("REPRO_ENGINE", "").strip()
    if not env:
        return "fast"
    if env not in Simulator.ENGINES:
        raise ValueError(f"REPRO_ENGINE={env!r} is not one of "
                         f"{Simulator.ENGINES}")
    return env


class LivelockError(RuntimeError):
    """Raised by :class:`Watchdog` when the simulation stops resolving
    flits while work is still in flight (a livelock or deadlock), instead
    of letting the run spin silently to its cycle budget."""

    def __init__(self, cycle: int, in_flight: int, stalled_cycles: int,
                 diagnosis: Optional[Dict] = None) -> None:
        self.cycle = cycle
        self.in_flight = in_flight
        self.stalled_cycles = stalled_cycles
        self.diagnosis = diagnosis or {}
        super().__init__(
            f"no forward progress for {stalled_cycles} cycles at cycle "
            f"{cycle} with {in_flight} flits in flight: {self.diagnosis}")


class SimObject:
    """Base class for objects that participate in the clocked phases.

    Subclasses override any subset of :meth:`deliver`, :meth:`transfer`,
    :meth:`inject` and :meth:`control`.  The default implementations are
    no-ops, so components only pay for the phases they use (the kernel
    skips methods that are not overridden).

    Snapshot protocol
    -----------------
    :meth:`state_dict` returns every *mutable* simulation attribute of
    the object; :meth:`load_state_dict` restores them onto an
    identically-constructed instance.  Wiring (links, callbacks, shared
    component references) is never part of the state: a restore target
    is rebuilt through the normal construction path first, then loaded.
    The default implementation is driven by the :attr:`_state_attrs`
    class attribute; components with nested or shared state override the
    method pair instead.  Returned values may be live references — the
    checkpoint layer (:mod:`repro.sim.checkpoint`) freezes the whole
    tree in a single pickling pass, which also preserves object sharing
    between components (e.g. a flit sitting in a link pipe while its
    packet is tracked by the source NI).
    """

    #: names of mutable attributes captured by the default state_dict
    _state_attrs: Tuple[str, ...] = ()

    #: classes opting into activity tracking set this True and provide a
    #: sound :meth:`sim_idle`; everything else runs every cycle
    _sim_can_sleep: bool = False

    #: scheduler metadata — NEVER part of ``state_dict`` (both engines
    #: must hash identically); set by :meth:`Simulator.add`
    _sim_awake: bool = True

    #: True while the object is present in (or pending insertion into)
    #: the fast engine's awake lists — scheduler metadata, never state
    _sim_in_lists: bool = False

    #: owning :class:`Simulator` (wiring, set by :meth:`Simulator.add`)
    _sim_kernel: Optional["Simulator"] = None

    def sim_wake(self) -> None:
        """Wake this object: it runs its phases again starting with the
        next cycle.  Idempotent and cheap when already awake; hot call
        sites guard with ``if not obj._sim_awake: obj.sim_wake()`` to
        skip even the method call."""
        self._sim_awake = True
        if not self._sim_in_lists:
            self._sim_in_lists = True
            kernel = self._sim_kernel
            if kernel is not None:
                kernel._wake_pending = True

    def sim_idle(self, cycle: int) -> bool:
        """True when every phase of this object would be a no-op at
        *cycle + 1* and stay a no-op until an external wake event.

        The contract (checked by the differential harness): while the
        object sleeps, the legacy engine running its phases must mutate
        *no* state captured by :meth:`state_dict` and draw nothing from
        the simulator RNG.
        """
        return False

    def deliver(self, cycle: int) -> None:  # pragma: no cover - trivial
        pass

    def transfer(self, cycle: int) -> None:  # pragma: no cover - trivial
        pass

    def inject(self, cycle: int) -> None:  # pragma: no cover - trivial
        pass

    def control(self, cycle: int) -> None:  # pragma: no cover - trivial
        pass

    def state_dict(self) -> Dict:
        return {name: getattr(self, name) for name in self._state_attrs}

    def load_state_dict(self, state: Dict) -> None:
        for name in self._state_attrs:
            setattr(self, name, state[name])


class Watchdog(SimObject):
    """Periodic liveness + conservation auditor (``control`` phase).

    ``progress_fn`` must be monotonic (e.g.
    :attr:`~repro.sim.stats.ConservationLedger.progress`); ``in_flight_fn``
    reports flits currently inside the network.  Every ``interval``
    cycles the watchdog (a) runs the optional ``audit_fn`` and records a
    violation when it returns a non-None report, and (b) raises
    :class:`LivelockError` after ``patience`` consecutive checks without
    progress while work is in flight.
    """

    _state_attrs = ("_last_progress", "_stalled_checks", "checks",
                    "audit_violations", "last_violation")

    def __init__(self, interval: int, patience: int,
                 progress_fn: Callable[[], int],
                 in_flight_fn: Callable[[], int],
                 audit_fn: Optional[Callable[[], Optional[Dict]]] = None,
                 ) -> None:
        if interval < 1 or patience < 1:
            raise ValueError("interval and patience must be >= 1")
        self.interval = interval
        self.patience = patience
        self.progress_fn = progress_fn
        self.in_flight_fn = in_flight_fn
        self.audit_fn = audit_fn
        self._last_progress = -1
        self._stalled_checks = 0
        self.checks = 0
        self.audit_violations = 0
        self.last_violation: Optional[Dict] = None
        #: trace recorder (observability wiring, never snapshot state)
        self.obs = NULL_RECORDER

    def control(self, cycle: int) -> None:
        if cycle == 0 or cycle % self.interval:
            return
        self.checks += 1
        if self.audit_fn is not None:
            report = self.audit_fn()
            if report is not None:
                self.audit_violations += 1
                self.last_violation = dict(report, cycle=cycle)
                if self.obs.enabled:
                    self.obs.audit_violation(
                        cycle, "sim",
                        int(report.get("imbalance", 0)))
        progress = self.progress_fn()
        in_flight = self.in_flight_fn()
        if in_flight > 0 and progress == self._last_progress:
            self._stalled_checks += 1
            if self._stalled_checks >= self.patience:
                stalled = self._stalled_checks * self.interval
                if self.obs.enabled:
                    self.obs.livelock(cycle, "sim", in_flight, stalled)
                raise LivelockError(
                    cycle, in_flight, stalled,
                    diagnosis={"progress": progress,
                               "audit_violations": self.audit_violations})
        else:
            self._stalled_checks = 0
        self._last_progress = progress


def _overrides(obj: SimObject, name: str) -> bool:
    """True when *obj* provides its own implementation of phase *name*."""
    return getattr(type(obj), name) is not getattr(SimObject, name)


class Simulator:
    """Drives registered :class:`SimObject` instances cycle by cycle.

    Parameters
    ----------
    seed:
        Seed for the simulation-global random generator.  Every stochastic
        decision in the models (traffic destinations, injection coin flips,
        adaptive-route tie breaks, ...) draws from :attr:`rng`.
    engine:
        ``"fast"`` (default) skips sleeping components via the
        activity-tracked scheduler; ``"legacy"`` runs every phase of
        every object each cycle; ``"batch"`` adds compiled quiescence
        fast-forward on top of the fast scheduler (see
        :mod:`repro.sim.batch`).  All produce identical ``state_hash``
        trajectories (see the module docstring).
    """

    ENGINES = ("fast", "legacy", "batch")

    def __init__(self, seed: int = 0, engine: str = "fast") -> None:
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {self.ENGINES}")
        self.cycle: int = 0
        self.rng: np.random.Generator = np.random.default_rng(seed)
        #: fabric-side stream (slot probes, arbitration tie breaks).
        #: Separate from :attr:`rng` so that the network's randomness is
        #: a function of the seed alone, not of how many draws the
        #: workload endpoints made — replaying a recorded trace then
        #: reproduces the original run's slot choices exactly.
        self.net_rng: np.random.Generator = np.random.default_rng(
            np.random.SeedSequence(seed).spawn(1)[0])
        self.engine = engine
        #: trace recorder shared by instrumented components; replaced by
        #: :meth:`repro.obs.attach.Observability.attach` on traced runs.
        #: Never part of :meth:`state_dict` (hashes must not see it).
        self.obs = NULL_RECORDER
        self._phase_lists: dict[str, List[SimObject]] = {p: [] for p in PHASES}
        self._objects: List[SimObject] = []
        self._end_hooks: List[Callable[[int], None]] = []
        self._sleepables: List[SimObject] = []
        self._sleep_enabled = engine in ("fast", "batch")
        self._step = self._step_legacy if engine == "legacy" \
            else self._step_fast
        #: batch-engine controller (compiled quiescence fast-forward);
        #: None for the other engines.  Imported lazily to keep kernel
        #: importable without the batch package's dependencies.
        self._batch = None
        if engine == "batch":
            from repro.sim.batch.engine import BatchEngine
            self._batch = BatchEngine(self)
        # fast-engine awake lists: per-phase lists holding only the
        # objects that must run this cycle (see the module docstring);
        # rebuilt lazily when _wake_pending is set or a sleep occurs
        self._wake_pending = False
        # the phase lists hold *bound methods* (one attribute lookup per
        # object per cycle saved); the sleepables list holds the objects
        # themselves (the sleep loop needs their flags)
        self._awake_deliver: List[Callable[[int], None]] = []
        self._awake_transfer: List[Callable[[int], None]] = []
        self._awake_inject: List[Callable[[int], None]] = []
        self._awake_control: List[Callable[[int], None]] = []
        self._awake_sleepables: List[SimObject] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, obj: SimObject) -> SimObject:
        """Register *obj* for every phase it overrides. Returns *obj*."""
        self._objects.append(obj)
        obj._sim_awake = True
        obj._sim_in_lists = True
        obj._sim_kernel = self
        for phase in PHASES:
            if _overrides(obj, phase):
                self._phase_lists[phase].append(obj)
        if obj._sim_can_sleep:
            self._sleepables.append(obj)
        self._wake_pending = True
        return obj

    def add_end_hook(self, fn: Callable[[int], None]) -> None:
        """Register *fn(cycle)* to run once when :meth:`run` finishes."""
        self._end_hooks.append(fn)

    @property
    def objects(self) -> tuple:
        return tuple(self._objects)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Kernel state: the cycle counter and the full bit-generator
        state of the global RNG (plain ints/dicts, picklable)."""
        return {"cycle": self.cycle,
                "rng": self.rng.bit_generator.state,
                "net_rng": self.net_rng.bit_generator.state}

    def load_state_dict(self, state: Dict) -> None:
        """Restore kernel state in place.

        The RNG state is written onto the *existing* generator so every
        component holding a reference to ``sim.rng`` keeps a valid one.
        """
        self.cycle = int(state["cycle"])
        self.rng.bit_generator.state = state["rng"]
        if "net_rng" in state:
            self.net_rng.bit_generator.state = state["net_rng"]

    # ------------------------------------------------------------------
    # sleep management (fast engine)
    # ------------------------------------------------------------------
    def wake_all(self) -> None:
        """Wake every registered object (used after snapshot restore and
        by :meth:`disable_sleep` — pending work may have appeared in
        components the scheduler believed idle)."""
        for obj in self._objects:
            obj._sim_awake = True
            obj._sim_in_lists = True
        self._wake_pending = True

    def disable_sleep(self) -> None:
        """Permanently fall back to run-everything scheduling.

        Called by the fault-injection subsystem: fault events (link
        kills, router stalls, packet drops) mutate components without
        going through a wake hook, so activity tracking is unsound for
        those runs.
        """
        self._sleep_enabled = False
        self._step = self._step_legacy
        self.wake_all()

    def engine_stats(self) -> Optional[Dict]:
        """Batch-engine introspection counters (skips, vectorized
        windows, probe hysteresis — see
        :meth:`repro.sim.batch.engine.BatchEngine.stats`); None when
        running under the legacy or fast engine, which keep no
        counters."""
        return self._batch.stats() if self._batch is not None else None

    @property
    def sleeping_objects(self) -> int:
        """Number of currently sleeping components (introspection)."""
        return sum(1 for obj in self._sleepables if not obj._sim_awake)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self._step()

    def _step_legacy(self) -> None:
        c = self.cycle
        for obj in self._phase_lists["deliver"]:
            obj.deliver(c)
        for obj in self._phase_lists["transfer"]:
            obj.transfer(c)
        for obj in self._phase_lists["inject"]:
            obj.inject(c)
        for obj in self._phase_lists["control"]:
            obj.control(c)
        self.cycle = c + 1

    def _rebuild_awake_lists(self) -> None:
        """Re-derive the awake lists from the canonical phase lists.

        Filtering the full registration-ordered lists (rather than
        appending wakes as they come in) keeps phase execution order —
        and with it the order of shared-RNG draws — identical to the
        legacy engine's, at a cost that only occurs on sleep/wake
        *transitions*, never on steady-state cycles."""
        self._wake_pending = False
        pl = self._phase_lists
        self._awake_deliver = [o.deliver for o in pl["deliver"]
                               if o._sim_in_lists]
        self._awake_transfer = [o.transfer for o in pl["transfer"]
                                if o._sim_in_lists]
        self._awake_inject = [o.inject for o in pl["inject"]
                              if o._sim_in_lists]
        self._awake_control = [o.control for o in pl["control"]
                               if o._sim_in_lists]
        self._awake_sleepables = [o for o in self._sleepables
                                  if o._sim_in_lists]

    def _step_fast(self) -> None:
        """One cycle over the awake lists only.

        A component woken mid-cycle (flit sent into one of its links)
        re-enters the lists at the next cycle boundary; the phases it
        skips in the wake cycle are provably no-ops (see the module
        docstring), so the state trajectory matches the legacy engine's.
        """
        if self._wake_pending:
            self._rebuild_awake_lists()
        c = self.cycle
        for method in self._awake_deliver:
            method(c)
        for method in self._awake_transfer:
            method(c)
        for method in self._awake_inject:
            method(c)
        for method in self._awake_control:
            method(c)
        # sleep decision: only after the object has just executed a
        # provably no-op cycle (its predicate holds *now*), so any
        # end-of-activity bookkeeping (e.g. the hybrid router's
        # crossbar-usage flags) has already settled to the idle state.
        # The scan runs every 4th cycle: sleeping *later* than strictly
        # possible is always state-safe (the extra cycles are exactly
        # the no-ops the legacy engine runs), and amortising the scan
        # both cuts its cost and batches sleep transitions into fewer
        # awake-list rebuilds.
        if c & 3 == 3:
            slept = False
            for obj in self._awake_sleepables:
                if obj._sim_awake and obj.sim_idle(c):
                    obj._sim_awake = False
                    obj._sim_in_lists = False
                    slept = True
            if slept:
                self._rebuild_awake_lists()
        self.cycle = c + 1

    def run(self, cycles: int, until: Optional[Callable[[], bool]] = None) -> int:
        """Run for *cycles* cycles (or until *until()* returns True).

        Returns the number of cycles actually executed.

        Under the batch engine (and no *until* predicate — skipping
        intermediate cycles would change when the predicate is polled),
        quiescent stretches are fast-forwarded in O(1) jumps and loaded
        stretches of large meshes step as vectorized whole-network
        windows; the state reached at every cycle boundary the caller
        can observe is bit-identical to stepping (see
        :mod:`repro.sim.batch` and :mod:`repro.sim.batch.stepper`).
        """
        executed = 0
        if until is None:
            if self._batch is not None:
                self._batch.run(cycles)
                executed = cycles
                for hook in self._end_hooks:
                    hook(self.cycle)
                return executed
            for _ in range(cycles):
                self._step()
            executed = cycles
        else:
            for _ in range(cycles):
                if until():
                    break
                self._step()
                executed += 1
        for hook in self._end_hooks:
            hook(self.cycle)
        return executed

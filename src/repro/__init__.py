"""repro — Energy-Efficient TDM Hybrid-Switched NoC (Yin et al., 2014).

A cycle-level reproduction of the paper's system: a 2D-mesh NoC in which
packet-switched and circuit-switched messages share one fabric through
time-division multiplexing, plus every substrate the evaluation needs —
the canonical VC wormhole router, the SDM hybrid baseline, an
Orion-style energy/area model, synthetic traffic, and a closed-loop
heterogeneous CPU/GPU multicore model.

Quickstart::

    from repro import Simulator, scheme_config, build_network
    from repro.traffic import make_pattern, attach_synthetic_sources

    cfg = scheme_config("hybrid_tdm_vc4")
    sim = Simulator(seed=1)
    net = build_network(cfg, sim)
    pattern = make_pattern("transpose", net.mesh, sim.rng)
    attach_synthetic_sources(net, pattern, injection_rate=0.2, rng=sim.rng)
    sim.run(2000); net.reset_stats(); sim.run(6000)
    print(net.accepted_load(), net.pkt_latency.mean)
"""

from repro.config import (
    CACHE_LINE_BYTES,
    CircuitConfig,
    NetworkConfig,
    RouterConfig,
    SCHEMES,
    SDMConfig,
    SlotTableConfig,
    VCGatingConfig,
    scheme_config,
    table_i_summary,
)
from repro.sim import Simulator
from repro.network import Network, build_network, Mesh
from repro.energy import (
    AreaModel,
    EnergyParams,
    EnergyReport,
    compute_energy,
    energy_saving,
    router_area_mm2,
)

__version__ = "0.1.0"

__all__ = [
    "CACHE_LINE_BYTES",
    "CircuitConfig",
    "NetworkConfig",
    "RouterConfig",
    "SCHEMES",
    "SDMConfig",
    "SlotTableConfig",
    "VCGatingConfig",
    "scheme_config",
    "table_i_summary",
    "Simulator",
    "Network",
    "build_network",
    "Mesh",
    "AreaModel",
    "EnergyParams",
    "EnergyReport",
    "compute_energy",
    "energy_saving",
    "router_area_mm2",
    "__version__",
]

"""Structured lifecycle tracing (the observability tentpole, S13).

:class:`TraceRecorder` captures typed simulation events — flit
inject/route/eject, circuit setup/teardown/ack walks, slot-steal grants,
slot-wheel resizes, fault firings, watchdog verdicts — as plain dicts
validated against :data:`EVENT_SCHEMA`, and renders them as

* **JSONL** (one event object per line, machine-greppable), and
* **Chrome trace-event JSON** loadable in Perfetto / ``chrome://tracing``
  with one track per router and per NI (instant events on a shared
  process timeline whose timestamp unit is the simulation cycle).

Zero-overhead-when-disabled contract
------------------------------------
Every instrumented component holds ``self.obs = NULL_RECORDER`` by
default and guards each emission site with ``if self.obs.enabled:`` —
the disabled path is a single attribute access and a falsy check, no
call, no allocation.  ``repro bench --baseline`` asserts the fast-engine
throughput cost of that guard stays within tolerance of the committed
``BENCH_simperf.json``.

Recorders are deliberately **outside** the snapshot protocol: no
``state_dict`` ever contains one (like the scheduler's ``_sim_awake``
flag), they draw nothing from the simulator RNG, and they mutate no
simulation state — a traced run is bit-identical to an untraced one.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

#: event name -> required payload fields (on top of the common
#: ``ev``/``cycle``/``track`` triple).  Extra fields are allowed; missing
#: required fields fail validation.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    # flit lifecycle (data plane)
    "flit_inject": ("pkt", "flit", "dst", "cs"),
    "flit_route": ("pkt", "outport"),
    "flit_eject": ("pkt", "flit", "cs", "done"),
    # circuit control plane
    "cs_setup": ("conn", "step"),      # send/reserve/reject/stale/timeout
    "cs_teardown": ("conn", "step"),   # send/release/done/timeout
    "cs_ack": ("conn", "ok"),
    "slot_steal": ("outport", "slot"),
    "cs_orphan": ("pkt", "reason"),    # orphan (lost reservation)/link_fault
    "cs_fallback": ("pkt", "kind"),    # own/hitchhike/vicinity plan failed
    # controllers
    "resize": ("active", "generation"),
    "fault": ("kind",),                # link_fail/transient/stall/slot_corrupt
    "livelock": ("in_flight", "stalled_cycles"),
    "audit_violation": ("imbalance",),
}

#: Perfetto category per event (used for filtering in the trace UI).
_EVENT_CATEGORY: Dict[str, str] = {
    "flit_inject": "flit", "flit_route": "flit", "flit_eject": "flit",
    "cs_setup": "circuit", "cs_teardown": "circuit", "cs_ack": "circuit",
    "slot_steal": "circuit", "cs_orphan": "circuit",
    "cs_fallback": "circuit",
    "resize": "control", "fault": "fault",
    "livelock": "watchdog", "audit_violation": "watchdog",
}

_COMMON_FIELDS = ("ev", "cycle", "track")


def validate_event(record: Dict) -> None:
    """Raise ``ValueError`` unless *record* is a schema-valid event."""
    if not isinstance(record, dict):
        raise ValueError(f"event must be a dict, got {type(record).__name__}")
    for field in _COMMON_FIELDS:
        if field not in record:
            raise ValueError(f"event missing common field {field!r}: {record}")
    ev = record["ev"]
    required = EVENT_SCHEMA.get(ev)
    if required is None:
        raise ValueError(f"unknown event type {ev!r}")
    cycle = record["cycle"]
    if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
        raise ValueError(f"event cycle must be a non-negative int: {record}")
    if not isinstance(record["track"], str) or not record["track"]:
        raise ValueError(f"event track must be a non-empty string: {record}")
    missing = [f for f in required if f not in record]
    if missing:
        raise ValueError(f"event {ev!r} missing fields {missing}: {record}")


def validate_jsonl(path: str) -> int:
    """Validate every line of a JSONL trace file; returns the event
    count.  Raises ``ValueError`` on the first malformed line."""
    count = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            try:
                validate_event(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            count += 1
    return count


def _noop(*_args, **_kwargs) -> None:
    return None


def ensure_parent_dir(path: str) -> None:
    """Create the directory a dump file is about to be written into."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


class NullRecorder:
    """Inert stand-in wired into every component by default.

    ``enabled`` is False so guarded emission sites never call anything;
    any typed emission method resolves to a shared no-op, so even an
    unguarded call is harmless (just slower than a guarded one).
    """

    __slots__ = ()
    enabled = False

    def __getattr__(self, name: str):
        if name.startswith("__"):
            # keep pickling/copying/introspection protocols honest
            raise AttributeError(name)
        return _noop


#: The process-wide disabled recorder (components share this instance).
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Accumulates typed lifecycle events in memory.

    Events beyond *max_events* are counted in :attr:`dropped` instead of
    growing without bound (long traced runs should raise the cap or
    sample a shorter window; the drop count makes truncation explicit).
    """

    enabled = True

    def __init__(self, max_events: int = 500_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.events: List[Dict] = []
        self.dropped = 0
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # core emission
    # ------------------------------------------------------------------
    def _emit(self, ev: str, cycle: int, track: str, fields: Dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        record = {"ev": ev, "cycle": cycle, "track": track}
        record.update(fields)
        self.events.append(record)
        self.counts[ev] = self.counts.get(ev, 0) + 1

    # ------------------------------------------------------------------
    # typed emission API (one method per EVENT_SCHEMA entry)
    # ------------------------------------------------------------------
    def flit_inject(self, cycle: int, track: str, pkt: int, flit: int,
                    dst: int, cs: bool) -> None:
        self._emit("flit_inject", cycle, track,
                   {"pkt": pkt, "flit": flit, "dst": dst, "cs": cs})

    def flit_route(self, cycle: int, track: str, pkt: int,
                   outport: int) -> None:
        self._emit("flit_route", cycle, track,
                   {"pkt": pkt, "outport": outport})

    def flit_eject(self, cycle: int, track: str, pkt: int, flit: int,
                   cs: bool, done: bool) -> None:
        self._emit("flit_eject", cycle, track,
                   {"pkt": pkt, "flit": flit, "cs": cs, "done": done})

    def cs_setup(self, cycle: int, track: str, conn: int, step: str,
                 **extra) -> None:
        self._emit("cs_setup", cycle, track,
                   dict(extra, conn=conn, step=step))

    def cs_teardown(self, cycle: int, track: str, conn: int, step: str,
                    **extra) -> None:
        self._emit("cs_teardown", cycle, track,
                   dict(extra, conn=conn, step=step))

    def cs_ack(self, cycle: int, track: str, conn: int, ok: bool) -> None:
        self._emit("cs_ack", cycle, track, {"conn": conn, "ok": ok})

    def slot_steal(self, cycle: int, track: str, outport: int,
                   slot: int) -> None:
        self._emit("slot_steal", cycle, track,
                   {"outport": outport, "slot": slot})

    def cs_orphan(self, cycle: int, track: str, pkt: int,
                  reason: str) -> None:
        self._emit("cs_orphan", cycle, track, {"pkt": pkt, "reason": reason})

    def cs_fallback(self, cycle: int, track: str, pkt: int,
                    kind: str) -> None:
        self._emit("cs_fallback", cycle, track, {"pkt": pkt, "kind": kind})

    def resize(self, cycle: int, track: str, active: int,
               generation: int) -> None:
        self._emit("resize", cycle, track,
                   {"active": active, "generation": generation})

    def fault(self, cycle: int, track: str, kind: str, **extra) -> None:
        self._emit("fault", cycle, track, dict(extra, kind=kind))

    def livelock(self, cycle: int, track: str, in_flight: int,
                 stalled_cycles: int) -> None:
        self._emit("livelock", cycle, track,
                   {"in_flight": in_flight, "stalled_cycles": stalled_cycles})

    def audit_violation(self, cycle: int, track: str,
                        imbalance: int) -> None:
        self._emit("audit_violation", cycle, track, {"imbalance": imbalance})

    # ------------------------------------------------------------------
    # introspection + output
    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        return {"events": len(self.events), "dropped": self.dropped,
                "counts": dict(sorted(self.counts.items()))}

    def write_jsonl(self, path: str) -> int:
        """Write one event object per line; returns the event count."""
        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.events:
                fh.write(json.dumps(record, sort_keys=True))
                fh.write("\n")
        return len(self.events)

    def write_chrome(self, path: str) -> int:
        """Write the trace in Chrome trace-event format (Perfetto).

        Every event becomes a thread-scoped instant (``ph: "i"``) whose
        timestamp is the simulation cycle; each distinct ``track``
        (``router-N``, ``ni-N``, ``sim``) becomes one named thread so
        the UI shows one lane per router/NI.
        """
        tids = {track: tid for tid, track
                in enumerate(sorted({r["track"] for r in self.events},
                                    key=_track_sort_key))}
        trace_events: List[Dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "repro-noc-sim"},
        }]
        for track, tid in tids.items():
            trace_events.append({"name": "thread_name", "ph": "M",
                                 "pid": 0, "tid": tid,
                                 "args": {"name": track}})
            trace_events.append({"name": "thread_sort_index", "ph": "M",
                                 "pid": 0, "tid": tid,
                                 "args": {"sort_index": tid}})
        for record in self.events:
            args = {k: v for k, v in record.items()
                    if k not in _COMMON_FIELDS}
            trace_events.append({
                "name": record["ev"],
                "cat": _EVENT_CATEGORY.get(record["ev"], "misc"),
                "ph": "i", "s": "t",
                "ts": record["cycle"],
                "pid": 0, "tid": tids[record["track"]],
                "args": args,
            })
        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": trace_events,
                       "displayTimeUnit": "ns"}, fh)
            fh.write("\n")
        return len(self.events)


def _track_sort_key(track: str):
    """Stable lane order: the global ``sim`` lane first, then routers by
    node id, then NIs by node id, then anything else alphabetically."""
    kind_order = {"sim": 0, "router": 1, "ni": 2}
    kind, _, index = track.partition("-")
    order = kind_order.get(kind, 3)
    try:
        node = int(index)
    except ValueError:
        node = -1
    return (order, node, track)


def iter_events(records: Iterable[Dict],
                ev: Optional[str] = None) -> Iterable[Dict]:
    """Filter helper used by tests and ad-hoc analysis scripts."""
    for record in records:
        if ev is None or record["ev"] == ev:
            yield record

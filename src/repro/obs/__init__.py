"""Observability: structured tracing and sampled metrics (S13).

``repro.obs.trace`` is import-light (no simulator dependencies) so the
kernel and the component models can pull :data:`NULL_RECORDER` without a
cycle; the metrics and attach layers import the kernel and are loaded
lazily through this package's ``__getattr__``.
"""

from repro.obs.trace import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    iter_events,
    validate_event,
    validate_jsonl,
)

__all__ = [
    "EVENT_SCHEMA", "NULL_RECORDER", "NullRecorder", "TraceRecorder",
    "iter_events", "validate_event", "validate_jsonl",
    "MetricsRegistry", "MetricsSampler", "Observability",
]


def __getattr__(name):
    if name in ("MetricsRegistry", "MetricsSampler"):
        from repro.obs import metrics
        return getattr(metrics, name)
    if name == "Observability":
        from repro.obs.attach import Observability
        return Observability
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Metrics registry + periodic sampler (the time-series half of S13).

:class:`MetricsRegistry` holds three instrument kinds:

* **counters** — monotonic named totals (``registry.inc(name)``);
* **gauges** — named callables polled at sample time (instantaneous
  state such as in-flight flits or sleeping components);
* **histograms** — fixed-width-bucket :class:`~repro.sim.stats.Histogram`
  instances fed by instrumentation hooks (e.g. packet latency).

:class:`MetricsSampler` is a :class:`~repro.sim.kernel.SimObject`
registered with the simulator when metrics are enabled; every
``interval`` cycles (in the ``control`` phase, after all same-cycle
state changes) it appends one row — cycle, every counter, every gauge —
to the registry's in-memory series.  :meth:`MetricsRegistry.dump`
writes the series plus final histograms as a single JSON document.

Like the trace recorder, the sampler reads simulation state but never
mutates it, draws nothing from the RNG, and is excluded from every
``state_dict`` — attaching metrics cannot change a run's results.
Non-finite gauge values (e.g. a NaN mean latency before the first
packet ejects) are stored as JSON ``null``.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, List

from repro.obs.trace import ensure_parent_dir
from repro.sim.kernel import SimObject
from repro.sim.stats import Histogram

#: format tag written into every metrics dump (consumer compatibility)
METRICS_FORMAT = "repro-metrics/1"


def _finite(value):
    """JSON-safe scalar: non-finite floats become None (JSON null)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class MetricsRegistry:
    """Named counters, gauges and histograms with a sampled time series."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Callable[[], float]] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.samples: List[Dict] = []

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register gauge *name*; *fn* is polled at every sample."""
        self.gauges[name] = fn

    def histogram(self, name: str, bucket_width: int = 1,
                  num_buckets: int = 64) -> Histogram:
        """Create (or return the existing) histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bucket_width,
                                                     num_buckets)
        return hist

    # ------------------------------------------------------------------
    # sampling + output
    # ------------------------------------------------------------------
    def sample(self, cycle: int) -> Dict:
        """Append and return one time-series row for *cycle*."""
        row: Dict = {"cycle": cycle}
        for name, value in self.counters.items():
            row[name] = _finite(value)
        for name, fn in self.gauges.items():
            row[name] = _finite(fn())
        self.samples.append(row)
        return row

    def snapshot(self) -> Dict:
        """Instantaneous counter + gauge values, without appending to
        the time series.

        This is the pull-based shape the service layer's ``/v1/metrics``
        endpoint wants: every scrape sees live values, while the sampled
        series (driven by :class:`MetricsSampler`) stays scrape-rate
        independent.  Gauges are polled now; non-finite values map to
        None exactly as in sampled rows.
        """
        row: Dict = {name: _finite(value)
                     for name, value in sorted(self.counters.items())}
        for name, fn in sorted(self.gauges.items()):
            row[name] = _finite(fn())
        return row

    def as_dict(self, interval: int = 0) -> Dict:
        return {
            "format": METRICS_FORMAT,
            "interval": interval,
            "samples": self.samples,
            "counters": {k: _finite(v)
                         for k, v in sorted(self.counters.items())},
            "histograms": {
                name: {"bucket_width": h.bucket_width,
                       "buckets": h.as_list(),
                       "overflow": h.overflow,
                       "n": h.n}
                for name, h in sorted(self.histograms.items())},
        }

    def dump(self, path: str, interval: int = 0) -> None:
        """Write the full time series + histograms as one JSON file."""
        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(interval), fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")


class MetricsSampler(SimObject):
    """Samples a registry every *interval* cycles (control phase).

    Runs every cycle under both engines (it never opts into sleeping),
    so sampling cadence is identical whether or not the fast scheduler
    has put the rest of the network to sleep.  Cycle 0 is always
    sampled, giving every series a baseline row.
    """

    def __init__(self, registry: MetricsRegistry, interval: int = 100) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self.registry = registry
        self.interval = interval

    def control(self, cycle: int) -> None:
        if cycle % self.interval == 0:
            self.registry.sample(cycle)

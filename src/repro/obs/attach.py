"""Wire tracing/metrics into a built simulation (S13 glue).

:class:`Observability` owns one optional :class:`TraceRecorder` and one
optional :class:`MetricsRegistry` plus the output paths they write to.
:meth:`Observability.attach` pushes the recorder onto every instrumented
component (routers, NIs, connection managers, the slot-size controller,
the fault harness and its watchdog, the simulator itself) and registers
the metrics sampler with a standard gauge set; :meth:`finalize` takes a
last sample and writes all configured files.

Attaching is wiring, not state: nothing here enters a ``state_dict``,
draws RNG, or alters simulation behaviour — a traced run produces the
exact same results as an untraced one (asserted by the obs test suite).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, MetricsSampler
from repro.obs.trace import NULL_RECORDER, TraceRecorder


class Observability:
    """Bundle of trace recorder + metrics registry for one run."""

    def __init__(self, trace_jsonl: Optional[str] = None,
                 trace_chrome: Optional[str] = None,
                 metrics_path: Optional[str] = None,
                 sample_interval: int = 100,
                 max_events: int = 500_000) -> None:
        self.trace_jsonl = trace_jsonl
        self.trace_chrome = trace_chrome
        self.metrics_path = metrics_path
        self.sample_interval = sample_interval
        self.recorder = (TraceRecorder(max_events=max_events)
                         if trace_jsonl or trace_chrome else NULL_RECORDER)
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics_path else None)
        self.sampler: Optional[MetricsSampler] = None
        self._attached = False
        #: summary dict of the last :meth:`finalize` (callers that hand
        #: the bundle to ``run_synthetic`` read the outcome from here)
        self.finalize_summary: Dict = {}

    @property
    def enabled(self) -> bool:
        return bool(self.recorder.enabled or self.registry is not None)

    # ------------------------------------------------------------------
    def attach(self, sim, net) -> "Observability":
        """Wire this bundle into *sim*/*net* (idempotent per instance)."""
        if self._attached:
            return self
        self._attached = True
        recorder = self.recorder
        if recorder.enabled:
            sim.obs = recorder
            for router in net.routers:
                router.obs = recorder
            for ni in net.interfaces:
                ni.obs = recorder
            for manager in getattr(net, "managers", ()):
                manager.obs = recorder
            controller = getattr(net, "size_controller", None)
            if controller is not None:
                controller.obs = recorder
            harness = getattr(net, "fault_harness", None)
            if harness is not None:
                harness.obs = recorder
                if harness.watchdog is not None:
                    harness.watchdog.obs = recorder
        if self.registry is not None:
            self._register_standard(sim, net)
            self.sampler = MetricsSampler(self.registry,
                                          self.sample_interval)
            sim.add(self.sampler)
        return self

    def _register_standard(self, sim, net) -> None:
        """The default gauge/histogram set every metrics run gets."""
        reg = self.registry
        ledger = net.ledger
        reg.gauge("flits_injected", lambda: ledger.injected)
        reg.gauge("flits_ejected", lambda: ledger.ejected)
        reg.gauge("flits_consumed", lambda: ledger.consumed)
        reg.gauge("flits_dropped", lambda: ledger.dropped_total)
        reg.gauge("in_flight", net.in_flight_flits)
        reg.gauge("messages_delivered", lambda: net.messages_delivered)
        reg.gauge("avg_latency", lambda: net.pkt_latency.mean)
        reg.gauge("sleeping_objects", lambda: sim.sleeping_objects)
        clock = getattr(net, "clock", None)
        if clock is not None:
            reg.gauge("slot_wheel_active", lambda: clock.active)
            reg.gauge("slot_wheel_generation", lambda: clock.generation)
        controller = getattr(net, "size_controller", None)
        if controller is not None:
            reg.gauge("slot_wheel_resizes", lambda: controller.resizes)

        latency_hist = reg.histogram("pkt_latency", bucket_width=4,
                                     num_buckets=64)
        for ni in net.interfaces:
            previous = ni.on_packet_ejected

            def hook(pkt, cycle, _prev=previous, _hist=latency_hist):
                if _prev is not None:
                    _prev(pkt, cycle)
                if pkt.inject_cycle is not None:
                    _hist.add(cycle - pkt.inject_cycle)

            ni.on_packet_ejected = hook

    # ------------------------------------------------------------------
    def finalize(self, sim) -> Dict:
        """Take a closing sample, write every configured file, and
        return a summary dict (event counts, file paths)."""
        summary: Dict = {}
        if self.registry is not None:
            samples = self.registry.samples
            if not samples or samples[-1]["cycle"] != sim.cycle:
                self.registry.sample(sim.cycle)
            if self.metrics_path:
                self.registry.dump(self.metrics_path, self.sample_interval)
                summary["metrics_path"] = self.metrics_path
            summary["metrics_samples"] = len(self.registry.samples)
        if self.recorder.enabled:
            summary.update(self.recorder.summary())
            if self.trace_jsonl:
                self.recorder.write_jsonl(self.trace_jsonl)
                summary["trace_jsonl"] = self.trace_jsonl
            if self.trace_chrome:
                self.recorder.write_chrome(self.trace_chrome)
                summary["trace_chrome"] = self.trace_chrome
        self.finalize_summary = summary
        return summary

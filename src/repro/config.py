"""Configuration dataclasses for the NoC models.

Defaults reproduce Table I of the paper:

=====================  ==========================================
Topology               36-node 2D mesh (6x6)
Technology             45 nm, 1.0 V, 1.5 GHz
Routing                minimal adaptive (configuration packets),
                       X-Y (all other packets)
Channel width          16 bytes
Packet size            1 flit (configuration), 4 flits
                       (circuit-switched), 5 flits (packet-switched
                       and circuit-switched with vicinity sharing)
Slot tables            128 entries
Virtual channels       4 per port
Buffer depth per VC    5 flits
=====================  ==========================================

Scheme presets (:func:`scheme_config`) give the exact configurations the
paper evaluates: ``packet_vc4``, ``hybrid_sdm_vc4``, ``hybrid_tdm_vc4``,
``hybrid_tdm_vct``, ``hybrid_tdm_hop_vc4`` and ``hybrid_tdm_hop_vct``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Tuple

#: Cache line size assumed throughout (bytes).  A data message is one line.
CACHE_LINE_BYTES = 64

#: Names of the evaluated network schemes.
SCHEMES = (
    "packet_vc4",
    "hybrid_sdm_vc4",
    "hybrid_tdm_vc4",
    "hybrid_tdm_vct",
    "hybrid_tdm_hop_vc4",
    "hybrid_tdm_hop_vct",
)


@dataclass
class RouterConfig:
    """Canonical virtual-channel wormhole router parameters."""

    num_vcs: int = 4              #: data virtual channels per input port
    vc_depth: int = 5             #: buffer depth (flits) per VC
    channel_width_bytes: int = 16  #: flit width == physical channel width
    #: Cycles between buffer write and earliest switch-allocation
    #: eligibility.  2 models the classic BW/RC -> VA/SA -> ST pipeline;
    #: together with the 1-cycle switch + 1-cycle link a packet-switched
    #: hop costs ``ps_pipeline_latency + 2`` cycles minimum.
    ps_pipeline_latency: int = 2
    #: Dedicated escape VC for single-flit configuration packets.  Kept
    #: separate from the data VCs so minimal-adaptive (odd-even) config
    #: routing cannot deadlock against X-Y data routing.
    config_vc_depth: int = 5

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.vc_depth < 1:
            raise ValueError("vc_depth must be >= 1")
        if self.channel_width_bytes < 1:
            raise ValueError("channel_width_bytes must be >= 1")
        if self.ps_pipeline_latency < 0:
            raise ValueError("ps_pipeline_latency must be >= 0")


@dataclass
class SlotTableConfig:
    """TDM slot-table parameters (Section II-C)."""

    size: int = 128               #: physical entries S per input port
    #: fraction of entries that may hold reservations before new slot
    #: allocation is prohibited (starvation guard, Section II-B)
    reserve_cap: float = 0.9
    #: Section II-C dynamic time-division granularity: start with a small
    #: active wheel (high per-circuit bandwidth, short slot waits) and
    #: double it whenever path allocation keeps failing, up to ``size``.
    dynamic_sizing: bool = True
    initial_active: int = 32      #: active entries at reset when dynamic
    #: consecutive network-wide setup failures that trigger a doubling
    resize_fail_threshold: int = 48

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("slot table size must be >= 2")
        if not (0.0 < self.reserve_cap <= 1.0):
            raise ValueError("reserve_cap must be in (0, 1]")
        if self.initial_active < 2 or self.initial_active > self.size:
            raise ValueError("initial_active must be in [2, size]")


@dataclass
class CircuitConfig:
    """Circuit-switching behaviour (Sections II-A, II-B, III-A)."""

    enabled: bool = True
    #: consecutive slots reserved per connection; 4 slots carry one 64 B
    #: cache line over 16 B flits.  Vicinity sharing adds 1 header slot.
    duration: int = 4
    #: messages to the same destination within ``freq_window`` cycles that
    #: make the pair "frequently communicating" and trigger a path setup
    setup_msg_threshold: int = 4
    freq_window: int = 512
    #: a failed setup is retried with a different slot id this many times
    #: before the source gives up (it will re-qualify via frequency later)
    max_setup_retries: int = 3
    #: connections idle for this many cycles become eviction candidates
    idle_evict_cycles: int = 4000
    #: hard cap on the slot wait a message accepts; beyond it the message
    #: is packet-switched regardless of queueing estimates (Section II-A).
    #: The latency comparison inside the decision handles the common case;
    #: this cap bounds worst-case round booking.
    stall_threshold: int = 128
    slot_stealing: bool = True    #: packet flits may steal idle CS slots
    hitchhiker: bool = False      #: Section III-A1 path sharing
    vicinity: bool = False        #: Section III-A2 path sharing
    dlt_size: int = 8             #: destination-lookup-table entries/node
    #: sharing failures (2-bit saturating counter) before a dedicated
    #: setup is generated; the paper uses the '10' state == 2 failures
    sharing_fail_threshold: int = 2
    # -- resilience (fault-injection studies) ---------------------------
    #: cycles a PENDING setup (or TEARING teardown) may remain
    #: unacknowledged before the manager times it out and retries.  0
    #: disables the whole resilience layer (the protocol then assumes a
    #: perfect fabric, the paper's implicit model).
    setup_timeout: int = 0
    #: retry-delay growth per timed-out attempt (bounded exponential
    #: backoff): attempt k is resent ``setup_timeout * backoff_factor**k``
    #: cycles after its timeout, capped at ``backoff_cap`` multiples.
    backoff_factor: int = 2
    backoff_cap: int = 8
    #: consecutive setup failures/timeouts to one destination before the
    #: pair is demoted to pure packet switching for ``demote_cycles``
    demote_threshold: int = 3
    demote_cycles: int = 4000

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.dlt_size < 1:
            raise ValueError("dlt_size must be >= 1")
        if self.setup_timeout < 0:
            raise ValueError("setup_timeout must be >= 0")
        if self.backoff_factor < 1 or self.backoff_cap < 1:
            raise ValueError("backoff parameters must be >= 1")
        if self.demote_threshold < 1 or self.demote_cycles < 0:
            raise ValueError("invalid demotion parameters")

    @property
    def resilience_enabled(self) -> bool:
        """True when the timeout/backoff/demotion machinery is active."""
        return self.setup_timeout > 0


@dataclass
class VCGatingConfig:
    """Aggressive VC power gating (Section III-B)."""

    enabled: bool = False
    epoch: int = 256              #: cycles between utilisation checks
    threshold_high: float = 0.55  #: activate one more VC above this
    threshold_low: float = 0.20   #: deactivate one VC below this
    min_vcs: int = 2              #: never gate below this many VCs/port
    #: gating metric: 'utilisation' (the paper's policy) or 'queue_delay'
    #: (the Section V-B4 future-work suggestion: gate on packet latency)
    metric: str = "utilisation"
    #: queue-delay thresholds in cycles (used when metric='queue_delay')
    delay_high: float = 8.0
    delay_low: float = 3.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.threshold_low < self.threshold_high <= 1.0):
            raise ValueError("need 0 <= low < high <= 1")
        if self.min_vcs < 1:
            raise ValueError("min_vcs must be >= 1")
        if self.metric not in ("utilisation", "queue_delay"):
            raise ValueError(f"unknown gating metric {self.metric!r}")
        if not (0.0 <= self.delay_low < self.delay_high):
            raise ValueError("need 0 <= delay_low < delay_high")


@dataclass
class FaultConfig:
    """Deterministic, seeded fault injection (see ``repro.faults``).

    All stochastic draws come from the simulation-global generator, so a
    ``(seed, config)`` pair fully determines which faults strike and
    when.  Disabled by default: a default-config run performs zero extra
    RNG draws and is bit-identical to a build without this subsystem.
    """

    enabled: bool = False
    #: probability that an injected CONFIG message (SETUP / TEARDOWN /
    #: ACK) is silently lost before entering the network
    config_drop_rate: float = 0.0
    #: number of directed inter-router links that fail permanently ...
    link_fail_count: int = 0
    #: ... at this cycle
    link_fail_cycle: int = 1000
    #: per-cycle probability of a transient link blackout striking a
    #: random healthy directed link for ``transient_duration`` cycles
    transient_link_rate: float = 0.0
    transient_duration: int = 200
    #: per-cycle probability of a random router stalling (its transfer
    #: phase frozen) for ``router_stall_duration`` cycles
    router_stall_rate: float = 0.0
    router_stall_duration: int = 50
    #: per-cycle probability of corrupting (invalidating) one reserved
    #: slot-table entry of a random router input port
    slot_corrupt_rate: float = 0.0
    #: orphaned-reservation garbage collection period (cycles; 0 = off)
    orphan_gc_interval: int = 2048
    # -- watchdog -------------------------------------------------------
    watchdog: bool = True       #: install the sim watchdog when enabled
    watchdog_interval: int = 512   #: cycles between watchdog checks
    #: consecutive no-progress checks (with work in flight) that raise
    #: :class:`repro.sim.kernel.LivelockError`
    watchdog_patience: int = 4
    audit: bool = True          #: run the flit-conservation audit

    def __post_init__(self) -> None:
        for name in ("config_drop_rate", "transient_link_rate",
                     "router_stall_rate", "slot_corrupt_rate"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.link_fail_count < 0:
            raise ValueError("link_fail_count must be >= 0")
        if self.watchdog_interval < 1 or self.watchdog_patience < 1:
            raise ValueError("watchdog parameters must be >= 1")


@dataclass
class SDMConfig:
    """Space-division-multiplexed hybrid baseline (Jerger et al. [5])."""

    planes: int = 4               #: physical link partitions

    def __post_init__(self) -> None:
        if self.planes < 2:
            raise ValueError("SDM needs at least 2 planes")


@dataclass
class CheckpointConfig:
    """Crash-safe snapshotting of long runs (off by default: zero
    overhead, bit-identical default artefacts)."""

    enabled: bool = False
    interval_cycles: int = 0      #: snapshot period; 0 = only explicit
    directory: str = ""           #: where snapshots land ("" = run dir)
    keep: int = 2                 #: rotated snapshots retained on disk

    def __post_init__(self) -> None:
        if self.interval_cycles < 0:
            raise ValueError("interval_cycles must be >= 0")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")


@dataclass
class SupervisorConfig:
    """Supervised sweep execution: per-point subprocesses with timeouts
    and capped-backoff retries (off by default)."""

    enabled: bool = False
    timeout_s: float = 300.0      #: wall-clock budget per sweep point
    max_retries: int = 2          #: retries for transient failures
    backoff_s: float = 1.0        #: first retry delay
    backoff_factor: float = 2.0   #: exponential growth per retry
    backoff_cap_s: float = 30.0   #: delay ceiling
    jobs: int = 0                 #: concurrent points; 0 = os.cpu_count()
    #: heartbeat staleness after which a point's lease is reclaimed and
    #: the point re-queued — catches workers that die without an
    #: observable exit status (SIGKILL, OOM, host loss).  0 disables
    #: lease expiry (exit-status supervision only).
    lease_ttl_s: float = 60.0
    #: period of the worker-side heartbeat file writes
    heartbeat_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = one per CPU)")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.lease_ttl_s < 0:
            raise ValueError("lease_ttl_s must be >= 0 (0 = disabled)")
        if 0 < self.lease_ttl_s <= self.heartbeat_interval_s:
            raise ValueError(
                f"heartbeat_interval_s ({self.heartbeat_interval_s}) must "
                f"be smaller than lease_ttl_s ({self.lease_ttl_s}): a "
                f"worker that heartbeats slower than its lease TTL is "
                f"guaranteed to be reclaimed as dead while healthy")
        if 0 < self.lease_ttl_s < 2 * self.heartbeat_interval_s:
            raise ValueError(
                f"lease_ttl_s ({self.lease_ttl_s}) must be at least 2x "
                f"heartbeat_interval_s ({self.heartbeat_interval_s}): one "
                f"delayed heartbeat would otherwise expire a healthy "
                f"worker's lease")


@dataclass
class NetworkConfig:
    """Complete description of one simulated network instance."""

    width: int = 6
    height: int = 6
    router: RouterConfig = field(default_factory=RouterConfig)
    slot_table: SlotTableConfig = field(default_factory=SlotTableConfig)
    circuit: CircuitConfig = field(default_factory=CircuitConfig)
    vc_gating: VCGatingConfig = field(default_factory=VCGatingConfig)
    sdm: SDMConfig = field(default_factory=SDMConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    #: 'packet', 'tdm' or 'sdm'
    switching: str = "tdm"
    #: recycle dead flits through a free-list pool instead of allocating
    #: fresh objects (see :func:`repro.network.flit.enable_flit_pool`);
    #: behaviour-identical, off by default
    flit_pool: bool = False

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("mesh must be at least 2x2")
        if self.switching not in ("packet", "tdm", "sdm"):
            raise ValueError(f"unknown switching mode {self.switching!r}")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def data_flits_per_line(self) -> int:
        """Flits needed for one cache line on the full channel width."""
        w = self.router.channel_width_bytes
        return -(-CACHE_LINE_BYTES // w)  # ceil div

    def packet_size(self, kind: str) -> int:
        """Packet sizes from Table I.

        ``config``  -> 1 flit
        ``cs_data`` -> 4 flits (cache line, no head needed on a circuit)
        ``ps_data`` -> 5 flits (head + cache line)
        ``cs_vicinity`` -> 5 flits (header flit needed after hop-off)
        ``ctrl``    -> 1 flit (request/coherence control message)
        """
        d = self.data_flits_per_line
        sizes = {
            "config": 1,
            "ctrl": 1,
            "cs_data": d,
            "ps_data": d + 1,
            "cs_vicinity": d + 1,
        }
        try:
            return sizes[kind]
        except KeyError:
            raise ValueError(f"unknown packet kind {kind!r}") from None


def scheme_config(
    scheme: str,
    width: int = 6,
    height: int = 6,
    slot_table_size: int = 128,
    **overrides,
) -> NetworkConfig:
    """Build the :class:`NetworkConfig` for a named paper scheme.

    ``overrides`` are applied to the top-level :class:`NetworkConfig`
    via :func:`dataclasses.replace` after the preset is constructed.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")

    cfg = NetworkConfig(
        width=width,
        height=height,
        slot_table=SlotTableConfig(
            size=slot_table_size,
            initial_active=min(32, slot_table_size)),
    )
    if scheme == "packet_vc4":
        cfg = replace(cfg, switching="packet",
                      circuit=replace(cfg.circuit, enabled=False))
    elif scheme == "hybrid_sdm_vc4":
        cfg = replace(cfg, switching="sdm")
    elif scheme == "hybrid_tdm_vc4":
        cfg = replace(cfg, switching="tdm")
    elif scheme == "hybrid_tdm_vct":
        cfg = replace(cfg, switching="tdm",
                      vc_gating=replace(cfg.vc_gating, enabled=True))
    elif scheme == "hybrid_tdm_hop_vc4":
        cfg = replace(cfg, switching="tdm",
                      circuit=replace(cfg.circuit, hitchhiker=True,
                                      vicinity=True))
    elif scheme == "hybrid_tdm_hop_vct":
        cfg = replace(
            cfg,
            switching="tdm",
            circuit=replace(cfg.circuit, hitchhiker=True, vicinity=True),
            vc_gating=replace(cfg.vc_gating, enabled=True),
        )
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg


def config_as_dict(cfg: NetworkConfig) -> dict:
    """Flatten a config to a plain dict (for reports and CSV headers)."""
    return dataclasses.asdict(cfg)


def table_i_summary(cfg: NetworkConfig) -> Tuple[Tuple[str, str], ...]:
    """Render the Table-I style parameter summary for *cfg*."""
    r = cfg.router
    return (
        ("Topology", f"{cfg.num_nodes}-node, 2D-Mesh ({cfg.width}x{cfg.height})"),
        ("Technology", "45nm technology at 1.0V, 1.5GHz"),
        ("Routing", "Minimal Adaptive (configuration packet); X-Y (other packet)"),
        ("Channel Width", f"{r.channel_width_bytes} Bytes"),
        ("Packet Size", "1 flit (config); "
                        f"{cfg.packet_size('cs_data')} flits (circuit-switched); "
                        f"{cfg.packet_size('ps_data')} flits (packet-switched)"),
        ("Slot Tables", f"{cfg.slot_table.size} entries"),
        ("Virtual Channels", f"{r.num_vcs}/port"),
        ("Buffer size per VC", f"{r.vc_depth} in depth"),
    )

"""TDM hybrid-switched router (S6, Section II-D and Figure 2).

Extends the canonical VC wormhole router with:

* per-input-port slot tables and the arrival demultiplexer — an arriving
  flit whose slot-table entry is valid *and* whose circuit lookahead bit
  is set proceeds through the pre-configured crossbar in a single cycle
  (no buffering), reaching the downstream router two cycles later;
* circuit-switched injections from the local NI, including hitchhiker
  injections onto circuits passing through this router (Section III-A1);
* time-slot stealing — a packet-switched flit may use the crossbar in a
  reserved slot whose circuit flit did not show up (the upstream 1-bit
  signal is modelled by inspecting actual arrivals, which the simulator
  knows exactly);
* in-router processing of setup/teardown configuration messages at
  route-compute time (Section II-B / Figure 1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import NetworkConfig
from repro.core.slot_table import RouterSlotState, SlotClock
from repro.network.flit import ConfigType, Flit, MessageClass
from repro.network.router import PacketRouter
from repro.network.topology import LOCAL, Mesh, NUM_PORTS


class CSInjection:
    """One scheduled circuit-switched flit injection at the local port."""

    __slots__ = ("flit", "expected_outport", "on_ok", "on_fail", "token")

    def __init__(self, flit: Flit, expected_outport: Optional[int],
                 on_ok: Callable, on_fail: Callable, token: dict) -> None:
        self.flit = flit
        self.expected_outport = expected_outport
        self.on_ok = on_ok
        self.on_fail = on_fail
        self.token = token  # shared per-packet dict with 'cancelled' flag


class HybridRouter(PacketRouter):
    """Hybrid-switched router: packet pipeline + TDM circuit pipeline."""

    def __init__(self, node: int, cfg: NetworkConfig, mesh: Mesh,
                 clock: SlotClock) -> None:
        super().__init__(node, cfg, mesh)
        self.clock = clock
        self.slot_state = RouterSlotState(clock, cfg.slot_table.reserve_cap)
        self.dlt = None                      # node DLT (sharing enabled)
        #: manager callback for setups this router rejects
        self.on_setup_rejected: Optional[Callable] = None
        #: called (conn_id, circuit_src, cycle) when a circuit flit hit a
        #: dead link here and was diverted to the packet-switched network
        self.on_circuit_fault: Optional[Callable] = None
        #: called (payload, cycle) when a teardown walk completed its
        #: full path at this router (terminal hop)
        self.on_teardown_done: Optional[Callable] = None
        self._cs_inject: Dict[int, List[CSInjection]] = {}
        self._cs_in_used = [False] * NUM_PORTS
        self._cs_out_used = [False] * NUM_PORTS

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def transfer(self, cycle: int) -> None:
        for i in range(NUM_PORTS):
            self._cs_in_used[i] = False
            self._cs_out_used[i] = False
        self._process_arrivals(cycle)
        self._process_cs_injections(cycle)
        if self._buffered_flits:
            self._route_and_va(cycle)
            self._sa_st(cycle)
        if self.gating is not None:
            self._sample_utilisation()

    def sim_idle(self, cycle: int) -> bool:
        """Packet-side idleness plus: no scheduled circuit injection and
        the crossbar-usage flags have settled back to all-False (they
        are reset at the *start* of the next transfer, so a router that
        carried a circuit flit this cycle stays awake one more cycle to
        run that reset — keeping its snapshot identical to legacy's)."""
        if self._cs_inject:
            return False
        for used in self._cs_in_used:
            if used:
                return False
        for used in self._cs_out_used:
            if used:
                return False
        return PacketRouter.sim_idle(self, cycle)

    # ------------------------------------------------------------------
    # circuit-switched datapath
    # ------------------------------------------------------------------
    def _demux_arrival(self, inport: int, flit: Flit, cycle: int) -> None:
        # "For each incoming flit, the router looks up the slot table"
        # (Section II) — the demux lookup is paid by every arrival
        self.counters.inc("slot_read")
        if not flit.is_circuit:
            self._buffer_write(inport, flit, cycle)
            return
        slot = self.clock.slot(cycle)
        hit = self.slot_state.lookup_in(inport, slot)
        if hit is not None:
            outport, conn = hit
            if not self._link_up(outport):
                # the circuit crosses a dead link: divert the flit to the
                # local NI; the hop-off path carries the packet onward
                # through the (fault-aware) packet-switched network, and
                # the source is notified so it can tear down / demote
                self.counters.inc("cs_link_fault")
                if self.obs.enabled:
                    self.obs.cs_orphan(cycle, self._obs_track,
                                       flit.packet.id, "link_fault")
                if flit.is_head and self.on_circuit_fault is not None:
                    self.on_circuit_fault(conn, flit.packet.src, cycle)
                flit.is_circuit = False
                flit.packet.circuit = False
                self._cs_traverse(inport, LOCAL, flit, cycle, orphan=True)
                return
            self._cs_traverse(inport, outport, flit, cycle)
            return
        # Orphaned circuit flit: its reservation disappeared mid-flight
        # (teardown race or a dynamic-sizing table reset).  Eject it here;
        # the NI's hop-off path forwards the packet to its destination
        # through the packet-switched network.
        self.counters.inc("cs_orphan")
        if self.obs.enabled:
            self.obs.cs_orphan(cycle, self._obs_track,
                               flit.packet.id, "orphan")
        flit.is_circuit = False
        flit.packet.circuit = False
        self._cs_traverse(inport, LOCAL, flit, cycle, orphan=True)

    def _cs_traverse(self, inport: int, outport: int, flit: Flit,
                     cycle: int, orphan: bool = False) -> None:
        """Single-cycle circuit traversal through the crossbar."""
        self._cs_in_used[inport] = True
        if not orphan:
            # an orphan ejection does not really use a reserved output
            self._cs_out_used[outport] = True
        self.counters.inc("cs_xbar")
        self.counters.inc("cs_latch")
        if outport != LOCAL:
            self.counters.inc("link")
        flit.packet.hops_taken += 1
        self.out_links[outport].send(flit, cycle)

    # ------------------------------------------------------------------
    def schedule_cs_injection(self, cycle: int, flit: Flit,
                              expected_outport: Optional[int],
                              on_ok: Callable, on_fail: Callable,
                              token: dict) -> None:
        """Register a circuit flit to enter the local crossbar input at
        exactly *cycle* (the NI computed the slot-aligned time)."""
        inj = CSInjection(flit, expected_outport, on_ok, on_fail, token)
        self._cs_inject.setdefault(cycle, []).append(inj)
        self._sim_awake = True

    def _process_cs_injections(self, cycle: int) -> None:
        injections = self._cs_inject.pop(cycle, None)
        if not injections:
            return
        slot = self.clock.slot(cycle)
        for inj in injections:
            if inj.token.get("cancelled"):
                continue
            if self._cs_in_used[LOCAL]:
                inj.on_fail(inj.flit)
                continue
            if inj.expected_outport is None:
                # own connection: the local input table holds the route
                self.counters.inc("slot_read")
                hit = self.slot_state.lookup_in(LOCAL, slot)
                if hit is None:
                    inj.on_fail(inj.flit)   # stale connection
                    continue
                outport, _conn = hit
            else:
                # hitchhiker: ride an idle reserved slot of a circuit
                # passing through this router (Section III-A1)
                outport = inj.expected_outport
                self.counters.inc("slot_read")
                if (not self.slot_state.output_reserved(outport, slot)
                        or self._cs_out_used[outport]):
                    inj.on_fail(inj.flit)   # contention with the owner
                    continue
            if self._cs_out_used[outport]:
                inj.on_fail(inj.flit)
                continue
            if not self._link_up(outport):
                # first hop of the circuit is dead: fall back to packet
                # switching before the flit ever enters the fabric
                self.counters.inc("cs_link_fault")
                inj.on_fail(inj.flit)
                continue
            self._cs_traverse(LOCAL, outport, inj.flit, cycle)
            inj.on_ok(inj.flit)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Packet-router state plus slot tables, the node DLT and the
        pending circuit-injection schedule.

        CSInjection callbacks are closures over the NI and cannot be
        serialized: only ``(flit, expected_outport, token)`` is captured
        and the network-level load rebinds fresh callbacks through
        :meth:`rebind_cs_injections` (the token dict carries everything
        the NI needs, and its identity is shared with the NI's own
        outstanding-circuit state through the one-pass freeze)."""
        state = super().state_dict()
        state.update({
            "slot_tables": list(self.slot_state.in_tables),
            "out_owner": [list(row) for row in self.slot_state.out_owner],
            "dlt": self.dlt,
            "cs_inject": {
                cycle: [(inj.flit, inj.expected_outport, inj.token)
                        for inj in lst]
                for cycle, lst in self._cs_inject.items()},
            "cs_in_used": list(self._cs_in_used),
            "cs_out_used": list(self._cs_out_used),
        })
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.slot_state.in_tables = list(state["slot_tables"])
        self.slot_state.out_owner = [list(row) for row in state["out_owner"]]
        self.dlt = state["dlt"]
        self._cs_in_used = list(state["cs_in_used"])
        self._cs_out_used = list(state["cs_out_used"])
        # callbacks are rebuilt once the NI reference is known
        self._cs_inject_raw = state["cs_inject"]
        self._cs_inject = {}

    def rebind_cs_injections(self, ni) -> None:
        """Rebuild the pending-injection schedule with fresh NI-bound
        callbacks (called by the network after both sides loaded)."""
        raw = getattr(self, "_cs_inject_raw", None)
        if raw is None:
            return
        del self._cs_inject_raw
        self._cs_inject = {
            cycle: [CSInjection(flit, exp, *ni.make_cs_callbacks(token), token)
                    for flit, exp, token in entries]
            for cycle, entries in raw.items()}

    # ------------------------------------------------------------------
    # packet pipeline interaction (time-slot stealing)
    # ------------------------------------------------------------------
    def _cs_used_inports(self, cycle: int) -> List[bool]:
        scratch = self._used_in_scratch
        cs = self._cs_in_used
        for i in range(NUM_PORTS):
            scratch[i] = cs[i]
        return scratch

    def _out_blocked_for_ps(self, outport: int, cycle: int) -> bool:
        if self._cs_out_used[outport]:
            return True
        slot = self.clock.slot(cycle)
        if self.slot_state.output_reserved(outport, slot):
            if self.cfg.circuit.slot_stealing:
                return False        # reserved but idle: stealable
            return True
        return False

    def _traverse(self, outport: int, inport: int, invc: int, ovc: int,
                  cycle: int) -> None:
        # count actual steals: a PS traversal in a reserved-but-idle slot
        slot = self.clock.slot(cycle)
        if self.slot_state.output_reserved(outport, slot):
            self.counters.inc("slot_steal")
            if self.obs.enabled:
                self.obs.slot_steal(cycle, self._obs_track, outport, slot)
        super()._traverse(outport, inport, invc, ovc, cycle)

    # ------------------------------------------------------------------
    # configuration-message processing (Section II-B)
    # ------------------------------------------------------------------
    def _compute_route(self, inport: int, head: Flit,
                       cycle: int) -> Optional[int]:
        pkt = head.packet
        if pkt.mclass != MessageClass.CONFIG:
            return super()._compute_route(inport, head, cycle)
        payload = pkt.msg.payload
        if payload.ctype == ConfigType.SETUP:
            return self._process_setup(inport, pkt, payload, cycle)
        if payload.ctype == ConfigType.TEARDOWN:
            return self._process_teardown(inport, pkt, payload, cycle)
        # acknowledgements route adaptively like any config packet
        return self._route_adaptive(pkt, inport)

    def _process_setup(self, inport: int, pkt, payload,
                       cycle: int) -> Optional[int]:
        if payload.generation != self.clock.generation:
            # the wheel was resized while this setup travelled: its slot
            # arithmetic is stale, and any prefix it reserved was wiped
            # by the reset — reject so no unreachable reservation forms
            self.counters.inc("setup_stale")
            if self.obs.enabled:
                self.obs.cs_setup(cycle, self._obs_track,
                                  payload.conn_id, "stale")
            if self.on_setup_rejected is not None:
                self.on_setup_rejected(payload, cycle)
            return None
        st = self.slot_state
        dur = payload.duration
        slot = self.clock.wrap(payload.slot_id)
        if pkt.dst == self.node:
            candidates = [LOCAL]
        else:
            candidates = self._adaptive_candidates_by_credit(pkt)
            if (self.link_health is not None
                    and self.link_health.any_faults):
                # never reserve a circuit across a dead link; an empty
                # candidate list falls through to the rejection below
                candidates = [p for p in candidates if self._link_up(p)]
        for outport in candidates:
            if st.can_reserve(inport, outport, slot, dur):
                st.reserve(inport, outport, slot, dur, payload.conn_id)
                self.counters.inc("slot_write", dur)
                if self.obs.enabled:
                    self.obs.cs_setup(cycle, self._obs_track,
                                      payload.conn_id, "reserve",
                                      slot=slot, outport=outport)
                if self.dlt is not None and inport != LOCAL:
                    # nodes along the path learn the circuit for sharing
                    self.dlt.add(payload.orig_dst, slot, dur, outport,
                                 payload.conn_id)
                    self.counters.inc("dlt_write")
                if outport == LOCAL:
                    return LOCAL  # ejects; NI acknowledges success
                payload.slot_id = self.clock.wrap(slot + 2)
                return outport
        # no output can host the reservation: reject (Figure 1, setups
        # 2 and 3) and have this node's manager NACK the source
        self.counters.inc("setup_rejected")
        if self.obs.enabled:
            self.obs.cs_setup(cycle, self._obs_track,
                              payload.conn_id, "reject")
        if self.on_setup_rejected is not None:
            self.on_setup_rejected(payload, cycle)
        return None  # consume the setup packet here

    def _adaptive_candidates_by_credit(self, pkt) -> List[int]:
        from repro.network.routing import oe_candidate_outports
        cands = oe_candidate_outports(self.mesh, self.node, pkt.src, pkt.dst)
        if len(cands) > 1:
            cands = sorted(cands, key=lambda o: -sum(self.credits[o]))
        return cands

    def _process_teardown(self, inport: int, pkt, payload,
                          cycle: int) -> Optional[int]:
        if payload.generation != self.clock.generation:
            return None  # tables were reset wholesale; nothing to clear
        slot = self.clock.wrap(payload.slot_id)
        outport = self.slot_state.release(inport, slot, payload.duration,
                                          payload.conn_id)
        if outport is None:
            return None   # reached the point where the setup had failed
        self.counters.inc("slot_write", payload.duration)
        if self.obs.enabled:
            self.obs.cs_teardown(cycle, self._obs_track,
                                 payload.conn_id, "release")
        if self.dlt is not None:
            self.dlt.remove_conn(payload.conn_id)
        if outport == LOCAL:
            # full path torn down; under the resilience protocol this
            # node confirms the walk back to the source
            if self.obs.enabled:
                self.obs.cs_teardown(cycle, self._obs_track,
                                     payload.conn_id, "done")
            if self.on_teardown_done is not None:
                self.on_teardown_done(payload, cycle)
            return None
        payload.slot_id = self.clock.wrap(slot + 2)
        return outport

"""TDM hybrid-switched router (S6, Section II-D and Figure 2).

Extends the canonical VC wormhole router with:

* per-input-port slot tables and the arrival demultiplexer — an arriving
  flit whose slot-table entry is valid *and* whose circuit lookahead bit
  is set proceeds through the pre-configured crossbar in a single cycle
  (no buffering), reaching the downstream router two cycles later;
* circuit-switched injections from the local NI, including hitchhiker
  injections onto circuits passing through this router (Section III-A1);
* time-slot stealing — a packet-switched flit may use the crossbar in a
  reserved slot whose circuit flit did not show up (the upstream 1-bit
  signal is modelled by inspecting actual arrivals, which the simulator
  knows exactly);
* in-router processing of setup/teardown configuration messages at
  route-compute time (Section II-B / Figure 1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import NetworkConfig
from repro.core.slot_table import RouterSlotState, SlotClock
from repro.network.flit import ConfigType, Flit, FlitKind, MessageClass
from repro.network.router import PacketRouter
from repro.network.topology import LOCAL, Mesh, NUM_PORTS


class CSInjection:
    """One scheduled circuit-switched flit injection at the local port."""

    __slots__ = ("flit", "expected_outport", "on_ok", "on_fail", "token")

    def __init__(self, flit: Flit, expected_outport: Optional[int],
                 on_ok: Callable, on_fail: Callable, token: dict) -> None:
        self.flit = flit
        self.expected_outport = expected_outport
        self.on_ok = on_ok
        self.on_fail = on_fail
        self.token = token  # shared per-packet dict with 'cancelled' flag


class HybridRouter(PacketRouter):
    """Hybrid-switched router: packet pipeline + TDM circuit pipeline."""

    def __init__(self, node: int, cfg: NetworkConfig, mesh: Mesh,
                 clock: SlotClock) -> None:
        super().__init__(node, cfg, mesh)
        self.clock = clock
        self.slot_state = RouterSlotState(clock, cfg.slot_table.reserve_cap)
        self.dlt = None                      # node DLT (sharing enabled)
        #: manager callback for setups this router rejects
        self.on_setup_rejected: Optional[Callable] = None
        #: called (conn_id, circuit_src, cycle) when a circuit flit hit a
        #: dead link here and was diverted to the packet-switched network
        self.on_circuit_fault: Optional[Callable] = None
        #: called (payload, cycle) when a teardown walk completed its
        #: full path at this router (terminal hop)
        self.on_teardown_done: Optional[Callable] = None
        self._cs_inject: Dict[int, List[CSInjection]] = {}
        self._cs_in_used = [False] * NUM_PORTS
        self._cs_out_used = [False] * NUM_PORTS
        #: True while any crossbar-usage flag is set — lets transfer skip
        #: the per-port reset loops on circuit-free cycles (derived from
        #: the flag lists, recomputed on restore, never snapshot state)
        self._cs_flags_dirty = False

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def transfer(self, cycle: int) -> None:
        if self._cs_flags_dirty:
            cs_in = self._cs_in_used
            cs_out = self._cs_out_used
            for i in range(NUM_PORTS):
                cs_in[i] = False
                cs_out[i] = False
            self._cs_flags_dirty = False
        # arrival demux fused in place of _process_arrivals/_demux_arrival:
        # the packet-switched buffer write (the overwhelmingly common case
        # on a loaded epoch) runs without any per-flit call; circuit flits
        # and fault-killed packets take the method paths
        arrivals = self._arrivals
        counts = self.counters._counts
        in_ports = self.in_ports
        port_buffered = self._port_buffered
        pipe_lat = self.rcfg.ps_pipeline_latency
        for inport in range(NUM_PORTS):
            staged = arrivals[inport]
            if not staged:
                continue
            for flit in staged:
                counts["slot_read"] = counts.get("slot_read", 0) + 1
                if flit.is_circuit:
                    self._demux_circuit(inport, flit, cycle)
                elif flit.packet.dropped:
                    self._buffer_write(inport, flit, cycle)
                else:
                    vcobj = in_ports[inport].vcs[flit.vc]
                    fifo = vcobj.fifo
                    if len(fifo) >= vcobj.depth:
                        raise OverflowError(
                            "VC buffer overflow: credit protocol violated")
                    fifo.append(flit)
                    flit.ready_cycle = cycle + pipe_lat
                    self._buffered_flits += 1
                    port_buffered[inport] += 1
                    counts["buffer_write"] = counts.get("buffer_write", 0) + 1
            staged.clear()
        if self._cs_inject:
            self._process_cs_injections(cycle)
        if self._buffered_flits:
            self._route_and_va(cycle)
            self._sa_st(cycle)
        if self.gating is not None:
            self._sample_utilisation()

    def sim_idle(self, cycle: int) -> bool:
        """Packet-side idleness plus: no scheduled circuit injection and
        the crossbar-usage flags have settled back to all-False (they
        are reset at the *start* of the next transfer, so a router that
        carried a circuit flit this cycle stays awake one more cycle to
        run that reset — keeping its snapshot identical to legacy's)."""
        if self._cs_inject or self._cs_flags_dirty:
            return False
        return PacketRouter.sim_idle(self, cycle)

    # ------------------------------------------------------------------
    # circuit-switched datapath
    # ------------------------------------------------------------------
    def _demux_arrival(self, inport: int, flit: Flit, cycle: int) -> None:
        # "For each incoming flit, the router looks up the slot table"
        # (Section II) — the demux lookup is paid by every arrival
        counts = self.counters._counts
        counts["slot_read"] = counts.get("slot_read", 0) + 1
        if not flit.is_circuit:
            self._buffer_write(inport, flit, cycle)
            return
        self._demux_circuit(inport, flit, cycle)

    def _demux_circuit(self, inport: int, flit: Flit, cycle: int) -> None:
        """Circuit-arrival leg of the demux (slot_read already counted)."""
        slot = self.clock.slot(cycle)
        hit = self.slot_state.lookup_in(inport, slot)
        if hit is not None:
            outport, conn = hit
            if not self._link_up(outport):
                # the circuit crosses a dead link: divert the flit to the
                # local NI; the hop-off path carries the packet onward
                # through the (fault-aware) packet-switched network, and
                # the source is notified so it can tear down / demote
                self.counters.inc("cs_link_fault")
                if self.obs.enabled:
                    self.obs.cs_orphan(cycle, self._obs_track,
                                       flit.packet.id, "link_fault")
                if flit.is_head and self.on_circuit_fault is not None:
                    self.on_circuit_fault(conn, flit.packet.src, cycle)
                flit.is_circuit = False
                flit.packet.circuit = False
                self._cs_traverse(inport, LOCAL, flit, cycle, orphan=True)
                return
            self._cs_traverse(inport, outport, flit, cycle)
            return
        # Orphaned circuit flit: its reservation disappeared mid-flight
        # (teardown race or a dynamic-sizing table reset).  Eject it here;
        # the NI's hop-off path forwards the packet to its destination
        # through the packet-switched network.
        self.counters.inc("cs_orphan")
        if self.obs.enabled:
            self.obs.cs_orphan(cycle, self._obs_track,
                               flit.packet.id, "orphan")
        flit.is_circuit = False
        flit.packet.circuit = False
        self._cs_traverse(inport, LOCAL, flit, cycle, orphan=True)

    def _cs_traverse(self, inport: int, outport: int, flit: Flit,
                     cycle: int, orphan: bool = False) -> None:
        """Single-cycle circuit traversal through the crossbar."""
        self._cs_in_used[inport] = True
        self._cs_flags_dirty = True
        if not orphan:
            # an orphan ejection does not really use a reserved output
            self._cs_out_used[outport] = True
        counts = self.counters._counts
        counts["cs_xbar"] = counts.get("cs_xbar", 0) + 1
        counts["cs_latch"] = counts.get("cs_latch", 0) + 1
        if outport != LOCAL:
            counts["link"] = counts.get("link", 0) + 1
        flit.packet.hops_taken += 1
        ol = self.out_links[outport]
        if ol.faulty:
            ol.send(flit, cycle)        # slow path keeps drop accounting
        else:
            ol._pipe.append((cycle + ol.latency, flit))
            ol.flits_carried += 1
            ws = ol.wake_sink
            if ws is not None and not ws._sim_awake:
                ws.sim_wake()

    # ------------------------------------------------------------------
    def schedule_cs_injection(self, cycle: int, flit: Flit,
                              expected_outport: Optional[int],
                              on_ok: Callable, on_fail: Callable,
                              token: dict) -> None:
        """Register a circuit flit to enter the local crossbar input at
        exactly *cycle* (the NI computed the slot-aligned time)."""
        inj = CSInjection(flit, expected_outport, on_ok, on_fail, token)
        self._cs_inject.setdefault(cycle, []).append(inj)
        vn = self._vector_notify
        if vn is not None:
            vn(self)    # batch stepper: this router is now irregular
        self.sim_wake()

    def _process_cs_injections(self, cycle: int) -> None:
        injections = self._cs_inject.pop(cycle, None)
        if not injections:
            return
        slot = self.clock.slot(cycle)
        for inj in injections:
            if inj.token.get("cancelled"):
                continue
            if self._cs_in_used[LOCAL]:
                inj.on_fail(inj.flit)
                continue
            if inj.expected_outport is None:
                # own connection: the local input table holds the route
                self.counters.inc("slot_read")
                hit = self.slot_state.lookup_in(LOCAL, slot)
                if hit is None:
                    inj.on_fail(inj.flit)   # stale connection
                    continue
                outport, _conn = hit
            else:
                # hitchhiker: ride an idle reserved slot of a circuit
                # passing through this router (Section III-A1)
                outport = inj.expected_outport
                self.counters.inc("slot_read")
                if (not self.slot_state.output_reserved(outport, slot)
                        or self._cs_out_used[outport]):
                    inj.on_fail(inj.flit)   # contention with the owner
                    continue
            if self._cs_out_used[outport]:
                inj.on_fail(inj.flit)
                continue
            if not self._link_up(outport):
                # first hop of the circuit is dead: fall back to packet
                # switching before the flit ever enters the fabric
                self.counters.inc("cs_link_fault")
                inj.on_fail(inj.flit)
                continue
            self._cs_traverse(LOCAL, outport, inj.flit, cycle)
            inj.on_ok(inj.flit)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Packet-router state plus slot tables, the node DLT and the
        pending circuit-injection schedule.

        CSInjection callbacks are closures over the NI and cannot be
        serialized: only ``(flit, expected_outport, token)`` is captured
        and the network-level load rebinds fresh callbacks through
        :meth:`rebind_cs_injections` (the token dict carries everything
        the NI needs, and its identity is shared with the NI's own
        outstanding-circuit state through the one-pass freeze)."""
        state = super().state_dict()
        state.update({
            "slot_tables": list(self.slot_state.in_tables),
            "out_owner": [list(row) for row in self.slot_state.out_owner],
            "dlt": self.dlt,
            "cs_inject": {
                cycle: [(inj.flit, inj.expected_outport, inj.token)
                        for inj in lst]
                for cycle, lst in self._cs_inject.items()},
            "cs_in_used": list(self._cs_in_used),
            "cs_out_used": list(self._cs_out_used),
        })
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.slot_state.in_tables = list(state["slot_tables"])
        self.slot_state.out_owner = [list(row) for row in state["out_owner"]]
        self.dlt = state["dlt"]
        self._cs_in_used = list(state["cs_in_used"])
        self._cs_out_used = list(state["cs_out_used"])
        self._cs_flags_dirty = (any(self._cs_in_used)
                                or any(self._cs_out_used))
        # callbacks are rebuilt once the NI reference is known
        self._cs_inject_raw = state["cs_inject"]
        self._cs_inject = {}

    def rebind_cs_injections(self, ni) -> None:
        """Rebuild the pending-injection schedule with fresh NI-bound
        callbacks (called by the network after both sides loaded)."""
        raw = getattr(self, "_cs_inject_raw", None)
        if raw is None:
            return
        del self._cs_inject_raw
        self._cs_inject = {
            cycle: [CSInjection(flit, exp, *ni.make_cs_callbacks(token), token)
                    for flit, exp, token in entries]
            for cycle, entries in raw.items()}

    # ------------------------------------------------------------------
    # packet pipeline interaction (time-slot stealing)
    # ------------------------------------------------------------------
    def _sa_st(self, cycle: int) -> None:
        """Fused switch allocation + traversal for the hybrid hot path.

        Behaviour-identical copy of ``PacketRouter._sa_st`` with the
        hybrid hooks (``_out_blocked_for_ps``, steal accounting in
        ``_traverse``) and the per-winner helpers (``_sa_pick``, the base
        traversal, the credit/link sends) inlined — this loop and the
        arrival demux above are where a loaded epoch spends its time.
        The hook methods below are kept both as documentation of the
        protocol and for any caller going through the base allocator;
        the differential-equivalence harness pins the two code paths to
        identical state trajectories.
        """
        owned = self._owned_out
        out_links = self.out_links
        cs_out = self._cs_out_used
        out_owner = self.slot_state.out_owner
        slot = cycle % self.clock.active
        stealing = self.cfg.circuit.slot_stealing
        in_ports = self.in_ports
        total_vcs = self.total_vcs
        sa_ptr = self._sa_ptr
        mod = NUM_PORTS * total_vcs
        counts = self.counters._counts
        gating = self.gating
        used_in = None
        for outport in range(NUM_PORTS):
            if not owned[outport] or out_links[outport] is None:
                continue
            # _out_blocked_for_ps, inlined
            if cs_out[outport]:
                continue
            reserved = out_owner[outport][slot] != -1
            if reserved and not stealing:
                continue
            if used_in is None:
                # _cs_used_inports, inlined: copy the circuit-usage
                # flags into the reusable scratch list
                used_in = self._used_in_scratch
                cs_in = self._cs_in_used
                for i in range(NUM_PORTS):
                    used_in[i] = cs_in[i]
            # _sa_pick, inlined: single-pass round-robin arbitration
            owners = self.out_vc_owner[outport]
            credits = self.credits[outport]
            ptr = sa_ptr[outport]
            winner = None
            winner_key = mod
            n_candidates = 0
            for ovc in range(total_vcs):
                owner = owners[ovc]
                if owner is None or credits[ovc] <= 0:
                    continue
                inport, invc = owner
                if used_in[inport]:
                    continue
                vfifo = in_ports[inport].vcs[invc].fifo
                if not vfifo or cycle < vfifo[0].ready_cycle:
                    continue
                n_candidates += 1
                key = (inport * total_vcs + invc - ptr) % mod
                if key < winner_key:
                    winner_key = key
                    winner = (inport, invc, ovc)
            if winner is None:
                continue
            counts["sw_arb"] = counts.get("sw_arb", 0) + 1
            inport, invc, ovc = winner
            if n_candidates > 1:
                # pointer only advances on a real multi-way arbitration
                sa_ptr[outport] = inport * total_vcs + invc + 1
            used_in[inport] = True
            # _traverse, inlined (with the hybrid steal accounting)
            if reserved:
                counts["slot_steal"] = counts.get("slot_steal", 0) + 1
                if self.obs.enabled:
                    self.obs.slot_steal(cycle, self._obs_track,
                                        outport, slot)
            vcobj = in_ports[inport].vcs[invc]
            flit = vcobj.fifo.popleft()
            self._buffered_flits -= 1
            self._port_buffered[inport] -= 1
            counts["buffer_read"] = counts.get("buffer_read", 0) + 1
            counts["xbar"] = counts.get("xbar", 0) + 1
            if gating is not None:
                wait = cycle - flit.ready_cycle
                self._qdelay_accum += max(0, wait)
                self._qdelay_samples += 1
            clink = self.credit_out[inport]
            if clink is not None:
                clink._pipe.append((cycle + clink.latency, invc))
                ws = clink.wake_sink
                if ws is not None and not ws._sim_awake:
                    ws.sim_wake()
            flit.vc = ovc
            if outport != LOCAL:
                credits[ovc] -= 1
                counts["link"] = counts.get("link", 0) + 1
            flit.packet.hops_taken += 1
            kind = flit.kind
            if kind is FlitKind.TAIL or kind is FlitKind.HEAD_TAIL:
                owners[ovc] = None
                owned[outport] -= 1
                vcobj.route_outport = None
                vcobj.out_vc = None
            ol = out_links[outport]
            if ol.faulty:
                ol.send(flit, cycle)    # slow path keeps drop accounting
            else:
                ol._pipe.append((cycle + ol.latency, flit))
                ol.flits_carried += 1
                ws = ol.wake_sink
                if ws is not None and not ws._sim_awake:
                    ws.sim_wake()

    def _cs_used_inports(self, cycle: int) -> List[bool]:
        scratch = self._used_in_scratch
        cs = self._cs_in_used
        for i in range(NUM_PORTS):
            scratch[i] = cs[i]
        return scratch

    def _out_blocked_for_ps(self, outport: int, cycle: int) -> bool:
        if self._cs_out_used[outport]:
            return True
        slot = self.clock.slot(cycle)
        if self.slot_state.output_reserved(outport, slot):
            if self.cfg.circuit.slot_stealing:
                return False        # reserved but idle: stealable
            return True
        return False

    def _traverse(self, outport: int, inport: int, invc: int, ovc: int,
                  cycle: int) -> None:
        # count actual steals: a PS traversal in a reserved-but-idle slot
        slot = self.clock.slot(cycle)
        if self.slot_state.output_reserved(outport, slot):
            self.counters.inc("slot_steal")
            if self.obs.enabled:
                self.obs.slot_steal(cycle, self._obs_track, outport, slot)
        super()._traverse(outport, inport, invc, ovc, cycle)

    # ------------------------------------------------------------------
    # configuration-message processing (Section II-B)
    # ------------------------------------------------------------------
    def _compute_route(self, inport: int, head: Flit,
                       cycle: int) -> Optional[int]:
        pkt = head.packet
        if pkt.mclass != MessageClass.CONFIG:
            return super()._compute_route(inport, head, cycle)
        payload = pkt.msg.payload
        if payload.ctype == ConfigType.SETUP:
            return self._process_setup(inport, pkt, payload, cycle)
        if payload.ctype == ConfigType.TEARDOWN:
            return self._process_teardown(inport, pkt, payload, cycle)
        # acknowledgements route adaptively like any config packet
        return self._route_adaptive(pkt, inport)

    def _process_setup(self, inport: int, pkt, payload,
                       cycle: int) -> Optional[int]:
        if payload.generation != self.clock.generation:
            # the wheel was resized while this setup travelled: its slot
            # arithmetic is stale, and any prefix it reserved was wiped
            # by the reset — reject so no unreachable reservation forms
            self.counters.inc("setup_stale")
            if self.obs.enabled:
                self.obs.cs_setup(cycle, self._obs_track,
                                  payload.conn_id, "stale")
            if self.on_setup_rejected is not None:
                self.on_setup_rejected(payload, cycle)
            return None
        st = self.slot_state
        dur = payload.duration
        slot = self.clock.wrap(payload.slot_id)
        if pkt.dst == self.node:
            candidates = [LOCAL]
        else:
            candidates = self._adaptive_candidates_by_credit(pkt)
            if (self.link_health is not None
                    and self.link_health.any_faults):
                # never reserve a circuit across a dead link; an empty
                # candidate list falls through to the rejection below
                candidates = [p for p in candidates if self._link_up(p)]
        for outport in candidates:
            if st.can_reserve(inport, outport, slot, dur):
                st.reserve(inport, outport, slot, dur, payload.conn_id)
                self.counters.inc("slot_write", dur)
                if self.obs.enabled:
                    self.obs.cs_setup(cycle, self._obs_track,
                                      payload.conn_id, "reserve",
                                      slot=slot, outport=outport)
                if self.dlt is not None and inport != LOCAL:
                    # nodes along the path learn the circuit for sharing
                    self.dlt.add(payload.orig_dst, slot, dur, outport,
                                 payload.conn_id)
                    self.counters.inc("dlt_write")
                if outport == LOCAL:
                    return LOCAL  # ejects; NI acknowledges success
                payload.slot_id = self.clock.advance2[slot]
                return outport
        # no output can host the reservation: reject (Figure 1, setups
        # 2 and 3) and have this node's manager NACK the source
        self.counters.inc("setup_rejected")
        if self.obs.enabled:
            self.obs.cs_setup(cycle, self._obs_track,
                              payload.conn_id, "reject")
        if self.on_setup_rejected is not None:
            self.on_setup_rejected(payload, cycle)
        return None  # consume the setup packet here

    def _adaptive_candidates_by_credit(self, pkt) -> List[int]:
        from repro.network.routing import oe_candidate_outports
        cands = oe_candidate_outports(self.mesh, self.node, pkt.src, pkt.dst)
        if len(cands) > 1:
            cands = sorted(cands, key=lambda o: -sum(self.credits[o]))
        return cands

    def _process_teardown(self, inport: int, pkt, payload,
                          cycle: int) -> Optional[int]:
        if payload.generation != self.clock.generation:
            return None  # tables were reset wholesale; nothing to clear
        slot = self.clock.wrap(payload.slot_id)
        outport = self.slot_state.release(inport, slot, payload.duration,
                                          payload.conn_id)
        if outport is None:
            return None   # reached the point where the setup had failed
        self.counters.inc("slot_write", payload.duration)
        if self.obs.enabled:
            self.obs.cs_teardown(cycle, self._obs_track,
                                 payload.conn_id, "release")
        if self.dlt is not None:
            self.dlt.remove_conn(payload.conn_id)
        if outport == LOCAL:
            # full path torn down; under the resilience protocol this
            # node confirms the walk back to the source
            if self.obs.enabled:
                self.obs.cs_teardown(cycle, self._obs_track,
                                     payload.conn_id, "done")
            if self.on_teardown_done is not None:
                self.on_teardown_done(payload, cycle)
            return None
        payload.slot_id = self.clock.advance2[slot]
        return outport

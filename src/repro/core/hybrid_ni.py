"""Network interface for the TDM hybrid network (part of S6/S7).

Adds the circuit-switched send path on top of the packet-switched NI:

* consults the node's :class:`~repro.core.circuit.ConnectionManager` for
  a circuit plan on every eligible message;
* schedules the flits of a circuit-switched packet to enter the router's
  local crossbar input at exactly their reserved slots (one flit per
  consecutive slot, ``duration`` slots per TDM round);
* falls back to packet switching when a (shared) circuit injection loses
  to the circuit owner — the untransmitted remainder of the message is
  re-framed and queued on the packet-switched path, and the manager's
  2-bit sharing-failure counters are updated.

The batch engine's vectorized window (:mod:`repro.sim.batch.stepper`)
never models the circuit-switched injection machinery: a router whose
``_cs_inject`` queue is non-empty (or whose circuit flags are dirty)
is spilled to the ordinary per-object step for as long as that holds,
so everything this NI schedules runs through the same code under every
engine.  The NI itself still runs object-side inside windows — only
the router phases are vectorized — which is why no hybrid-specific
mirror state exists for NIs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.config import NetworkConfig
from repro.core.circuit import CSPlan, ConnectionManager
from repro.network.flit import Flit, Message, Packet
from repro.network.interface import NetworkInterface


class HybridNetworkInterface(NetworkInterface):
    """NI with circuit-switched injection support."""

    def __init__(self, node: int, cfg: NetworkConfig) -> None:
        super().__init__(node, cfg)
        self.manager: Optional[ConnectionManager] = None
        self._cs_outstanding = 0    #: scheduled CS flits not yet resolved

    @property
    def _now(self) -> int:
        """The cycle the legacy scheduler's per-cycle ``_now`` update
        would hold: the current inject phase while one is running, else
        ``sim.cycle - 1``.  Derived rather than stored so an NI that the
        activity-tracked engine put to sleep (skipping its inject, and
        with it the update) still reports the correct time to direct
        ``send()`` pokes and circuit planning.  Not snapshot state."""
        last = self._last_inject
        sim = self.sim
        if sim is not None and sim.cycle - 1 > last:
            return sim.cycle - 1
        return last

    # ------------------------------------------------------------------
    def sim_idle(self, cycle: int) -> bool:
        """Sleep only with no circuit flits scheduled at the router: the
        on-ok/on-fail callbacks fire during the *router's* transfer phase
        and mutate NI state that must stay observable cycle-by-cycle."""
        if self._cs_outstanding:
            return False
        return NetworkInterface.sim_idle(self, cycle)

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self.manager is None:
            self.enqueue_ps(msg)
            return
        plan = self.manager.plan_message(msg, self._now)
        if plan is None:
            self.enqueue_ps(msg)
        else:
            self._send_circuit(msg, plan)

    def _send_circuit(self, msg: Message, plan: CSPlan) -> None:
        msg.final_dst = plan.final_dst
        pkt = Packet(msg, src=self.node, dst=plan.circuit_dst,
                     size=plan.size, circuit=True)
        pkt.inject_cycle = plan.t0
        flits = pkt.make_flits()
        token = {"cancelled": False, "plan": plan, "pkt": pkt,
                 "pending": deque(flits)}
        on_ok, on_fail = self.make_cs_callbacks(token)
        for i, flit in enumerate(flits):
            flit.is_circuit = True
            self.router.schedule_cs_injection(
                plan.t0 + i, flit, plan.expected_outport,
                on_ok=on_ok, on_fail=on_fail, token=token,
            )
        self._cs_outstanding += plan.size
        self.sent_messages += 1
        self.counters.inc(f"cs_send_{plan.kind}")

    # ------------------------------------------------------------------
    # router callbacks
    # ------------------------------------------------------------------
    def _cs_flit_ok(self, flit: Flit, token: dict) -> None:
        self._cs_outstanding -= 1
        token["pending"].remove(flit)
        self.ledger.injected += 1
        self.counters.inc("flit_injected")
        plan: CSPlan = token["plan"]
        if self.obs.enabled:
            pkt = token["pkt"]
            self.obs.flit_inject(self._now, self._obs_track, pkt.id,
                                 flit.index, pkt.dst, True)
        if flit.is_tail and plan.kind == "hitchhike":
            self.manager.note_hitchhike_success(plan.final_dst)

    def _cs_flit_failed(self, flit: Flit, token: dict) -> None:
        """A circuit injection lost (sharing contention or a stale
        connection): cancel the rest and fall back to packet switching."""
        plan: CSPlan = token["plan"]
        pkt: Packet = token["pkt"]
        pending: Deque[Flit] = token["pending"]
        self._cs_outstanding -= len(pending)
        token["cancelled"] = True
        pkt.circuit = False
        self.counters.inc("cs_fallback")
        if self.obs.enabled:
            self.obs.cs_fallback(self._now, self._obs_track,
                                 pkt.id, plan.kind)
        if plan.kind == "hitchhike":
            self.manager.note_hitchhike_failure(plan.final_dst, self._now)
        # everything not yet transmitted goes packet-switched; flits that
        # already left continue on the circuit and reassemble by count
        self.enqueue_stream(pkt, deque(pending))
        pending.clear()

    def make_cs_callbacks(self, token: dict):
        """(on_ok, on_fail) pair bound to *token* — used by the send
        path above and by snapshot restore to rebuild the callbacks the
        router could not serialize."""
        return (lambda f, t=token: self._cs_flit_ok(f, t),
                lambda f, t=token: self._cs_flit_failed(f, t))

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        # _now is excluded: it is derivable (cycle - 1 at capture time)
        # and snapshotting it would make the hash depend on how long the
        # NI has been asleep.  The network restore loop re-primes it.
        state = super().state_dict()
        state.update({"cs_outstanding": self._cs_outstanding})
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._cs_outstanding = state["cs_outstanding"]

    # ------------------------------------------------------------------
    @property
    def pending_flits(self) -> int:
        return super().pending_flits + self._cs_outstanding

"""Circuit path configuration and the per-node connection manager (S7).

Implements Section II-B:

* ``setup_msg`` / ``teardown_msg`` / ``ack_msg`` exchange over the
  packet-switched network (the messages themselves are 1-flit CONFIG
  packets on the escape VC, minimal-adaptively routed),
* retry of failed setups with a different slot id,
* eviction of long-idle connections when new setup requests need room,
* the frequent-communication trigger ("a circuit-switched path is only
  reserved for source-destination pairs that communicate frequently"),
* and the per-message switching decision plumbing of Section II-A,
  including hitchhiker/vicinity sharing plans (Section III-A).

Packet transmission never waits for a setup: a message goes out through
the packet-switched network while its path setup runs in parallel; only
messages sent *after* the ACK registers the connection use the circuit.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, List, NamedTuple, Optional, Set

from repro.config import NetworkConfig
from repro.core.decision import (
    DecisionFn,
    estimate_cs_latency,
    estimate_ps_latency,
    stall_threshold_decision,
)
from repro.core.sharing import DestinationLookupTable, SaturatingCounter
from repro.core.slot_table import SlotClock
from repro.network.flit import (
    ConfigPayload,
    ConfigType,
    IdSource,
    Message,
    MessageClass,
)
from repro.network.topology import LOCAL, Mesh
from repro.obs.trace import NULL_RECORDER
from repro.sim.kernel import SimObject

_conn_ids = IdSource(1)


class ConnState(Enum):
    PENDING = 0   #: setup sent, waiting for the acknowledgement
    ACTIVE = 1    #: registered; messages may be circuit-switched
    TEARING = 2   #: teardown sent; slots may still be reserved downstream


class Connection:
    """Source-side record of one circuit-switched connection."""

    __slots__ = ("conn_id", "src", "dst", "slot0", "duration", "state",
                 "created", "last_used", "next_round_min", "retries", "uses",
                 "deadline", "retry_at")

    def __init__(self, conn_id: int, src: int, dst: int, slot0: int,
                 duration: int, cycle: int) -> None:
        self.conn_id = conn_id
        self.src = src
        self.dst = dst
        self.slot0 = slot0            #: arrival slot at the source router
        self.duration = duration
        self.state = ConnState.PENDING
        self.created = cycle
        self.last_used = cycle
        self.next_round_min = 0       #: earliest cycle of the next free round
        self.retries = 0
        self.uses = 0
        self.deadline = 0             #: cycle the pending op times out at
        self.retry_at = 0             #: backoff: earliest re-setup cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Connection(#{self.conn_id} {self.src}->{self.dst} "
                f"slot={self.slot0} {self.state.name})")


class CSPlan(NamedTuple):
    """Injection plan returned by :meth:`ConnectionManager.plan_message`."""

    kind: str              #: 'own' | 'hitchhike' | 'vicinity'
    t0: int                #: cycle the first flit must enter the router
    size: int              #: flits in the circuit-switched packet
    circuit_dst: int       #: node where the circuit ends
    final_dst: int         #: true message destination (vicinity hop-off)
    expected_outport: Optional[int]  #: hitchhiker crossbar output, else None
    conn_id: int


class ConnectionManager(SimObject):
    """Per-node controller of circuit setups, usage and teardown.

    With ``cfg.circuit.setup_timeout > 0`` the manager also runs in the
    simulator's ``control`` phase (the builder registers it) and becomes
    loss-tolerant: pending setups and teardown walks time out, retry with
    bounded exponential backoff, and repeatedly-failing destination pairs
    are demoted to pure packet switching for a cool-down period."""

    # Connection objects are shared between ``connections``, ``by_id``
    # and ``_tearing``; the single-pass snapshot freeze preserves that
    # sharing.  Wiring (ni/router/mesh/clock/cfg/dlt/decision_fn/...) is
    # rebuilt by the network constructor and excluded.
    _state_attrs = (
        "connections", "by_id", "_dst_counts", "_window_end",
        "_vicinity_fail", "_tearing", "_fail_streak", "_demoted",
        "_fault_since", "_nacked", "recovery_samples",
        "setups_sent", "setups_ok", "setups_failed", "teardowns_sent",
        "cs_messages", "shared_messages", "setups_timed_out",
        "teardowns_timed_out", "teardowns_confirmed", "circuits_nacked",
        "pairs_demoted")

    def __init__(self, node: int, cfg: NetworkConfig, clock: SlotClock,
                 mesh: Mesh, ni, router,
                 decision_fn: Optional[DecisionFn] = None,
                 eligible_fn: Optional[Callable[[Message], bool]] = None,
                 dlt: Optional[DestinationLookupTable] = None,
                 size_controller=None) -> None:
        self.node = node
        self.cfg = cfg
        self.ccfg = cfg.circuit
        self.clock = clock
        self.mesh = mesh
        self.ni = ni
        self.router = router
        self.decision_fn = decision_fn or stall_threshold_decision(
            cfg.circuit.stall_threshold)
        if hasattr(self.decision_fn, "bind"):
            # NI-bound policies (FeedbackDecision) get a per-node copy
            import copy
            self.decision_fn = copy.copy(self.decision_fn).bind(ni)
        self.eligible_fn = eligible_fn or (
            lambda m: m.mclass == MessageClass.DATA)
        self.dlt = dlt
        self.size_controller = size_controller

        self.connections: Dict[int, Connection] = {}   # dst -> conn
        self.by_id: Dict[int, Connection] = {}
        self._dst_counts: Dict[int, int] = {}
        self._window_end = cfg.circuit.freq_window
        self._vicinity_fail: Dict[int, SaturatingCounter] = {}

        # resilience state (inert unless circuit.setup_timeout > 0)
        self._tearing: Dict[int, Connection] = {}   # conn_id -> conn
        self._fail_streak: Dict[int, int] = {}      # dst -> consecutive fails
        self._demoted: Dict[int, int] = {}          # dst -> demoted until
        self._fault_since: Dict[int, int] = {}      # dst -> first-failure cycle
        self._nacked: Set[int] = set()              # conn ids already NACKed
        self.recovery_samples: List[int] = []       # fault -> re-ACK latency

        # statistics
        self.setups_sent = 0
        self.setups_ok = 0
        self.setups_failed = 0
        self.teardowns_sent = 0
        self.cs_messages = 0
        self.shared_messages = 0
        self.setups_timed_out = 0
        self.teardowns_timed_out = 0
        self.teardowns_confirmed = 0
        self.circuits_nacked = 0
        self.pairs_demoted = 0

        #: trace recorder; NULL_RECORDER keeps every guarded emission
        #: site a single falsy attribute check (never snapshot state)
        self.obs = NULL_RECORDER
        self._obs_track = f"ni-{node}"

    # ------------------------------------------------------------------
    # reservation duration (vicinity needs one extra header slot)
    # ------------------------------------------------------------------
    @property
    def reserve_duration(self) -> int:
        return self.ccfg.duration + (1 if self.ccfg.vicinity else 0)

    # ------------------------------------------------------------------
    # per-message planning (called from the NI's send path)
    # ------------------------------------------------------------------
    def plan_message(self, msg: Message, now: int) -> Optional[CSPlan]:
        """Return a circuit-switched injection plan for *msg*, or None to
        send it through the packet-switched network."""
        if not self.ccfg.enabled or not self.eligible_fn(msg):
            return None
        self._note_traffic(msg.dst, now)

        plan = self._plan_own(msg, now)
        if plan is not None:
            return plan
        if self.ccfg.vicinity:
            plan = self._plan_vicinity(msg, now)
            if plan is not None:
                return plan
        if self.ccfg.hitchhiker and self.dlt is not None:
            plan = self._plan_hitchhike(msg, now)
            if plan is not None:
                return plan
        return None

    def _decide(self, msg: Message, t0: int, now: int, size: int,
                hops: int) -> bool:
        wait = t0 - now
        cs_lat = estimate_cs_latency(hops, wait, size)
        # the packet-switched estimate includes the source backlog: under
        # congestion a long slot wait still beats queueing behind the
        # packet-switched injection queue (Section II-A's "impact on
        # system performance")
        ps_lat = estimate_ps_latency(
            hops, self.cfg.router.ps_pipeline_latency, size)
        ps_lat = max(ps_lat, self.ni.ps_latency_ewma)
        ps_lat += self.ni.ps_backlog_flits
        return self.decision_fn(msg, wait, cs_lat, int(ps_lat))

    def _plan_own(self, msg: Message, now: int) -> Optional[CSPlan]:
        conn = self.connections.get(msg.dst)
        if conn is None or conn.state is not ConnState.ACTIVE:
            return None
        t0 = self.clock.next_cycle_for_slot(
            conn.slot0, max(now + 1, conn.next_round_min))
        size = self.cfg.packet_size("cs_data")
        if not self._decide(msg, t0, now, size,
                            self.mesh.hops(self.node, msg.dst)):
            return None
        conn.next_round_min = t0 + self.clock.active
        conn.last_used = now
        conn.uses += 1
        self.cs_messages += 1
        return CSPlan("own", t0, size, msg.dst, msg.dst, None, conn.conn_id)

    def _plan_vicinity(self, msg: Message, now: int) -> Optional[CSPlan]:
        for conn in self.connections.values():
            if conn.state is not ConnState.ACTIVE:
                continue
            if not self.mesh.are_adjacent(conn.dst, msg.dst):
                continue
            t0 = self.clock.next_cycle_for_slot(
                conn.slot0, max(now + 1, conn.next_round_min))
            size = self.cfg.packet_size("cs_vicinity")
            if not self._decide(msg, t0, now, size,
                                self.mesh.hops(self.node, conn.dst) + 1):
                # source-side contention / stall: count a sharing failure
                self._note_vicinity_failure(msg.dst, now)
                return None
            conn.next_round_min = t0 + self.clock.active
            conn.last_used = now
            self._vicinity_fail.pop(msg.dst, None)
            self.cs_messages += 1
            self.shared_messages += 1
            return CSPlan("vicinity", t0, size, conn.dst, msg.dst, None,
                          conn.conn_id)
        return None

    def _plan_hitchhike(self, msg: Message, now: int) -> Optional[CSPlan]:
        entry = self.dlt.lookup(msg.dst)
        if entry is None:
            return None
        t0 = self.clock.next_cycle_for_slot(entry.slot, now + 1)
        size = min(self.cfg.packet_size("cs_data"), entry.duration)
        if not self._decide(msg, t0, now, size,
                            self.mesh.hops(self.node, msg.dst)):
            return None
        self.cs_messages += 1
        self.shared_messages += 1
        return CSPlan("hitchhike", t0, size, msg.dst, msg.dst,
                      entry.outport, entry.conn)

    # ------------------------------------------------------------------
    # sharing failure escalation
    # ------------------------------------------------------------------
    def note_hitchhike_failure(self, dst: int, now: int) -> None:
        """Called by the NI when a hitchhiker injection lost to a real
        circuit flit; escalates to a dedicated setup on repeat failure."""
        if self.dlt is not None and self.dlt.note_failure(dst):
            self._maybe_setup(dst, now, force=True)

    def note_hitchhike_success(self, dst: int) -> None:
        if self.dlt is not None:
            self.dlt.note_success(dst)

    def _note_vicinity_failure(self, dst: int, now: int) -> None:
        ctr = self._vicinity_fail.setdefault(
            dst, SaturatingCounter(self.ccfg.sharing_fail_threshold))
        if ctr.up():
            del self._vicinity_fail[dst]
            self._maybe_setup(dst, now, force=True)

    # ------------------------------------------------------------------
    # frequency tracking -> setup trigger
    # ------------------------------------------------------------------
    def _note_traffic(self, dst: int, now: int) -> None:
        if now >= self._window_end:
            self._dst_counts.clear()
            self._window_end = now + self.ccfg.freq_window
        n = self._dst_counts.get(dst, 0) + 1
        self._dst_counts[dst] = n
        if n == self.ccfg.setup_msg_threshold:
            self._maybe_setup(dst, now)

    def _maybe_setup(self, dst: int, now: int, force: bool = False) -> None:
        if dst == self.node or dst in self.connections:
            return
        until = self._demoted.get(dst)
        if until is not None:
            if now < until:
                return   # pair demoted to packet switching: no new setups
            del self._demoted[dst]
            self._fail_streak.pop(dst, None)
        self._evict_if_crowded(now)
        self._send_setup(dst, now)

    # ------------------------------------------------------------------
    # setup / teardown / ack machinery
    # ------------------------------------------------------------------
    def _choose_slot(self, duration: int) -> Optional[int]:
        """Pick a start slot whose window is free in the source router's
        local input table (cheap local filter before the network try).

        Random probes spread reservations over the wheel; if all eight
        miss, a deterministic wrap-around scan guarantees that an existing
        free window is found.  The scan draws nothing from the RNG; it is
        part of the resilience protocol (``setup_timeout > 0``) so base
        runs keep the seed's exact setup stream (the probabilistic
        give-up included)."""
        active = self.clock.active
        table = self.router.slot_state.in_tables[LOCAL]
        rng = self.router.rng

        def window_free(start: int) -> bool:
            return all(not table.valid[(start + i) % active]
                       for i in range(duration))

        for _ in range(8):
            start = int(rng.integers(active))
            if window_free(start):
                return start
        if self.ccfg.resilience_enabled:
            for start in range(active):
                if window_free(start):
                    return start
        return None

    def _send_setup(self, dst: int, now: int,
                    conn: Optional[Connection] = None) -> None:
        duration = self.reserve_duration
        slot0 = self._choose_slot(duration)
        if slot0 is None:
            if self.size_controller is not None:
                self.size_controller.note_setup_result(False)
            return
        if conn is None:
            conn = Connection(_conn_ids(), self.node, dst, slot0,
                              duration, now)
            self.connections[dst] = conn
            self.by_id[conn.conn_id] = conn
        else:
            # retry: fresh id so stale partial reservations cannot alias
            # (a timed-out conn was already dropped from by_id)
            self.by_id.pop(conn.conn_id, None)
            conn.conn_id = _conn_ids()
            conn.slot0 = slot0
            conn.state = ConnState.PENDING
            self.by_id[conn.conn_id] = conn
        if self.ccfg.resilience_enabled:
            conn.deadline = now + self.ccfg.setup_timeout
            conn.retry_at = 0
        payload = ConfigPayload(ConfigType.SETUP, self.node, dst, slot0,
                                duration, conn.conn_id)
        self._send_config(dst, payload, now)
        self.setups_sent += 1
        if self.obs.enabled:
            self.obs.cs_setup(now, self._obs_track, conn.conn_id, "send",
                              dst=dst, slot=slot0)

    def _send_config(self, dst: int, payload: ConfigPayload,
                     now: int) -> None:
        payload.generation = getattr(self.clock, "generation", 0)
        msg = Message(src=self.node, dst=dst, mclass=MessageClass.CONFIG,
                      size_flits=1, create_cycle=now, payload=payload)
        self.ni.enqueue_ps(msg)

    def teardown(self, conn: Connection, now: int) -> None:
        """Send a teardown walking the tables from this source.

        Under the resilience protocol the connection enters TEARING and
        stays registered until the terminal router's TEARDOWN_ACK confirms
        the walk (or the retry budget runs out); otherwise it is forgotten
        fire-and-forget, as in the base protocol."""
        payload = ConfigPayload(ConfigType.TEARDOWN, self.node, conn.dst,
                                conn.slot0, conn.duration, conn.conn_id)
        self._send_config(conn.dst, payload, now)
        self.teardowns_sent += 1
        if self.obs.enabled:
            self.obs.cs_teardown(now, self._obs_track,
                                 conn.conn_id, "send")
        self.connections.pop(conn.dst, None)
        if self.ccfg.resilience_enabled:
            conn.state = ConnState.TEARING
            conn.deadline = now + self.ccfg.setup_timeout
            conn.retries = 0
            self._tearing[conn.conn_id] = conn
            # stays in by_id so the orphan GC treats its slots as live
        else:
            self.by_id.pop(conn.conn_id, None)

    def _evict_if_crowded(self, now: int) -> None:
        """Destroy the most idle connection when the local table is
        crowded (Section II-B: idle connections become candidates to be
        destroyed when new setup requests come in)."""
        table = self.router.slot_state.in_tables[LOCAL]
        active = self.clock.active
        if table.reserved_count(active) + self.reserve_duration \
                <= int(0.7 * active):
            return
        idle_conns = [c for c in self.connections.values()
                      if c.state is ConnState.ACTIVE
                      and now - c.last_used >= self.ccfg.idle_evict_cycles]
        if idle_conns:
            victim = min(idle_conns, key=lambda c: c.last_used)
            self.teardown(victim, now)

    # ------------------------------------------------------------------
    # inbound configuration handling (wired as ni.config_handler and
    # router.on_config_terminal)
    # ------------------------------------------------------------------
    def on_config(self, payload: ConfigPayload, cycle: int) -> None:
        """A CONFIG packet terminated at this node's NI."""
        if payload.ctype == ConfigType.SETUP:
            # setup reached its destination: reservation already made by
            # this node's router; acknowledge success back to the source
            ack = ConfigPayload(ConfigType.ACK_SUCCESS, payload.orig_src,
                                payload.orig_dst, payload.slot_id,
                                payload.duration, payload.conn_id)
            ack.orig_slot = payload.orig_slot
            self._send_config(payload.orig_src, ack, cycle)
        elif payload.ctype == ConfigType.ACK_SUCCESS:
            self._on_ack(payload, cycle, success=True)
        elif payload.ctype == ConfigType.ACK_FAIL:
            self._on_ack(payload, cycle, success=False)
        elif payload.ctype == ConfigType.TEARDOWN_ACK:
            conn = self._tearing.pop(payload.conn_id, None)
            if conn is not None:
                self.by_id.pop(conn.conn_id, None)
                self.teardowns_confirmed += 1
        elif payload.ctype == ConfigType.NACK_CIRCUIT:
            # a mid-path router reports this circuit crosses a dead link
            conn = self.by_id.get(payload.conn_id)
            if conn is not None and conn.state is ConnState.ACTIVE:
                self.circuits_nacked += 1
                self._note_pair_failure(conn.dst, cycle)
                self.teardown(conn, cycle)
        # teardown messages never terminate via the NI (they are consumed
        # inside routers), but ignore gracefully if one does

    def on_setup_rejected(self, payload: ConfigPayload, cycle: int) -> None:
        """Called by this node's *router* when it rejected a setup; sends
        the failure acknowledgement back to the requesting source."""
        ack = ConfigPayload(ConfigType.ACK_FAIL, payload.orig_src,
                            payload.orig_dst, payload.slot_id,
                            payload.duration, payload.conn_id)
        ack.orig_slot = payload.orig_slot
        ack.fail_node = self.node
        if payload.orig_src == self.node:
            # the rejection happened at the source router itself
            self._on_ack(ack, cycle, success=False)
        else:
            self._send_config(payload.orig_src, ack, cycle)

    def _on_ack(self, payload: ConfigPayload, cycle: int,
                success: bool) -> None:
        if self.obs.enabled:
            self.obs.cs_ack(cycle, self._obs_track,
                            payload.conn_id, success)
        conn = self.by_id.get(payload.conn_id)
        if self.size_controller is not None:
            self.size_controller.note_setup_result(success)
        if conn is None:
            # Stale ack: the connection record was dropped (table resize)
            # while the setup was in flight, and the setup may have
            # re-reserved slots after the reset.  Tear the path down so
            # nothing leaks; the walk is a no-op if nothing is reserved.
            tear = ConfigPayload(ConfigType.TEARDOWN, self.node,
                                 payload.orig_dst, payload.orig_slot,
                                 payload.duration, payload.conn_id)
            self._send_config(payload.orig_dst, tear, cycle)
            return
        if success:
            conn.state = ConnState.ACTIVE
            conn.next_round_min = 0
            self.setups_ok += 1
            since = self._fault_since.pop(conn.dst, None)
            if since is not None:
                # the pair recovered: a working circuit exists again
                self.recovery_samples.append(cycle - since)
            self._fail_streak.pop(conn.dst, None)
            return
        self.setups_failed += 1
        # destroy any partial reservations left along the path
        tear = ConfigPayload(ConfigType.TEARDOWN, self.node, conn.dst,
                             conn.slot0, conn.duration, conn.conn_id)
        self._send_config(conn.dst, tear, cycle)
        if conn.retries < self.ccfg.max_setup_retries:
            conn.retries += 1
            self._send_setup(conn.dst, cycle, conn=conn)
        else:
            self.connections.pop(conn.dst, None)
            self.by_id.pop(conn.conn_id, None)

    # ------------------------------------------------------------------
    # resilience: timeouts, backoff, demotion (control phase)
    # ------------------------------------------------------------------
    def control(self, cycle: int) -> None:
        """Time out lost setups / teardown walks (resilience mode only;
        the builder registers the manager as a SimObject only when
        ``circuit.setup_timeout > 0``)."""
        if not self.ccfg.resilience_enabled:
            return
        for conn in list(self.connections.values()):
            if conn.state is not ConnState.PENDING:
                continue
            if conn.retry_at:
                if cycle >= conn.retry_at:
                    conn.retry_at = 0
                    self._send_setup(conn.dst, cycle, conn=conn)
            elif conn.deadline and cycle >= conn.deadline:
                self._on_setup_timeout(conn, cycle)
        for conn in list(self._tearing.values()):
            if cycle >= conn.deadline:
                self._on_teardown_timeout(conn, cycle)

    def _backoff(self, retries: int) -> int:
        t = self.ccfg.setup_timeout
        return min(t * self.ccfg.backoff_factor ** (retries - 1),
                   t * self.ccfg.backoff_cap)

    def _on_setup_timeout(self, conn: Connection, cycle: int) -> None:
        """The SETUP or its acknowledgement was lost: clear any partial
        path, then retry after a backoff (or give up and demote)."""
        self.setups_timed_out += 1
        if self.obs.enabled:
            self.obs.cs_setup(cycle, self._obs_track,
                              conn.conn_id, "timeout")
        tear = ConfigPayload(ConfigType.TEARDOWN, self.node, conn.dst,
                             conn.slot0, conn.duration, conn.conn_id)
        self._send_config(conn.dst, tear, cycle)
        self.teardowns_sent += 1
        # drop the id: a delayed (not lost) ack now takes the stale-ack
        # path, which tears its reservations down idempotently
        self.by_id.pop(conn.conn_id, None)
        if conn.retries < self.ccfg.max_setup_retries:
            conn.retries += 1
            conn.retry_at = cycle + self._backoff(conn.retries)
        else:
            self._note_pair_failure(conn.dst, cycle)
            self.connections.pop(conn.dst, None)

    def _on_teardown_timeout(self, conn: Connection, cycle: int) -> None:
        """No TEARDOWN_ACK in time: re-walk, or abandon and leave the
        leftovers to the orphan GC."""
        self.teardowns_timed_out += 1
        if self.obs.enabled:
            self.obs.cs_teardown(cycle, self._obs_track,
                                 conn.conn_id, "timeout")
        if conn.retries < self.ccfg.max_setup_retries:
            conn.retries += 1
            conn.deadline = cycle + self._backoff(conn.retries)
            payload = ConfigPayload(ConfigType.TEARDOWN, self.node,
                                    conn.dst, conn.slot0, conn.duration,
                                    conn.conn_id)
            self._send_config(conn.dst, payload, cycle)
            self.teardowns_sent += 1
        else:
            self._tearing.pop(conn.conn_id, None)
            self.by_id.pop(conn.conn_id, None)

    def _note_pair_failure(self, dst: int, cycle: int) -> None:
        self._fault_since.setdefault(dst, cycle)
        n = self._fail_streak.get(dst, 0) + 1
        self._fail_streak[dst] = n
        if n >= self.ccfg.demote_threshold:
            self._demoted[dst] = cycle + self.ccfg.demote_cycles
            self.pairs_demoted += 1
            self._fail_streak.pop(dst, None)

    # ------------------------------------------------------------------
    # router fault callbacks (wired by the network builder)
    # ------------------------------------------------------------------
    def notify_circuit_fault(self, conn_id: int, src: int,
                             cycle: int) -> None:
        """This node's router diverted a circuit flit off a dead link;
        tell the circuit's source once so it can tear down and demote."""
        if not self.ccfg.resilience_enabled or conn_id in self._nacked:
            return
        self._nacked.add(conn_id)
        nack = ConfigPayload(ConfigType.NACK_CIRCUIT, src, self.node,
                             0, 0, conn_id)
        if src == self.node:
            self.on_config(nack, cycle)
        else:
            self._send_config(src, nack, cycle)

    def on_teardown_done(self, payload: ConfigPayload, cycle: int) -> None:
        """This node's router completed a teardown walk; confirm it to
        the source (resilience mode only — the base protocol is
        fire-and-forget and must stay message-for-message identical)."""
        if not self.ccfg.resilience_enabled:
            return
        ack = ConfigPayload(ConfigType.TEARDOWN_ACK, payload.orig_src,
                            payload.orig_dst, payload.slot_id,
                            payload.duration, payload.conn_id)
        if payload.orig_src == self.node:
            self.on_config(ack, cycle)
        else:
            self._send_config(payload.orig_src, ack, cycle)

    # ------------------------------------------------------------------
    def reset_all(self) -> None:
        """Drop every connection (slot tables were globally reset)."""
        self.connections.clear()
        self.by_id.clear()
        self._dst_counts.clear()
        self._vicinity_fail.clear()
        self._tearing.clear()
        self._fail_streak.clear()
        if self.dlt is not None:
            self.dlt.clear()

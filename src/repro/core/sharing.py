"""Circuit-switched path sharing support (S10, Section III-A).

*Hitchhiker-sharing*: a node on an established circuit may inject its own
message onto the circuit's idle slots when the message heads to the same
destination.  The node learns about circuits passing through its router
from the Destination Lookup Table (:class:`DestinationLookupTable`),
updated as setup/teardown messages traverse the router.

*Vicinity-sharing*: a source with a circuit to ``Dest1`` may send a
message for an adjacent ``Dest2`` down the circuit; the message hops off
at ``Dest1`` and finishes through the packet-switched network (handled by
the NI; this module provides the candidate test).

Both schemes use 2-bit saturating failure counters: when sharing towards
a destination fails repeatedly (counter reaches the '10' state, i.e. 2),
a dedicated circuit setup is generated instead.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.network.topology import Mesh


class SaturatingCounter:
    """2-bit saturating counter (0..3) with a trigger threshold."""

    __slots__ = ("value", "threshold")

    def __init__(self, threshold: int = 2) -> None:
        self.value = 0
        self.threshold = threshold

    def up(self) -> bool:
        """Increment (saturating at 3); True when the threshold is hit."""
        if self.value < 3:
            self.value += 1
        return self.value >= self.threshold

    def down(self) -> None:
        if self.value > 0:
            self.value -= 1

    @property
    def triggered(self) -> bool:
        return self.value >= self.threshold


class DLTEntry(NamedTuple):
    dest: int          #: destination of the circuit passing through
    slot: int          #: slot index at *this* router (local wheel)
    duration: int
    outport: int       #: output port the circuit takes at this router
    conn: int          #: connection id (simulator-side validation)


class DestinationLookupTable:
    """Per-node DLT: circuits passing through this node's router.

    Capacity-limited (8 entries by default, < 16 bytes of state in the
    paper's 6x6 / 128-slot configuration).  Insertion beyond capacity
    evicts the oldest entry (FIFO), matching a minimal hardware table.
    """

    def __init__(self, capacity: int = 8, fail_threshold: int = 2) -> None:
        if capacity < 1:
            raise ValueError("DLT capacity must be >= 1")
        self.capacity = capacity
        self.fail_threshold = fail_threshold
        self._entries: List[DLTEntry] = []
        self._fail: Dict[int, SaturatingCounter] = {}
        self.lookups = 0
        self.updates = 0

    # ------------------------------------------------------------------
    def add(self, dest: int, slot: int, duration: int, outport: int,
            conn: int) -> None:
        self.remove_conn(conn)
        if len(self._entries) >= self.capacity:
            self._entries.pop(0)
        self._entries.append(DLTEntry(dest, slot, duration, outport, conn))
        self.updates += 1

    def remove_conn(self, conn: int) -> None:
        self._entries = [e for e in self._entries if e.conn != conn]

    def lookup(self, dest: int) -> Optional[DLTEntry]:
        """First circuit through this node heading exactly to *dest*."""
        self.lookups += 1
        for e in self._entries:
            if e.dest == dest:
                return e
        return None

    def entries(self) -> List[DLTEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._fail.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # sharing-failure escalation (per destination)
    # ------------------------------------------------------------------
    def note_failure(self, dest: int) -> bool:
        """Record a sharing failure; True => generate a dedicated setup
        and drop the destination's tracking entry (paper Section III-A1)."""
        ctr = self._fail.setdefault(dest, SaturatingCounter(self.fail_threshold))
        if ctr.up():
            del self._fail[dest]
            return True
        return False

    def note_success(self, dest: int) -> None:
        ctr = self._fail.get(dest)
        if ctr is not None:
            ctr.down()


def vicinity_candidate(mesh: Mesh, circuit_dest: int, msg_dest: int) -> bool:
    """True when *msg_dest* is adjacent to an established circuit's
    destination, making the circuit usable via vicinity-sharing."""
    return mesh.are_adjacent(circuit_dest, msg_dest)

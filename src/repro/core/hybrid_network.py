"""Assembly of the TDM hybrid-switched network (S5-S11 wired together)."""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from repro.config import NetworkConfig
from repro.core.circuit import ConnectionManager
from repro.core.hybrid_ni import HybridNetworkInterface
from repro.core.hybrid_router import HybridRouter
from repro.core.sharing import DestinationLookupTable
from repro.core.slot_sizing import SlotSizeController
from repro.core.slot_table import SlotClock
from repro.network.network import Network, _build
from repro.sim.kernel import Simulator


class HybridNetwork(Network):
    """A mesh of hybrid-switched routers plus circuit control plane."""

    def __init__(self, cfg: NetworkConfig, sim: Simulator, routers,
                 interfaces, links, clock: SlotClock) -> None:
        super().__init__(cfg, sim, routers, interfaces, links)
        self.clock = clock
        self.managers: List[ConnectionManager] = []
        self.size_controller: Optional[SlotSizeController] = None

    # ------------------------------------------------------------------
    def _reset_router_extra(self, router, cycle: int) -> None:
        if self.size_controller is not None:
            self.size_controller.reset_integral(cycle)

    def cs_flits_ejected(self) -> int:
        return int(sum(ni.counters["cs_flit_ejected"]
                       for ni in self.interfaces))

    def ps_flits_ejected(self) -> int:
        return int(sum(ni.counters["ps_flit_ejected"]
                       for ni in self.interfaces))

    def cs_flit_fraction(self) -> float:
        cs = self.cs_flits_ejected()
        total = cs + self.ps_flits_ejected()
        return cs / total if total else 0.0

    def active_connections(self) -> int:
        from repro.core.circuit import ConnState
        return sum(1 for m in self.managers for c in m.connections.values()
                   if c.state is ConnState.ACTIVE)

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update({
            "clock": {"active": self.clock.active,
                      "generation": self.clock.generation},
            "managers": [m.state_dict() for m in self.managers],
            "size_controller": None if self.size_controller is None
            else self.size_controller.state_dict(),
        })
        return state

    def load_state_dict(self, state: dict) -> None:
        # clock first: slot arithmetic during any later wiring fix-ups
        # must already see the restored wheel size.  The SlotClock object
        # is shared by every router/manager, so mutate it in place.
        self.clock.set_active(state["clock"]["active"])
        self.clock.generation = state["clock"]["generation"]
        super().load_state_dict(state)
        for m, sub in zip(self.managers, state["managers"], strict=True):
            m.load_state_dict(sub)
        if self.size_controller is not None \
                and state["size_controller"] is not None:
            self.size_controller.load_state_dict(state["size_controller"])
        # relink shared objects and rebuild NI-bound injection callbacks
        for router, ni, manager in zip(self.routers, self.interfaces,
                                       self.managers, strict=True):
            manager.dlt = router.dlt
            router.rebind_cs_injections(ni)

    # ------------------------------------------------------------------
    # resilience: orphaned-reservation GC
    # ------------------------------------------------------------------
    def collect_orphans(self) -> int:
        """Release slot reservations whose connection no source manager
        knows (lost teardowns, abandoned walks).  Returns slots freed."""
        live = set()
        for m in self.managers:
            live.update(m.by_id)
        freed = 0
        for router in self.routers:
            st = router.slot_state
            for inport, table in enumerate(st.in_tables):
                for slot in range(self.clock.active):
                    if not table.valid[slot]:
                        continue
                    conn = table.conn[slot]
                    if conn in live:
                        continue
                    outport = table.outport[slot]
                    table.clear(slot)
                    st.out_owner[outport][slot] = -1
                    if router.dlt is not None:
                        router.dlt.remove_conn(conn)
                    router.counters.inc("orphan_slot_gc")
                    freed += 1
        return freed


def build_hybrid_network(
    cfg: NetworkConfig,
    sim: Simulator,
    decision_fn: Optional[Callable] = None,
    eligible_fn: Optional[Callable] = None,
) -> HybridNetwork:
    """Build a TDM hybrid network, including per-node connection
    managers, DLTs (when path sharing is on) and the dynamic slot-table
    size controller."""
    st = cfg.slot_table
    active = st.initial_active if st.dynamic_sizing else st.size
    clock = SlotClock(st.size, active=active)

    net: HybridNetwork = _build(
        cfg, sim,
        router_cls=partial(HybridRouter, clock=clock),
        ni_cls=HybridNetworkInterface,
        net_cls=partial(HybridNetwork, clock=clock),
    )

    sharing = cfg.circuit.hitchhiker or cfg.circuit.vicinity
    controller = SlotSizeController(clock, st, net.routers, net.managers)
    net.size_controller = controller
    sim.add(controller)

    for node in range(net.mesh.num_nodes):
        router = net.routers[node]
        ni = net.interfaces[node]
        dlt = None
        if sharing:
            dlt = DestinationLookupTable(
                capacity=cfg.circuit.dlt_size,
                fail_threshold=cfg.circuit.sharing_fail_threshold)
            router.dlt = dlt
        manager = ConnectionManager(
            node, cfg, clock, net.mesh, ni, router,
            decision_fn=decision_fn, eligible_fn=eligible_fn,
            dlt=dlt, size_controller=controller)
        ni.manager = manager
        ni.config_handler = manager.on_config
        router.on_setup_rejected = manager.on_setup_rejected
        router.on_circuit_fault = manager.notify_circuit_fault
        router.on_teardown_done = manager.on_teardown_done
        if cfg.circuit.resilience_enabled:
            # timeouts/backoff run in the control phase; base-protocol
            # runs never register the manager (zero overhead, identical
            # message streams)
            sim.add(manager)
        net.managers.append(manager)
    return net

"""Switching-decision policies (S8, Sections II-A and V-A2).

A decision policy answers: *given that a circuit (or shared circuit) to
the destination exists, should this particular message use it?*  The
policy receives the stall the message would suffer waiting for its time
slot and simple latency estimates for both switching modes.

* :func:`stall_threshold_decision` — the synthetic-workload policy: use
  the circuit only when the wait for the reserved slot is small
  (Section II-A: "allowing a message to be packet-switched if the
  established path corresponds to a time slot that requires stalling").
* :func:`slack_decision` — the heterogeneous-workload policy for GPU
  messages (Section V-A2): circuit-switch only when the message's slack,
  estimated from the number of available warps in the issuing SM, covers
  the full circuit-switched transmission latency.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.flit import Message

#: signature: (msg, wait_cycles, cs_latency_est, ps_latency_est) -> bool
DecisionFn = Callable[[Message, int, int, int], bool]


def stall_threshold_decision(threshold: int) -> DecisionFn:
    """Circuit-switch when the slot wait is at most *threshold* cycles,
    unless packet switching would be outright faster."""

    def decide(msg: Message, wait: int, cs_lat: int, ps_lat: int) -> bool:
        if wait > threshold:
            return False
        return cs_lat <= ps_lat

    return decide


def slack_decision(default_slack: int = 0) -> DecisionFn:
    """GPU policy: circuit-switch only when no performance penalty is
    expected (Section V-A2).

    A message is circuit-switched when the circuit is estimated to be at
    least as fast as packet switching, or when the message's slack —
    carried in ``msg.meta['slack']``, estimated by the issuing SM from
    its available-warp count — covers the *extra* latency the circuit
    would add over the packet-switched alternative.
    """

    def decide(msg: Message, wait: int, cs_lat: int, ps_lat: int) -> bool:
        if cs_lat <= ps_lat:
            return True
        slack = msg.meta.get("slack", default_slack)
        return slack >= (cs_lat - ps_lat)

    return decide


class FeedbackDecision:
    """Performance-monitor-driven policy (the Section V-B2 future-work
    direction: "accurate performance monitors can be referred in order
    to avoid performance penalty").

    Instead of trusting the analytic estimates alone, the policy uses
    the source NI's *observed* latency EWMAs: a message is
    circuit-switched when its slot wait plus the observed circuit
    transit latency undercuts the observed packet-switched latency plus
    the message's slack (plus a configurable margin).

    The connection manager binds the policy to its NI on construction
    (``bind``); until the first feedback samples arrive the analytic
    estimates are used.
    """

    def __init__(self, margin: int = 0) -> None:
        self.margin = margin
        self.ni = None

    def bind(self, ni) -> "FeedbackDecision":
        self.ni = ni
        return self

    def __call__(self, msg: Message, wait: int, cs_lat: int,
                 ps_lat: int) -> bool:
        cs = cs_lat
        ps = ps_lat
        if self.ni is not None:
            if self.ni.cs_latency_ewma > 0:
                # observed circuit transit excludes the wait; add it back
                cs = wait + self.ni.cs_latency_ewma
            if self.ni.ps_latency_ewma > 0:
                ps = max(ps, self.ni.ps_latency_ewma)
        slack = msg.meta.get("slack", 0)
        return cs <= ps + slack + self.margin


#: names accepted by :func:`make_decision_policy` (CLI / sweep axis)
DECISION_POLICIES = ("slack", "stall", "feedback", "always", "never")


def make_decision_policy(name: str, *, threshold: int = 2,
                         default_slack: int = 0, margin: int = 0):
    """Build a decision policy from its CLI name.

    ``feedback`` returns a :class:`FeedbackDecision` template; the
    connection manager copies and ``bind``s it per NI, so replayed
    traffic (whose ``meta['slack']`` survives the v2 trace round trip)
    is gated by *observed* latencies at each source.
    """
    if name == "slack":
        return slack_decision(default_slack=default_slack)
    if name == "stall":
        return stall_threshold_decision(threshold)
    if name == "feedback":
        return FeedbackDecision(margin=margin)
    if name == "always":
        return always_circuit()
    if name == "never":
        return never_circuit()
    raise ValueError(
        f"unknown decision policy {name!r}; choose from {DECISION_POLICIES}")


def always_circuit() -> DecisionFn:
    """Use the circuit whenever one exists (ablation baseline)."""
    return lambda msg, wait, cs_lat, ps_lat: True


def never_circuit() -> DecisionFn:
    """Never use circuits even when established (ablation baseline)."""
    return lambda msg, wait, cs_lat, ps_lat: False


def estimate_ps_latency(hops: int, pipeline_latency: int, size: int) -> int:
    """Zero-load packet-switched latency: per-hop pipeline + serialisation."""
    per_hop = pipeline_latency + 2  # BW..SA wait + ST + link
    return (hops + 1) * per_hop + (size - 1)


def estimate_cs_latency(hops: int, wait: int, size: int) -> int:
    """Circuit latency: slot wait + 2 cycles/router + serialisation."""
    return wait + 2 * (hops + 1) + (size - 1)

"""Dynamic time-division granularity adjustment (S9, Section II-C).

The network starts with only a small portion of every slot table active
(the rest power-gated) and doubles the active entry count whenever path
allocation keeps failing.  On each resize every slot table is reset and
path setup restarts (the per-node connection managers drop all state and
re-qualify their frequent destinations).

The controller also integrates active-entry-cycles for the static-energy
model: leakage is paid only for powered entries.
"""

from __future__ import annotations

from typing import List

from repro.config import SlotTableConfig
from repro.core.slot_table import SlotClock
from repro.obs.trace import NULL_RECORDER
from repro.sim.kernel import SimObject
from repro.sim.stats import TimeWeighted


class SlotSizeController(SimObject):
    """Network-global controller of the active slot-table size."""

    # clock/routers/managers are shared wiring; the clock's active size
    # and generation are restored by the network-level snapshot
    _state_attrs = ("_consecutive_failures", "_resize_pending", "resizes",
                    "entries_integral")

    def __init__(self, clock: SlotClock, cfg: SlotTableConfig,
                 routers: List, managers: List) -> None:
        self.clock = clock
        self.cfg = cfg
        self.routers = routers
        self.managers = managers
        self._consecutive_failures = 0
        self._resize_pending = False
        self.resizes = 0
        #: active entries over time (per input port per router)
        self.entries_integral = TimeWeighted(clock.active, 0)
        #: trace recorder (observability wiring, never snapshot state)
        self.obs = NULL_RECORDER

    # ------------------------------------------------------------------
    def note_setup_result(self, success: bool) -> None:
        if not self.cfg.dynamic_sizing:
            return
        if success:
            self._consecutive_failures = 0
            return
        self._consecutive_failures += 1
        if (self._consecutive_failures >= self.cfg.resize_fail_threshold
                and self.clock.active < self.cfg.size):
            self._resize_pending = True

    # ------------------------------------------------------------------
    def control(self, cycle: int) -> None:
        if not self._resize_pending:
            return
        self._resize_pending = False
        self._consecutive_failures = 0
        new_active = min(self.cfg.size, self.clock.active * 2)
        if new_active == self.clock.active:
            return
        self.clock.set_active(new_active)
        self.clock.generation += 1
        self.entries_integral.set(new_active, cycle)
        self.resizes += 1
        if self.obs.enabled:
            self.obs.resize(cycle, "sim", new_active, self.clock.generation)
        # "Once the capacity of the slot table is increased, all slot
        # tables are reset, and the path setup procedure restarts."
        for r in self.routers:
            r.slot_state.reset()
            if r.dlt is not None:
                r.dlt.clear()
        for m in self.managers:
            m.reset_all()

    # ------------------------------------------------------------------
    def reset_integral(self, cycle: int) -> None:
        self.entries_integral.set(self.clock.active, cycle)
        self.entries_integral.integral = 0.0

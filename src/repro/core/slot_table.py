"""TDM slot tables (S5, Section II and Figure 1).

Each router input port keeps a :class:`SlotTable` whose entry for slot
``cycle mod S`` holds a valid bit and an output port id (we additionally
record the owning connection id, which a real implementation does not
need — it lets the simulator validate teardown walks and path sharing).

:class:`RouterSlotState` bundles the per-input tables with the per-output
owner map used for the output-conflict check of Figure 1 (setup 3 fails
because ``out_4`` is already reserved for ``in_1`` at slot ``s3``), and
implements reservation/release of ``duration`` consecutive slots in
modulo-S fashion (setup 1 wraps from ``s3`` to ``s0``).

:class:`SlotClock` is the network-global active-table-size register used
by dynamic time-division granularity adjustment (Section II-C): only the
first ``active`` entries of each table are powered and the TDM wheel is
``cycle mod active``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.network.topology import NUM_PORTS


class SlotClock:
    """Global TDM wheel: maps cycles to slot indices over active entries.

    The per-hop slot advance (+2 mod the active size, one ST cycle plus
    one link cycle — see :mod:`repro.network.link`) is a static function
    of the wheel size, so it is precomputed as a lookup table
    (:attr:`advance2`).  Any write to :attr:`active` — :meth:`set_active`,
    a snapshot restore or a test poking the attribute directly — rebuilds
    the table via :meth:`__setattr__`, so it can never go stale.  The
    hook costs nothing on the hot path: the wheel is *read* every cycle
    but *written* only on dynamic resize and restore.
    """

    __slots__ = ("max_size", "active", "generation", "advance2")

    def __init__(self, max_size: int, active: Optional[int] = None) -> None:
        if max_size < 2:
            raise ValueError("slot table size must be >= 2")
        self.max_size = max_size
        active = max_size if active is None else active
        if not (2 <= active <= max_size):
            raise ValueError("active size out of range")
        #: per-hop slot advance map ``advance2[s] == (s + 2) % active``,
        #: rebuilt by ``__setattr__`` on this assignment and every later
        #: resize
        self.active = active
        #: bumped on every dynamic resize; configuration messages are
        #: stamped with it so a setup/teardown crossing a table reset can
        #: never leave reservations the teardown walk cannot reach
        self.generation = 0

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name == "active":
            object.__setattr__(
                self, "advance2",
                [(s + 2) % value for s in range(value)])

    def set_active(self, active: int) -> None:
        """Change the active wheel size (the advance map rebuilds
        automatically).  Generation bumping stays with the caller: a
        dynamic resize bumps it, a snapshot restore must not."""
        if not (2 <= active <= self.max_size):
            raise ValueError("active size out of range")
        self.active = active

    def slot(self, cycle: int) -> int:
        return cycle % self.active

    def wrap(self, slot: int) -> int:
        return slot % self.active

    def next_cycle_for_slot(self, slot: int, not_before: int) -> int:
        """Earliest cycle >= *not_before* whose slot index equals *slot*."""
        s = self.active
        base = self.wrap(slot)
        delta = (base - not_before) % s
        return not_before + delta


class SlotTable:
    """Slot table of one input port: valid bit + output port (+ conn id)."""

    __slots__ = ("size", "valid", "outport", "conn")

    def __init__(self, size: int) -> None:
        self.size = size
        self.valid = [False] * size
        self.outport = [0] * size
        self.conn = [-1] * size

    def set(self, slot: int, outport: int, conn: int) -> None:
        self.valid[slot] = True
        self.outport[slot] = outport
        self.conn[slot] = conn

    def clear(self, slot: int) -> None:
        self.valid[slot] = False
        self.conn[slot] = -1

    def lookup(self, slot: int) -> Optional[Tuple[int, int]]:
        """(outport, conn) when *slot* is reserved, else None."""
        if self.valid[slot]:
            return self.outport[slot], self.conn[slot]
        return None

    def reserved_count(self, active: int) -> int:
        return sum(self.valid[:active])

    def reset(self) -> None:
        for i in range(self.size):
            self.valid[i] = False
            self.conn[i] = -1


class RouterSlotState:
    """All slot state of one hybrid router.

    ``out_owner[outport][slot]`` records which input port holds the
    output at that slot (or -1), giving the O(1) output-conflict check.
    """

    __slots__ = ("clock", "in_tables", "out_owner", "reserve_cap")

    def __init__(self, clock: SlotClock, reserve_cap: float = 0.9) -> None:
        self.clock = clock
        size = clock.max_size
        self.in_tables: List[SlotTable] = [SlotTable(size) for _ in range(NUM_PORTS)]
        self.out_owner: List[List[int]] = [[-1] * size for _ in range(NUM_PORTS)]
        self.reserve_cap = reserve_cap

    # ------------------------------------------------------------------
    def _slots(self, start: int, duration: int) -> Sequence[int]:
        wheel = self.clock.active
        return [(start + i) % wheel for i in range(duration)]

    def can_reserve(self, inport: int, outport: int, start: int,
                    duration: int) -> bool:
        """Figure-1 checks: input slot free AND output unclaimed, for all
        ``duration`` consecutive slots, plus the anti-starvation cap."""
        table = self.in_tables[inport]
        owner = self.out_owner[outport]
        slots = self._slots(start, duration)
        for s in slots:
            if table.valid[s] or owner[s] != -1:
                return False
        cap_entries = int(self.reserve_cap * self.clock.active)
        if table.reserved_count(self.clock.active) + duration > cap_entries:
            return False
        return True

    def reserve(self, inport: int, outport: int, start: int, duration: int,
                conn: int) -> None:
        if not self.can_reserve(inport, outport, start, duration):
            raise ValueError("reservation conflict: call can_reserve first")
        for s in self._slots(start, duration):
            self.in_tables[inport].set(s, outport, conn)
            self.out_owner[outport][s] = inport

    def release(self, inport: int, start: int, duration: int,
                conn: int) -> Optional[int]:
        """Invalidate a reservation; returns its outport (None if absent).

        Only entries still owned by *conn* are cleared, so a release
        racing a table reset cannot clobber an unrelated reservation.
        """
        table = self.in_tables[inport]
        outport: Optional[int] = None
        for s in self._slots(start, duration):
            if table.valid[s] and table.conn[s] == conn:
                outport = table.outport[s]
                table.clear(s)
                self.out_owner[outport][s] = -1
        return outport

    # ------------------------------------------------------------------
    def lookup_in(self, inport: int, slot: int) -> Optional[Tuple[int, int]]:
        return self.in_tables[inport].lookup(slot)

    def output_reserved(self, outport: int, slot: int) -> bool:
        return self.out_owner[outport][slot] != -1

    def reserved_entries(self) -> int:
        active = self.clock.active
        return sum(t.reserved_count(active) for t in self.in_tables)

    def reset(self) -> None:
        for t in self.in_tables:
            t.reset()
        for owner in self.out_owner:
            for i in range(len(owner)):
                owner[i] = -1

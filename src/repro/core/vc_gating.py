"""Aggressive VC power gating (S11, Section III-B).

Each router periodically compares its virtual-channel utilisation ``mu``
(mean fraction of active data VCs that are busy, sampled every cycle)
against two thresholds:

* ``mu > threshold_high``  -> activate one more VC set
* ``mu < threshold_low``   -> begin deactivating one VC set

A "VC set" is one VC index across all input ports.  Deactivation is
two-phase, as required by the paper ("the VC must be evacuated before
adjusting"): the VC is first removed from the advertised count so
upstream allocators stop granting it (the downstream-update message),
then actually power-gated once every port's buffer for that index has
drained; only then does its leakage stop accruing.
"""

from __future__ import annotations

from repro.config import VCGatingConfig


class VCGatingController:
    """Per-router dual-threshold VC tuner."""

    def __init__(self, router, cfg: VCGatingConfig) -> None:
        self.router = router
        self.cfg = cfg
        self._next_epoch = cfg.epoch
        self._draining: int = -1  # VC index waiting to drain, or -1
        self.activations = 0
        self.deactivations = 0

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        r = self.router
        # finish a pending drain as soon as the VC empties
        if self._draining >= 0 and r.vc_drainable(self._draining):
            r.set_powered_vcs(r.active_vcs, cycle)
            self._draining = -1
            self.deactivations += 1
        if cycle < self._next_epoch:
            return
        self._next_epoch = cycle + self.cfg.epoch
        if self.cfg.metric == "queue_delay":
            # Section V-B4 future-work variant: gate on packet latency
            delay = r.pop_queue_delay()
            r.pop_utilisation()
            high = delay > self.cfg.delay_high
            low = delay < self.cfg.delay_low
        else:
            mu = r.pop_utilisation()
            high = mu > self.cfg.threshold_high
            low = mu < self.cfg.threshold_low
        max_vcs = r.rcfg.num_vcs
        if high and r.active_vcs < max_vcs:
            # cancel any drain in progress and power the set back up
            self._draining = -1
            r.active_vcs += 1
            r.set_powered_vcs(max(r.powered_vcs, r.active_vcs), cycle)
            self.activations += 1
        elif (low and r.active_vcs > self.cfg.min_vcs
              and self._draining < 0):
            r.active_vcs -= 1
            self._draining = r.active_vcs  # highest index drains
            # powered count unchanged until the drain completes

    @property
    def draining_vc(self) -> int:
        return self._draining

    def state_dict(self) -> dict:
        return {"next_epoch": self._next_epoch, "draining": self._draining,
                "activations": self.activations,
                "deactivations": self.deactivations}

    def load_state_dict(self, state: dict) -> None:
        self._next_epoch = state["next_epoch"]
        self._draining = state["draining"]
        self.activations = state["activations"]
        self.deactivations = state["deactivations"]

"""The paper's primary contribution (S5-S11).

TDM slot tables, the hybrid-switched router, the circuit path
configuration protocol, switching-decision policies, circuit-switched
path sharing (hitchhiker + vicinity), dynamic slot-table sizing and
aggressive VC power gating.
"""

from repro.core.slot_table import SlotClock, SlotTable, RouterSlotState
from repro.core.circuit import Connection, ConnectionManager, ConnState
from repro.core.decision import (
    stall_threshold_decision,
    slack_decision,
    always_circuit,
    never_circuit,
)
from repro.core.sharing import DestinationLookupTable, SaturatingCounter
from repro.core.vc_gating import VCGatingController
from repro.core.slot_sizing import SlotSizeController
from repro.core.hybrid_router import HybridRouter
from repro.core.hybrid_ni import HybridNetworkInterface
from repro.core.hybrid_network import HybridNetwork, build_hybrid_network

__all__ = [
    "SlotClock", "SlotTable", "RouterSlotState",
    "Connection", "ConnectionManager", "ConnState",
    "stall_threshold_decision", "slack_decision",
    "always_circuit", "never_circuit",
    "DestinationLookupTable", "SaturatingCounter",
    "VCGatingController", "SlotSizeController",
    "HybridRouter", "HybridNetworkInterface",
    "HybridNetwork", "build_hybrid_network",
]

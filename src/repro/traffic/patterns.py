"""Synthetic traffic patterns (Section IV).

The paper evaluates uniform random (UR), tornado (TOR) and transpose
(TR); we additionally provide the standard bit-complement, bit-reverse,
shuffle, neighbour and hotspot patterns for wider coverage.

A pattern maps a source node to a destination node (or ``None`` when the
source does not send under that pattern, e.g. transpose diagonal nodes).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.network.topology import Mesh

PATTERN_NAMES = (
    "uniform_random",
    "tornado",
    "transpose",
    "bit_complement",
    "bit_reverse",
    "shuffle",
    "neighbor",
    "hotspot",
)


class TrafficPattern:
    """A named src->dst mapping over a mesh."""

    def __init__(self, name: str, mesh: Mesh,
                 fn: Callable[[int], Optional[int]]) -> None:
        self.name = name
        self.mesh = mesh
        self._fn = fn

    def __call__(self, src: int) -> Optional[int]:
        dst = self._fn(src)
        if dst == src:
            return None
        return dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrafficPattern({self.name!r}, {self.mesh!r})"


def _bits(n: int) -> int:
    b = (n - 1).bit_length()
    return max(b, 1)


def make_pattern(name: str, mesh: Mesh,
                 rng: Optional[np.random.Generator] = None,
                 hotspot_nodes: Optional[list] = None,
                 hotspot_fraction: float = 0.2) -> TrafficPattern:
    """Build a :class:`TrafficPattern` by name.

    ``uniform_random`` and ``hotspot`` need *rng*; ``hotspot`` sends
    ``hotspot_fraction`` of traffic to ``hotspot_nodes`` (default: the
    mesh centre node) and the rest uniformly.
    """
    n = mesh.num_nodes
    w, h = mesh.width, mesh.height

    if name == "uniform_random":
        if rng is None:
            raise ValueError("uniform_random needs an rng")

        def fn(src: int) -> int:
            dst = int(rng.integers(n - 1))
            return dst if dst < src else dst + 1  # exclude self

    elif name == "tornado":
        # (x, y) -> (x + ceil(k/2) - 1, y), k = mesh width [paper Sec. IV]
        k = w
        off = (k + 1) // 2 - 1 if k % 2 else k // 2 - 1

        def fn(src: int) -> int:
            x, y = mesh.coords(src)
            return mesh.node_at((x + max(off, 1)) % k, y)

    elif name == "transpose":

        def fn(src: int) -> Optional[int]:
            x, y = mesh.coords(src)
            if x == y:
                return None
            if y >= w or x >= h:
                return None  # non-square meshes: clip
            return mesh.node_at(y, x)

    elif name == "bit_complement":
        bx, by = _bits(w), _bits(h)

        def fn(src: int) -> Optional[int]:
            x, y = mesh.coords(src)
            cx, cy = (~x) & ((1 << bx) - 1), (~y) & ((1 << by) - 1)
            if cx >= w or cy >= h:
                return None
            return mesh.node_at(cx, cy)

    elif name == "bit_reverse":
        b = _bits(n)

        def fn(src: int) -> Optional[int]:
            r = int(f"{src:0{b}b}"[::-1], 2)
            return r if r < n else None

    elif name == "shuffle":
        b = _bits(n)

        def fn(src: int) -> Optional[int]:
            r = ((src << 1) | (src >> (b - 1))) & ((1 << b) - 1)
            return r if r < n else None

    elif name == "neighbor":

        def fn(src: int) -> int:
            x, y = mesh.coords(src)
            return mesh.node_at((x + 1) % w, y)

    elif name == "hotspot":
        if rng is None:
            raise ValueError("hotspot needs an rng")
        spots = hotspot_nodes or [mesh.node_at(w // 2, h // 2)]

        def fn(src: int) -> int:
            if rng.random() < hotspot_fraction:
                return spots[int(rng.integers(len(spots)))]
            dst = int(rng.integers(n - 1))
            return dst if dst < src else dst + 1

    else:
        raise ValueError(f"unknown pattern {name!r}; "
                         f"expected one of {PATTERN_NAMES}")

    return TrafficPattern(name, mesh, fn)

"""Bernoulli synthetic traffic sources (Section IV).

Injection rate is expressed in flits/node/cycle of *offered* load;
message generation probability is the rate divided by the
packet-switched data packet size, so all schemes see the same offered
message stream (circuit switching then carries the same payload in
fewer flits, which is part of the technique's advantage).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import NetworkConfig
from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.network import Network
from repro.traffic.patterns import TrafficPattern


class SyntheticSource(Endpoint):
    """Per-node Bernoulli message generator following a traffic pattern."""

    def __init__(self, node: int, cfg: NetworkConfig,
                 pattern: TrafficPattern,
                 injection_rate: float,
                 rng: np.random.Generator,
                 stop_cycle: Optional[int] = None) -> None:
        super().__init__()
        if injection_rate < 0:
            raise ValueError("injection rate must be >= 0")
        self.node = node
        self.cfg = cfg
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.msg_prob = injection_rate / cfg.packet_size("ps_data")
        self.rng = rng
        self.stop_cycle = stop_cycle
        self.messages_generated = 0
        self.messages_received = 0

    def quiescent(self, cycle: int) -> bool:
        # mirrors tick() exactly: a stopped or zero-rate source returns
        # before touching the RNG, now and at every later cycle (rates
        # are only ever lowered at runtime, never raised)
        return (self.msg_prob <= 0
                or (self.stop_cycle is not None and cycle >= self.stop_cycle))

    def tick(self, cycle: int) -> None:
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return
        if self.msg_prob <= 0 or self.rng.random() >= self.msg_prob:
            return
        dst = self.pattern(self.node)
        if dst is None:
            return
        msg = Message(src=self.node, dst=dst, mclass=MessageClass.DATA,
                      size_flits=self.cfg.packet_size("ps_data"),
                      create_cycle=cycle)
        self.ni.send(msg)
        self.messages_generated += 1

    def on_message(self, msg: Message, cycle: int) -> None:
        self.messages_received += 1

    def state_dict(self) -> dict:
        # msg_prob is mutable at runtime (fault experiments drain traffic
        # by zeroing it), so it is state, not derived configuration
        return {"injection_rate": self.injection_rate,
                "msg_prob": self.msg_prob,
                "stop_cycle": self.stop_cycle,
                "messages_generated": self.messages_generated,
                "messages_received": self.messages_received}

    def load_state_dict(self, state: dict) -> None:
        self.injection_rate = state["injection_rate"]
        self.msg_prob = state["msg_prob"]
        self.stop_cycle = state["stop_cycle"]
        self.messages_generated = state["messages_generated"]
        self.messages_received = state["messages_received"]


def attach_synthetic_sources(net: Network, pattern: TrafficPattern,
                             injection_rate: float,
                             rng: np.random.Generator,
                             stop_cycle: Optional[int] = None,
                             ) -> List[SyntheticSource]:
    """Attach one :class:`SyntheticSource` to every node of *net*."""
    sources = []
    for node in range(net.mesh.num_nodes):
        src = SyntheticSource(node, net.cfg, pattern, injection_rate, rng,
                              stop_cycle=stop_cycle)
        net.attach_endpoint(node, src)
        sources.append(src)
    return sources

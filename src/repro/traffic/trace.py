"""Message traces: record a simulation's traffic and replay it.

Useful for regression tests (identical traffic across schemes), for
debugging the heterogeneous models, and as the substitute for the
paper's full-system simulator traces: any workload model can be captured
once and replayed against every network scheme.
"""

from __future__ import annotations

import json
from typing import Iterable, List, NamedTuple, Optional

from repro.network.flit import Message, MessageClass
from repro.network.interface import Endpoint
from repro.network.network import Network


class TraceEvent(NamedTuple):
    cycle: int
    src: int
    dst: int
    mclass: int
    size_flits: int


class TraceRecorder:
    """Collects message-send events; attach via :meth:`wrap_send`."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, cycle: int, msg: Message) -> None:
        self.events.append(TraceEvent(cycle, msg.src, msg.dst,
                                      int(msg.mclass), msg.size_flits))

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for ev in self.events:
                fh.write(json.dumps(list(ev)) + "\n")

    @staticmethod
    def load(path: str) -> List[TraceEvent]:
        events = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    events.append(TraceEvent(*json.loads(line)))
        return events


class TraceSource(Endpoint):
    """Replays the events of one source node from a trace."""

    def __init__(self, node: int, events: Iterable[TraceEvent]) -> None:
        super().__init__()
        self._events = sorted((e for e in events if e.src == node),
                              key=lambda e: e.cycle)
        self._next = 0
        self.messages_received = 0

    def tick(self, cycle: int) -> None:
        while (self._next < len(self._events)
               and self._events[self._next].cycle <= cycle):
            ev = self._events[self._next]
            self._next += 1
            msg = Message(src=ev.src, dst=ev.dst,
                          mclass=MessageClass(ev.mclass),
                          size_flits=ev.size_flits, create_cycle=cycle)
            self.ni.send(msg)

    def on_message(self, msg: Message, cycle: int) -> None:
        self.messages_received += 1

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._events)


def attach_trace_sources(net: Network,
                         events: List[TraceEvent]) -> List[TraceSource]:
    """Attach replay sources for every node of *net*."""
    sources = []
    for node in range(net.mesh.num_nodes):
        src = TraceSource(node, events)
        net.attach_endpoint(node, src)
        sources.append(src)
    return sources

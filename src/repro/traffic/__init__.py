"""Synthetic traffic generation and traces (S14)."""

from repro.traffic.patterns import (
    PATTERN_NAMES,
    TrafficPattern,
    make_pattern,
)
from repro.traffic.synthetic import SyntheticSource, attach_synthetic_sources
from repro.traffic.trace import TraceEvent, TraceRecorder, TraceSource

__all__ = [
    "PATTERN_NAMES",
    "TrafficPattern",
    "make_pattern",
    "SyntheticSource",
    "attach_synthetic_sources",
    "TraceEvent",
    "TraceRecorder",
    "TraceSource",
]

"""Synthetic traffic generation and traces (S14)."""

import warnings

from repro.traffic.patterns import (
    PATTERN_NAMES,
    TrafficPattern,
    make_pattern,
)
from repro.traffic.synthetic import SyntheticSource, attach_synthetic_sources
from repro.traffic.trace import (
    TRACE_VERSION,
    MessageTraceRecorder,
    TraceEvent,
    TraceFormatError,
    TraceSource,
    attach_trace_sources,
    load_trace,
    upgrade_trace,
)

__all__ = [
    "PATTERN_NAMES",
    "TrafficPattern",
    "make_pattern",
    "SyntheticSource",
    "attach_synthetic_sources",
    "TRACE_VERSION",
    "MessageTraceRecorder",
    "TraceEvent",
    "TraceFormatError",
    "TraceRecorder",
    "TraceSource",
    "attach_trace_sources",
    "load_trace",
    "upgrade_trace",
]


def __getattr__(name: str):
    if name == "TraceRecorder":
        warnings.warn(
            "repro.traffic.TraceRecorder was renamed MessageTraceRecorder "
            "(it shadowed the unrelated repro.obs.TraceRecorder); update "
            "the import", DeprecationWarning, stacklevel=2)
        return MessageTraceRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

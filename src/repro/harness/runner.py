"""Synthetic-workload run primitives (Section IV methodology).

The paper warms the network up with 1000 packets and simulates 100,000
packets.  A Python cycle-level model cannot afford that per sweep point,
so runs are cycle-budgeted and scaled by ``REPRO_SCALE`` (default 1.0 ~
a few thousand measured cycles per point; 4.0 approaches paper-length
statistics for overnight runs).

Robustness: a run that livelocks (the fault watchdog raising
:class:`~repro.sim.kernel.LivelockError`) is reported as a failed
:class:`SynthRun` (``note`` set, stats as measured up to the stall)
instead of aborting a whole sweep.  Long runs can be checkpointed
periodically and resumed after a crash via the ``checkpoint_dir`` /
``checkpoint_cycles`` parameters (see :mod:`repro.sim.checkpoint`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import NetworkConfig, scheme_config
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.network.network import Network, build_network
from repro.sim.kernel import LivelockError, Simulator, default_engine
from repro.traffic import attach_synthetic_sources, make_pattern


def scale() -> float:
    """Global experiment-size multiplier from ``REPRO_SCALE``."""
    try:
        return max(0.05, float(os.environ.get("REPRO_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(cycles: int) -> int:
    return max(200, int(cycles * scale()))


@dataclass
class SynthRun:
    """Everything measured in one synthetic-traffic simulation."""

    scheme: str
    pattern: str
    offered: float              #: flits/node/cycle offered
    accepted: float             #: accepted load (PS-flit equivalents)
    avg_latency: float
    p99_latency: float
    cs_fraction: float
    energy: EnergyReport
    messages_delivered: int
    cycles: int
    slot_wheel: int             #: final active slot-table size (TDM)
    note: str = ""              #: "" = clean run; e.g. "livelock@1234"
    #: canonical hash of the final simulation state (only when the run
    #: was asked for it); lets sweep fabrics compare runs bit-for-bit
    state_hash: str = ""

    @property
    def energy_per_message_pj(self) -> float:
        return self.energy.total / max(1, self.messages_delivered)

    @property
    def failed(self) -> bool:
        return bool(self.note)


def prepare_synthetic(scheme: str, pattern: str, rate: float,
                      seed: int = 1, width: int = 6, height: int = 6,
                      slot_table_size: int = 128,
                      cfg: Optional[NetworkConfig] = None,
                      engine: Optional[str] = None,
                      ) -> Tuple[Simulator, Network, list]:
    """Build the (sim, net, sources) triple for one synthetic run.

    This is the canonical construction path: snapshot restore requires
    rebuilding an *identical* object graph, so everything that runs a
    synthetic workload — including the replay verifier — must go through
    here (construction order matters: fault planning and traffic
    attachment draw from the seeded generator).  ``engine`` selects the
    scheduler ("fast" activity-tracked, "legacy" run-everything,
    "batch" compiled fast-forward); None means
    :func:`~repro.sim.kernel.default_engine` (the ``REPRO_ENGINE``
    override, else "fast").  All engines produce identical state
    trajectories (see ``verify_equivalence``).
    """
    if engine is None:
        engine = default_engine()
    if cfg is None:
        cfg = scheme_config(scheme, width=width, height=height,
                            slot_table_size=slot_table_size)
    sim = Simulator(seed=seed, engine=engine)
    net: Network = build_network(cfg, sim)
    pat = make_pattern(pattern, net.mesh, sim.rng)
    sources = attach_synthetic_sources(net, pat, injection_rate=rate,
                                       rng=sim.rng)
    return sim, net, sources


def run_synthetic(scheme: str, pattern: str, rate: float,
                  warmup: int = 1500, measure: int = 4000,
                  seed: int = 1, width: int = 6, height: int = 6,
                  slot_table_size: int = 128,
                  cfg: Optional[NetworkConfig] = None,
                  energy_params: Optional[EnergyParams] = None,
                  checkpoint_dir: Optional[str] = None,
                  checkpoint_cycles: int = 0,
                  observability=None,
                  with_state_hash: bool = False,
                  engine: Optional[str] = None) -> SynthRun:
    """One (scheme, pattern, rate) simulation with warmup + measurement.

    With ``checkpoint_dir`` set (and ``checkpoint_cycles > 0``), the run
    snapshots its full state every ``checkpoint_cycles`` cycles and, on
    entry, resumes from the latest valid snapshot found there — so a
    crashed or killed run repeats at most one checkpoint interval.

    *observability* is an optional :class:`repro.obs.Observability`
    bundle: it is attached after construction and finalized (files
    written) before the function returns, clean run or livelock alike.
    Attaching never changes results — the recorder draws no RNG and is
    excluded from snapshots.
    """
    # ids are global allocators captured into snapshots and the state
    # hash; start them from zero so the hash of this run is a function
    # of the run alone, not of what the hosting process allocated
    # before it (a forked worker and a fresh interpreter must agree)
    from repro.sim.checkpoint import reset_id_counters
    reset_id_counters()
    if cfg is None:
        cfg = scheme_config(scheme, width=width, height=height,
                            slot_table_size=slot_table_size)
    sim, net, _sources = prepare_synthetic(
        scheme, pattern, rate, seed=seed, width=width, height=height,
        slot_table_size=slot_table_size, cfg=cfg, engine=engine)
    if observability is not None:
        observability.attach(sim, net)

    manager = None
    if checkpoint_dir is not None and checkpoint_cycles > 0:
        from repro.sim.checkpoint import CheckpointManager, capture_state, \
            restore_state
        manager = CheckpointManager(checkpoint_dir, keep=cfg.checkpoint.keep)
        latest = manager.load_latest()
        if latest is not None:
            restore_state(sim, net, latest.tree)

    warm = scaled(warmup)
    total = warm + scaled(measure)
    note = ""
    try:
        while sim.cycle < warm:
            step = (warm - sim.cycle if manager is None
                    else min(checkpoint_cycles, warm - sim.cycle))
            sim.run(step)
            if sim.cycle == warm:
                net.reset_stats()
            if manager is not None:
                # the warm-boundary snapshot is taken *after* reset_stats
                # so a resume never re-runs the reset ambiguity
                manager.save(capture_state(sim, net), sim.cycle)
        while sim.cycle < total:
            step = (total - sim.cycle if manager is None
                    else min(checkpoint_cycles, total - sim.cycle))
            sim.run(step)
            if manager is not None and sim.cycle < total:
                manager.save(capture_state(sim, net), sim.cycle)
    except LivelockError as exc:
        # degrade gracefully: report the point as failed/saturated with
        # whatever was measured up to the stall (mirrors fault_sweep)
        note = f"livelock@{exc.cycle}"

    if observability is not None:
        observability.finalize(sim)
    final_hash = ""
    if with_state_hash:
        from repro.sim.checkpoint import capture_state, state_hash
        final_hash = state_hash(capture_state(sim, net))
    cs = net.cs_flit_fraction() if hasattr(net, "cs_flit_fraction") else 0.0
    wheel = net.clock.active if hasattr(net, "clock") else 0
    return SynthRun(
        scheme=scheme,
        pattern=pattern,
        offered=rate,
        accepted=net.accepted_load(),
        avg_latency=net.pkt_latency.mean,
        p99_latency=net.pkt_latency.percentile(99),
        cs_fraction=cs,
        energy=compute_energy(net, energy_params),
        messages_delivered=net.messages_delivered,
        cycles=net.measured_cycles,
        slot_wheel=wheel,
        note=note,
        state_hash=final_hash,
    )


#: default injection-rate grid for the load-latency curves (Fig. 4)
DEFAULT_RATES: Sequence[float] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30,
                                  0.35, 0.40, 0.45, 0.50, 0.55)


def load_latency_sweep(scheme: str, pattern: str,
                       rates: Sequence[float] = DEFAULT_RATES,
                       **kwargs) -> List[SynthRun]:
    """Latency/throughput across an injection-rate grid.

    A rate point that livelocks yields a failed :class:`SynthRun`
    (``run.failed``) rather than aborting the remaining points.
    """
    return [run_synthetic(scheme, pattern, r, **kwargs) for r in rates]


def saturation_throughput(scheme: str, pattern: str,
                          probe_rates: Sequence[float] = (0.45, 0.55, 0.65),
                          **kwargs) -> float:
    """Maximum accepted load: probe deep in saturation and take the best.

    (The standard methodology: offered load beyond saturation, accepted
    throughput plateaus at network capacity.)  Livelocked probes count
    with whatever they accepted before stalling.
    """
    best = 0.0
    for r in probe_rates:
        run = run_synthetic(scheme, pattern, r, **kwargs)
        best = max(best, run.accepted)
    return best

"""Supervised sweep fabric: leases, checksums, retry, quarantine, resume.

Long sweeps (Fig. 4/5-style grids at ``REPRO_SCALE=4``) must survive
every failure class a farm sees, not just the ones a parent process can
observe.  The supervisor dispatches sweep points through a pluggable
:class:`~repro.harness.executor.Executor` (local subprocesses today,
SSH/container workers later) and owns each running point only through a
**lease**:

* a point that completes writes its result *and a checksum sidecar*
  atomically; the checksums are recorded in the manifest and re-validated
  on resume — corrupt or truncated artifacts are detected and re-run,
  never silently loaded;
* a worker that dies **with** an exit status (crash, timeout) is retried
  with capped exponential backoff, exactly as before;
* a worker that dies **without** an exit status (SIGKILL, OOM, host
  loss) stops heartbeating; when its heartbeat goes stale past
  ``lease_ttl_s`` the lease expires, the worker is killed best-effort
  and the point is reclaimed and re-queued — the run never wedges;
* a point that exhausts ``max_retries`` attempts — regardless of how
  each attempt failed — is **quarantined**: its last stderr and latest
  snapshot are preserved under ``quarantine/``, the failure manifest
  records them, and the sweep degrades gracefully to completion over
  the remaining points;
* a point that **livelocks** is permanent on first occurrence (it is
  deterministic): the partial result is kept, no retry.

``run_supervised_sweep`` skips points whose result file validates
(present, checksum-clean, produced by the same point spec), which makes
``resume_sweep`` (the ``repro resume <run-dir>`` command) safe after
any combination of crashes and corruption.  The chaos harness
(:mod:`repro.harness.chaos`) drives all of this under induced failure
and asserts the result is identical to an undisturbed serial run.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import CheckpointConfig, SupervisorConfig
from repro.harness import store
from repro.harness.executor import (Executor, LocalProcessExecutor,
                                    WorkerStatus, WorkSpec)

#: result-file status values
STATUS_OK = "ok"
STATUS_LIVELOCK = "livelock"

#: on-disk schema of sweep.json / manifest.json; bump on incompatible
#: layout changes (schema 1 = the pre-lease supervisor without checksums)
SWEEP_SCHEMA = 2

#: bytes of stderr preserved inline in a quarantine record
STDERR_TAIL_BYTES = 4096


class SweepConfigError(RuntimeError):
    """A run directory cannot be safely resumed under the given spec."""


class SweepControl:
    """Cooperative control over one in-flight supervised sweep.

    The service layer (:mod:`repro.service`) shares an instance with
    the thread driving :func:`run_supervised_sweep`:

    * :meth:`cancel` — kill every active worker and stop immediately
      (deadline enforcement, explicit job cancellation).  The partial
      results on disk stay checksum-valid and resumable.
    * :meth:`request_yield` — stop launching *new* points; in-flight
      points run to completion and the sweep returns with
      ``stopped="preempted"`` once the last one finalises.  This is QoS
      preemption: a bulk sweep yields its slot to an interactive job
      between points, never mid-point.

    Both are sticky; a control object belongs to one sweep invocation.
    """

    def __init__(self) -> None:
        self._cancel = threading.Event()
        self._yield = threading.Event()

    def cancel(self) -> None:
        self._cancel.set()

    def request_yield(self) -> None:
        self._yield.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def should_yield(self) -> bool:
        return self._yield.is_set()


# ---------------------------------------------------------------------------
# point specs and file layout
# ---------------------------------------------------------------------------
def build_sweep_points(schemes: Sequence[str], pattern: str,
                       rates: Sequence[float], seed: int = 1,
                       width: int = 6, height: int = 6,
                       slot_table_size: int = 128,
                       warmup: int = 1500,
                       measure: int = 4000,
                       trace: bool = False,
                       metrics: bool = False,
                       metrics_interval: int = 100,
                       engine: Optional[str] = None) -> List[Dict]:
    """The (scheme x rate) grid as plain-dict point specs.

    With ``trace``/``metrics`` set, every point's worker writes a
    structured trace (JSONL + Chrome format) and/or a metrics
    time-series dump next to its result file (same ``point-NNNN``
    stem, ``.trace.jsonl`` / ``.trace.chrome.json`` / ``.metrics.json``
    suffixes).  ``engine`` pins every point to one scheduler
    ("legacy"/"fast"/"batch"); None lets the worker use the process
    default."""
    point = {"warmup": warmup, "measure": measure, "seed": seed,
             "width": width, "height": height,
             "slot_table_size": slot_table_size}
    if engine is not None:
        point["engine"] = engine
    if trace:
        point["trace"] = True
    if metrics:
        point["metrics"] = True
        point["metrics_interval"] = metrics_interval
    return [dict(point, scheme=scheme, pattern=pattern, rate=float(rate))
            for scheme in schemes for rate in rates]


def build_hetero_points(schemes: Sequence[str],
                        cpu_benchmarks: Sequence[str],
                        gpu_benchmarks: Sequence[str],
                        seed: int = 1, width: int = 6, height: int = 6,
                        warmup: int = 2000, measure: int = 6000,
                        phased: bool = False, policy: str = "slack",
                        engine: Optional[str] = None) -> List[Dict]:
    """The (scheme x CPU benchmark x GPU benchmark) closed-loop grid.

    A hetero point is recognised by its ``cpu_benchmark`` key (synthetic
    points carry ``pattern``/``rate`` instead); ``phased`` turns on the
    phase-structured workload layer and hotspot skew."""
    point: Dict = {"warmup": warmup, "measure": measure, "seed": seed,
                   "width": width, "height": height, "policy": policy}
    if engine is not None:
        point["engine"] = engine
    if phased:
        point["phased"] = True
    return [dict(point, scheme=scheme, cpu_benchmark=cpu, gpu_benchmark=gpu)
            for scheme in schemes
            for cpu in cpu_benchmarks for gpu in gpu_benchmarks]


def build_replay_points(schemes: Sequence[str], trace_path: str,
                        seed: int = 1, width: int = 6, height: int = 6,
                        warmup: int = 2000, measure: int = 6000,
                        policy: str = "slack",
                        engine: Optional[str] = None) -> List[Dict]:
    """One trace replayed across *schemes* (identical traffic per point).

    A replay point carries ``trace`` as a *string* path — distinct from
    the boolean ``trace`` observability flag of synthetic points."""
    point: Dict = {"warmup": warmup, "measure": measure, "seed": seed,
                   "width": width, "height": height, "policy": policy,
                   "trace": os.path.abspath(trace_path)}
    if engine is not None:
        point["engine"] = engine
    return [dict(point, scheme=scheme) for scheme in schemes]


def _points_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "points")


def _result_path(run_dir: str, index: int) -> str:
    return os.path.join(_points_dir(run_dir), f"point-{index:04d}.json")


def _sidecar_path(run_dir: str, index: int) -> str:
    return _result_path(run_dir, index) + ".sha256"


def _stderr_path(run_dir: str, index: int) -> str:
    return os.path.join(_points_dir(run_dir), f"point-{index:04d}.stderr")


def _ckpt_dir(run_dir: str, index: int) -> str:
    return os.path.join(run_dir, "ckpt", f"point-{index:04d}")


def _lease_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "leases")


def lease_path(run_dir: str, index: int) -> str:
    """Lease record for an in-flight point (pid, attempt, grant time)."""
    return os.path.join(_lease_dir(run_dir), f"point-{index:04d}.lease.json")


def heartbeat_path(run_dir: str, index: int) -> str:
    return os.path.join(_lease_dir(run_dir), f"point-{index:04d}.hb")


def _quarantine_dir(run_dir: str, index: int) -> str:
    return os.path.join(run_dir, "quarantine", f"point-{index:04d}")


def _remove_quiet(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# config hashing (what "the same sweep" means across resumes)
# ---------------------------------------------------------------------------
def point_spec_hash(point: Dict) -> str:
    """Canonical hash of one point's configuration.

    Keys starting with ``_`` (test hooks, chaos injection knobs) are
    excluded: they steer *how* an attempt is disturbed, never what the
    point computes — a chaos run and a clean run of the same grid must
    hash point-for-point equal.
    """
    spec = {k: point[k] for k in sorted(point) if not k.startswith("_")}
    return store.sha256_bytes(store.canonical_json(spec))


def sweep_config_hash(points: Sequence[Dict],
                      ckpt: CheckpointConfig) -> str:
    """Hash of everything that determines a sweep's results on disk."""
    return store.sha256_bytes(store.canonical_json({
        "schema": SWEEP_SCHEMA,
        "points": [point_spec_hash(p) for p in points],
        "checkpoint": dataclasses.asdict(ckpt),
    }))


# ---------------------------------------------------------------------------
# worker (runs in the subprocess; must be module-level for spawn)
# ---------------------------------------------------------------------------
def _run_to_row(run) -> Dict:
    row = {
        "scheme": run.scheme, "pattern": run.pattern,
        "offered": run.offered, "accepted": run.accepted,
        "avg_latency": run.avg_latency, "p99_latency": run.p99_latency,
        "cs_fraction": run.cs_fraction,
        "energy_total": run.energy.total,
        "energy_per_message_pj": run.energy_per_message_pj,
        "messages_delivered": run.messages_delivered,
        "cycles": run.cycles, "slot_wheel": run.slot_wheel,
        "note": run.note,
    }
    if run.state_hash:
        row["state_hash"] = run.state_hash
    return row


def _hetero_row(res) -> Dict:
    """Flatten a :class:`~repro.hetero.system.HeteroResult` to a result
    row (the hetero/replay analogue of :func:`_run_to_row`)."""
    return {
        "scheme": res.scheme,
        "cpu_benchmark": res.cpu_benchmark,
        "gpu_benchmark": res.gpu_benchmark,
        "cycles": res.cycles,
        "cpu_ipc": res.cpu_ipc,
        "gpu_throughput": res.gpu_throughput,
        "gpu_injection_rate": res.gpu_injection_rate,
        "cs_fraction": res.cs_fraction,
        "avg_latency": res.avg_pkt_latency,
        "energy_total": res.energy.total,
        "messages_delivered": res.messages_delivered,
    }


def _run_hetero_point(point: Dict) -> Dict:
    """Execute one closed-loop hetero or trace-replay sweep point."""
    from repro.harness.runner import scaled
    from repro.hetero.system import HeteroSystem, run_hetero_replay
    from repro.sim.checkpoint import reset_id_counters

    reset_id_counters()
    warmup = scaled(point.get("warmup", 2000))
    measure = scaled(point.get("measure", 6000))
    common = dict(seed=point.get("seed", 1),
                  width=point.get("width", 6),
                  height=point.get("height", 6),
                  engine=point.get("engine"),
                  policy=point.get("policy", "slack"))
    if isinstance(point.get("trace"), str):
        res = run_hetero_replay(point["scheme"], point["trace"],
                                warmup=warmup, measure=measure, **common)
        return _hetero_row(res)
    phases = None
    if point.get("phased"):
        from repro.hetero.phases import PhaseConfig
        phases = PhaseConfig()
    system = HeteroSystem(point["scheme"], point["cpu_benchmark"],
                          point["gpu_benchmark"], phases=phases, **common)
    return _hetero_row(system.run(warmup=warmup, measure=measure))


def _is_hetero_point(point: Dict) -> bool:
    return "cpu_benchmark" in point or isinstance(point.get("trace"), str)


def _point_observability(point: Dict, out_path: str):
    """Observability bundle for one sweep point, or None.

    Output files share the result file's ``point-NNNN`` stem so every
    dump sits next to the JSON row it belongs to.  The ``trace`` key is
    overloaded: ``True`` requests an observability trace dump, while a
    *string* names a message-trace file to replay (see
    :func:`build_replay_points`) and must not trigger dumps."""
    obs_trace = point.get("trace") is True
    if not (obs_trace or point.get("metrics")):
        return None
    from repro.obs import Observability
    stem = out_path[:-5] if out_path.endswith(".json") else out_path
    return Observability(
        trace_jsonl=stem + ".trace.jsonl" if obs_trace else None,
        trace_chrome=(stem + ".trace.chrome.json" if obs_trace else None),
        metrics_path=stem + ".metrics.json" if point.get("metrics") else None,
        sample_interval=point.get("metrics_interval", 100))


def run_worker(spec: WorkSpec) -> None:
    """Full worker entry: redirect stderr, heartbeat, chaos hooks, run.

    Executors call this (via :func:`executor._worker_entry`); everything
    here runs inside the worker process.
    """
    if spec.stderr_path:
        os.makedirs(os.path.dirname(os.path.abspath(spec.stderr_path)),
                    exist_ok=True)
        fd = os.open(spec.stderr_path,
                     os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        os.dup2(fd, 2)
        os.close(fd)
        # rebind the Python-level stream too: a forked worker inherits
        # whatever object the parent had in sys.stderr (pytest capture,
        # say), which does not necessarily write through fd 2
        sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
    rate = spec.point.get("_chaos_diskfull")
    if rate:
        store.install_diskfull(
            float(rate),
            int(spec.point.get("_chaos_seed", 0)) ^ os.getpid())

    stop_hb = threading.Event()
    if spec.heartbeat_path:
        os.makedirs(os.path.dirname(os.path.abspath(spec.heartbeat_path)),
                    exist_ok=True)

        def _beat() -> None:
            seq = 0
            while True:
                try:
                    with open(spec.heartbeat_path, "w") as fh:
                        fh.write(f"{os.getpid()} {seq}\n")
                except OSError:
                    pass
                seq += 1
                if stop_hb.wait(spec.heartbeat_interval_s):
                    return

        threading.Thread(target=_beat, daemon=True,
                         name="lease-heartbeat").start()
    _worker_main(spec.point, spec.out_path, spec.ckpt_dir,
                 spec.checkpoint_cycles, stop_hb)


def _worker_main(point: Dict, out_path: str,
                 ckpt_dir: Optional[str],
                 checkpoint_cycles: int,
                 stop_hb: Optional[threading.Event] = None) -> None:
    """Execute one sweep point and write its result + checksum sidecar.

    The ``_test_fail`` key is a test hook: ``"crash"`` raises,
    ``"hang"`` sleeps past any timeout, ``"livelock"`` raises a
    LivelockError exactly as a watchdog would, ``"wedge"`` stops
    heartbeating while staying alive (a stuck-but-running worker), and
    the ``_once`` variants only fire on the first attempt (a marker
    file next to the result records that the hook already fired).
    """
    from repro.harness.runner import run_synthetic
    from repro.sim.kernel import LivelockError

    fail_mode = point.get("_test_fail")
    if fail_mode and fail_mode.endswith("_once"):
        marker = out_path + ".failed-once"
        if os.path.exists(marker):
            fail_mode = None
        else:
            with open(marker, "w") as fh:
                fh.write(fail_mode)
            fail_mode = fail_mode[:-len("_once")]
    if fail_mode == "crash":
        raise RuntimeError("injected crash (test hook)")
    if fail_mode == "hang":
        time.sleep(3600)
    if fail_mode == "wedge":
        if stop_hb is not None:
            stop_hb.set()
        time.sleep(3600)

    # hetero/replay points run the closed-loop system, not run_synthetic,
    # and carry no observability dumps
    obs = (None if _is_hetero_point(point)
           else _point_observability(point, out_path))
    status = STATUS_OK
    try:
        if fail_mode == "livelock":
            raise LivelockError(0, 1, 1, {"injected": True})
        if _is_hetero_point(point):
            row = _run_hetero_point(point)
        else:
            run = run_synthetic(
                point["scheme"], point["pattern"], point["rate"],
                warmup=point.get("warmup", 1500),
                measure=point.get("measure", 4000),
                seed=point.get("seed", 1),
                width=point.get("width", 6), height=point.get("height", 6),
                slot_table_size=point.get("slot_table_size", 128),
                engine=point.get("engine"),
                checkpoint_dir=ckpt_dir,
                checkpoint_cycles=checkpoint_cycles,
                observability=obs, with_state_hash=True)
            row = _run_to_row(run)
            if run.failed:
                status = STATUS_LIVELOCK
    except LivelockError as exc:
        status = STATUS_LIVELOCK
        row = {"scheme": point["scheme"],
               "pattern": point.get("pattern"),
               "offered": point.get("rate"),
               "note": f"livelock@{exc.cycle}"}
    result = {"status": status, "point": point, "row": row}
    obs_paths: List[str] = []
    if obs is not None:
        result["obs"] = {k: v for k, v in (
            ("trace_jsonl", obs.trace_jsonl),
            ("trace_chrome", obs.trace_chrome),
            ("metrics", obs.metrics_path)) if v}
        obs_paths = list(result["obs"].values())

    # result first, checksum sidecar last: a crash in between leaves an
    # unsidecarred result that validation rejects and the supervisor
    # re-runs — never a sidecar vouching for bytes that were not written
    run_dir = os.path.dirname(os.path.dirname(os.path.abspath(out_path)))
    body = store.canonical_json(result)
    result_sha = store.sha256_bytes(body)
    store.write_bytes_atomic(out_path, body)
    artifacts = {
        os.path.relpath(p, run_dir): store.sha256_file(p)
        for p in obs_paths if os.path.exists(p)
    }
    store.write_json_atomic(_checksum_sidecar(out_path),
                            {"result": result_sha, "artifacts": artifacts})


def _checksum_sidecar(out_path: str) -> str:
    return out_path + ".sha256"


# ---------------------------------------------------------------------------
# result validation (the resume/corruption surface)
# ---------------------------------------------------------------------------
def validate_result(run_dir: str, index: int,
                    point: Optional[Dict] = None
                    ) -> Tuple[Optional[Dict], object]:
    """Validate the on-disk result for *index* against its checksums.

    Returns ``(result, sums)`` when the result file parses, matches its
    checksum sidecar, was produced by the same point spec as *point*
    (when given), and every recorded artifact is present with matching
    checksum.  Returns ``(None, reason)`` otherwise — the caller
    decides whether to discard and re-run.
    """
    path = _result_path(run_dir, index)
    data = store.read_json(path)
    if data is None:
        return None, ("missing" if not os.path.exists(path)
                      else "unparseable result")
    sums = store.read_json(_sidecar_path(run_dir, index))
    if not isinstance(sums, dict) or "result" not in sums:
        return None, "missing checksum sidecar"
    if store.sha256_file(path) != sums["result"]:
        return None, "result checksum mismatch"
    if point is not None:
        recorded = data.get("point")
        if not isinstance(recorded, dict) \
                or point_spec_hash(recorded) != point_spec_hash(point):
            return None, "point spec mismatch (configuration changed)"
    for rel, sha in (sums.get("artifacts") or {}).items():
        apath = os.path.join(run_dir, rel)
        if not os.path.exists(apath):
            return None, f"missing artifact {rel}"
        if store.sha256_file(apath) != sha:
            return None, f"artifact checksum mismatch: {rel}"
    return data, sums


def _discard_result(run_dir: str, index: int) -> None:
    """Move a corrupt/stale result aside (kept as ``*.corrupt``) so the
    point re-runs; the evidence survives for post-mortems."""
    for path in (_result_path(run_dir, index), _sidecar_path(run_dir, index)):
        if os.path.exists(path):
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                _remove_quiet(path)


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------
def _backoff_delay(sup: SupervisorConfig, attempt: int) -> float:
    return min(sup.backoff_cap_s,
               sup.backoff_s * (sup.backoff_factor ** attempt))


def _classify(timed_out: bool, expired: bool, result) -> str:
    """Outcome of one attempt, from its validated result (or None)."""
    if result is not None and result.get("status") == STATUS_OK:
        return "ok"
    if result is not None and result.get("status") == STATUS_LIVELOCK:
        return "livelock"
    if expired:
        return "lease_expired"
    return "timeout" if timed_out else "crash"


@dataclasses.dataclass
class _Lease:
    """Scheduler-side ownership record for one in-flight attempt."""

    handle: object
    attempts: int
    deadline: float        #: monotonic attempt-timeout deadline
    hb_path: str
    granted_wall: float    #: wall-clock grant time (heartbeat fallback)

    def heartbeat_age(self, now_wall: float) -> float:
        try:
            last = os.stat(self.hb_path).st_mtime
        except OSError:
            last = self.granted_wall
        # a slow-to-start worker is measured from its grant, never earlier
        return now_wall - max(last, self.granted_wall)


def _stderr_tail(path: str) -> str:
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - STDERR_TAIL_BYTES))
            return fh.read().decode("utf-8", "replace")
    except OSError:
        return ""


def _quarantine_point(run_dir: str, index: int, point: Dict, outcome: str,
                      attempts: int, ckpt_enabled: bool) -> Dict:
    """Preserve a poison point's evidence; returns its failure record."""
    entry: Dict = {"index": index, "point": dict(point),
                   "outcome": outcome, "attempts": attempts}
    qdir = _quarantine_dir(run_dir, index)
    os.makedirs(qdir, exist_ok=True)
    stderr = _stderr_path(run_dir, index)
    if os.path.exists(stderr):
        try:
            shutil.copyfile(stderr, os.path.join(qdir, "stderr.txt"))
            entry["stderr_sha256"] = store.sha256_file(stderr)
        except OSError:
            pass
        tail = _stderr_tail(stderr)
        if tail:
            entry["stderr_tail"] = tail
    if ckpt_enabled:
        cdir = _ckpt_dir(run_dir, index)
        try:
            snaps = sorted(n for n in os.listdir(cdir)
                           if n.startswith("ckpt-") and n.endswith(".rsnap"))
        except OSError:
            snaps = []
        if snaps:
            try:
                shutil.copyfile(os.path.join(cdir, snaps[-1]),
                                os.path.join(qdir, snaps[-1]))
                entry["snapshot"] = os.path.relpath(
                    os.path.join(qdir, snaps[-1]), run_dir)
            except OSError:
                pass
    entry["quarantine_dir"] = os.path.relpath(qdir, run_dir)
    return entry


def _load_existing_manifest(run_dir: str, cfg_hash: str) -> Dict:
    """Validate any pre-existing manifest against the incoming sweep.

    * missing → fresh run, empty records;
    * fails its own integrity hash (truncated, bit-flipped, schema-1
      legacy) → quarantined as ``manifest.json.corrupt`` and rebuilt
      from the per-point files, which carry their own checksums;
    * intact but written for a *different* configuration → hard
      :class:`SweepConfigError` — resuming someone else's run directory
      must fail loudly, not silently re-run or mis-skip points.
    """
    path = os.path.join(run_dir, "manifest.json")
    existing = store.read_json_self_hashed(path, quarantine=True)
    if existing is None:
        return {}
    schema = existing.get("schema")
    if schema != SWEEP_SCHEMA:
        raise SweepConfigError(
            f"{path}: manifest schema {schema!r} is not the supported "
            f"schema {SWEEP_SCHEMA}")
    if existing.get("config_hash") != cfg_hash:
        raise SweepConfigError(
            f"{path}: manifest config hash "
            f"{str(existing.get('config_hash'))[:16]}... does not match "
            f"this sweep's configuration {cfg_hash[:16]}... — refusing to "
            f"resume points under a different configuration")
    points = existing.get("points")
    return dict(points) if isinstance(points, dict) else {}


def run_supervised_sweep(points: Sequence[Dict], run_dir: str,
                         sup: Optional[SupervisorConfig] = None,
                         ckpt: Optional[CheckpointConfig] = None,
                         progress=None,
                         executor: Optional[Executor] = None,
                         control: Optional[SweepControl] = None,
                         job: Optional[str] = None) -> Dict:
    """Run every point under supervision; returns the sweep summary.

    Up to ``sup.jobs`` points run concurrently (0 means one per CPU)
    behind *executor* (default: local subprocesses).  Retry, timeout,
    lease-expiry and backoff semantics are per point and identical to a
    serial run.  Results live in per-index files with checksum
    sidecars; the manifest and summary are ordered by point index
    regardless of completion order.

    Already-completed points whose results *validate* (checksum-clean,
    same point spec) are skipped, so calling this again on the same
    directory resumes a killed sweep; corrupt or stale results are
    moved aside and re-run.  The manifest and the failure manifest are
    rewritten atomically (with embedded integrity hashes) after every
    point finalisation, so they are always consistent on disk.

    *control* (a :class:`SweepControl`) lets another thread cancel the
    sweep or ask it to yield its slot between points; the summary then
    carries ``stopped`` (``"cancelled"``/``"preempted"``) and
    ``remaining`` (points not yet finalised).  *job* tags every worker
    with the owning service job id so :meth:`Executor.kill_job` can
    terminate them as a group.
    """
    sup = sup or SupervisorConfig(enabled=True)
    ckpt = ckpt or CheckpointConfig()
    executor = executor or LocalProcessExecutor()
    os.makedirs(run_dir, exist_ok=True)
    cfg_hash = sweep_config_hash(points, ckpt)
    records: Dict[str, Dict] = _load_existing_manifest(run_dir, cfg_hash)
    store.write_json_self_hashed(os.path.join(run_dir, "sweep.json"), {
        "schema": SWEEP_SCHEMA,
        "config_hash": cfg_hash,
        "points": list(points),
        "supervisor": dataclasses.asdict(sup),
        "checkpoint": dataclasses.asdict(ckpt),
    })
    artifacts = store.ArtifactStore(os.path.join(run_dir, "store"))

    # stale leases from a previous (crashed) supervisor: no worker of
    # ours holds them; orphaned workers, if any, write deterministic
    # bytes atomically and are therefore harmless double-writers
    if os.path.isdir(_lease_dir(run_dir)):
        for name in os.listdir(_lease_dir(run_dir)):
            _remove_quiet(os.path.join(_lease_dir(run_dir), name))

    jobs = sup.jobs if sup.jobs > 0 else (os.cpu_count() or 1)
    failures: List[Dict] = []
    completed = 0
    skipped = 0
    pending: List[int] = []          # fresh points, index order
    for index in range(len(points)):
        data, sums = validate_result(run_dir, index, points[index])
        if data is not None:
            skipped += 1
            completed += 1
            old = records.get(str(index), {})
            records[str(index)] = {
                "status": data["status"],
                "attempts": old.get("attempts", 1),
                "sha256": sums["result"],
                "artifacts": sums.get("artifacts", {}),
            }
            # self-heal the content-addressed copies from validated files
            artifacts.put(_result_path(run_dir, index), sums["result"])
            for rel, sha in (sums.get("artifacts") or {}).items():
                artifacts.put(os.path.join(run_dir, rel), sha)
        else:
            _discard_result(run_dir, index)
            records.pop(str(index), None)
            pending.append(index)
    pending.reverse()                # pop() from the tail = lowest index
    active: Dict[int, _Lease] = {}
    waiting: List[Dict] = []         # backoff queue: {resume, index, attempts}

    def _launch(index: int, attempts: int) -> None:
        hb = heartbeat_path(run_dir, index)
        _remove_quiet(hb)
        spec = WorkSpec(
            index=index, point=dict(points[index]),
            out_path=_result_path(run_dir, index),
            ckpt_dir=_ckpt_dir(run_dir, index) if ckpt.enabled else None,
            checkpoint_cycles=ckpt.interval_cycles if ckpt.enabled else 0,
            heartbeat_path=hb,
            heartbeat_interval_s=sup.heartbeat_interval_s,
            stderr_path=_stderr_path(run_dir, index),
            job=job)
        handle = executor.submit(spec)
        now_wall = time.time()
        store.write_json_atomic(lease_path(run_dir, index), {
            "index": index, "attempt": attempts,
            "pid": executor.pid(handle),
            "executor": executor.name,
            "lease_ttl_s": sup.lease_ttl_s,
            "granted_unix": now_wall,
        })
        active[index] = _Lease(
            handle=handle, attempts=attempts, hb_path=hb,
            deadline=time.monotonic() + sup.timeout_s,
            granted_wall=now_wall)

    def _release_lease(index: int) -> None:
        _remove_quiet(lease_path(run_dir, index))
        _remove_quiet(heartbeat_path(run_dir, index))

    def _write_manifest() -> None:
        store.write_json_self_hashed(os.path.join(run_dir, "manifest.json"), {
            "schema": SWEEP_SCHEMA,
            "config_hash": cfg_hash,
            "total_points": len(points),
            "completed": completed,
            "points": records,
            "failures": sorted(failures, key=lambda f: f["index"]),
        })

    def _write_failure_manifest() -> None:
        # same atomicity + integrity discipline as the main manifest: a
        # crash during finalisation can never leave half-written JSON
        store.write_json_self_hashed(os.path.join(run_dir, "failures.json"), {
            "schema": SWEEP_SCHEMA,
            "config_hash": cfg_hash,
            "failures": sorted(failures, key=lambda f: f["index"]),
        })

    stopped = None
    while pending or waiting or active:
        now = time.monotonic()
        if control is not None and control.cancelled:
            # deadline/cancel enforcement: kill the in-flight workers,
            # release their leases and stop.  On-disk state stays
            # checksum-valid; a later run re-runs the unfinished points.
            for index in sorted(active):
                lease = active[index]
                executor.kill(lease.handle)
                executor.reap(lease.handle)
                _release_lease(index)
            # active stays populated: the killed points are unfinished
            # and must count into the summary's ``remaining``
            stopped = "cancelled"
            break
        yielding = control is not None and control.should_yield
        if not yielding:
            # backoff-expired retries launch before fresh points: a
            # point already attempted should not starve behind the
            # rest of the grid
            waiting.sort(key=lambda w: (w["resume"], w["index"]))
            while waiting and len(active) < jobs \
                    and waiting[0]["resume"] <= now:
                entry = waiting.pop(0)
                _launch(entry["index"], entry["attempts"] + 1)
            while pending and len(active) < jobs:
                _launch(pending.pop(), 1)

        now_wall = time.time()
        for index in sorted(active):
            lease = active[index]
            timed_out = expired = False
            if executor.poll(lease.handle) is not WorkerStatus.EXITED:
                if sup.lease_ttl_s > 0 \
                        and lease.heartbeat_age(now_wall) > sup.lease_ttl_s:
                    expired = True       # dead or wedged without an exit
                elif now >= lease.deadline:
                    timed_out = True
                else:
                    continue
                executor.kill(lease.handle)
            executor.reap(lease.handle)
            _release_lease(index)
            del active[index]
            result, sums = validate_result(run_dir, index, points[index])
            outcome = _classify(timed_out, expired, result)
            attempts = lease.attempts
            if outcome not in ("ok", "livelock"):
                _discard_result(run_dir, index)  # clear corrupt partials
                if attempts <= sup.max_retries:
                    # transient failure: re-queue with capped backoff
                    waiting.append({
                        "resume": now + _backoff_delay(sup, attempts - 1),
                        "index": index, "attempts": attempts})
                    continue
            if progress is not None:
                progress(index, points[index], outcome, attempts)
            if outcome in ("ok", "livelock"):
                completed += 1
                records[str(index)] = {
                    "status": result["status"], "attempts": attempts,
                    "sha256": sums["result"],
                    "artifacts": sums.get("artifacts", {}),
                }
                artifacts.put(_result_path(run_dir, index), sums["result"])
                for rel, sha in (sums.get("artifacts") or {}).items():
                    artifacts.put(os.path.join(run_dir, rel), sha)
            if outcome != "ok":
                if outcome == "livelock":
                    failures.append({
                        "index": index, "point": dict(points[index]),
                        "outcome": outcome, "attempts": attempts})
                else:
                    # poison point: retries exhausted across any mix of
                    # failure classes — quarantine and keep going
                    failures.append(_quarantine_point(
                        run_dir, index, points[index], outcome, attempts,
                        ckpt.enabled))
                    records[str(index)] = {"status": "quarantined",
                                           "attempts": attempts,
                                           "outcome": outcome}
                _write_failure_manifest()
            _write_manifest()

        if yielding and not active and (pending or waiting):
            # slot handed back between points; unfinished work stays
            # queued on disk for the next scheduling of this sweep
            stopped = "preempted"
            break

        if active:
            # wake on a worker exit, the next deadline/retry, or (capped
            # at 1 s) the next heartbeat-staleness check
            horizon = min(lease.deadline for lease in active.values())
            if waiting:
                horizon = min(horizon, min(w["resume"] for w in waiting))
            timeout = max(0.0, min(horizon - time.monotonic(), 1.0))
            executor.wait_any([lease.handle for lease in active.values()],
                              timeout)
        elif waiting:
            resume = min(w["resume"] for w in waiting)
            delay = resume - time.monotonic()
            if control is not None:
                # stay responsive to cancel/yield while backing off
                delay = min(delay, 0.1)
            if delay > 0:
                time.sleep(delay)

    # final manifests even when every point was skipped
    _write_manifest()
    if failures:
        _write_failure_manifest()
    failures.sort(key=lambda f: f["index"])
    return {"total": len(points), "completed": completed,
            "skipped": skipped, "failures": failures,
            "stopped": stopped,
            "remaining": len(pending) + len(waiting) + len(active),
            "results": load_results(run_dir)}


def resume_sweep(run_dir: str, jobs: Optional[int] = None,
                 executor: Optional[Executor] = None) -> Dict:
    """Pick up a killed supervised sweep where it left off.

    The recorded spec is validated before any point runs: ``sweep.json``
    must pass its own integrity hash, carry a supported schema version,
    and its stored config hash must match a recomputation from its
    contents — otherwise a :class:`SweepConfigError` explains exactly
    what diverged instead of silently resuming points under a different
    configuration.  *jobs*, when given, overrides the concurrency
    recorded in ``sweep.json`` (the machine resuming the sweep may not
    be the one that started it).
    """
    path = os.path.join(run_dir, "sweep.json")
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{run_dir}: no sweep.json — not a supervised-sweep directory")
    try:
        spec = store.read_json_self_hashed(path)
    except store.StoreCorruptError as exc:
        raise SweepConfigError(
            f"{path}: failed integrity validation ({exc}); the file is "
            f"corrupt, hand-edited, or predates sweep schema "
            f"{SWEEP_SCHEMA} — re-launch the sweep instead of resuming"
        ) from exc
    schema = spec.get("schema")
    if schema != SWEEP_SCHEMA:
        raise SweepConfigError(
            f"{path}: sweep schema {schema!r} is not the supported "
            f"schema {SWEEP_SCHEMA}")
    sup = SupervisorConfig(**spec["supervisor"])
    ckpt = CheckpointConfig(**spec["checkpoint"])
    recomputed = sweep_config_hash(spec["points"], ckpt)
    if spec.get("config_hash") != recomputed:
        raise SweepConfigError(
            f"{path}: stored config hash "
            f"{str(spec.get('config_hash'))[:16]}... does not match its "
            f"own contents ({recomputed[:16]}...) — the sweep spec was "
            f"modified; use amend_sweep_points() for deliberate changes")
    if jobs is not None:
        sup = dataclasses.replace(sup, jobs=jobs)
    return run_supervised_sweep(spec["points"], run_dir, sup, ckpt,
                                executor=executor)


def amend_sweep_points(run_dir: str, points: Sequence[Dict]) -> None:
    """Deliberately replace the recorded point grid of a run directory.

    This is the sanctioned way to grow/correct a sweep spec (hashes are
    recomputed); editing ``sweep.json`` by hand trips the integrity
    validation in :func:`resume_sweep` by design.  Existing results
    whose point specs no longer match are re-run on the next resume.
    """
    path = os.path.join(run_dir, "sweep.json")
    spec = store.read_json_self_hashed(path)
    if spec is None:
        raise FileNotFoundError(
            f"{run_dir}: no sweep.json — not a supervised-sweep directory")
    ckpt = CheckpointConfig(**spec["checkpoint"])
    spec["points"] = list(points)
    spec["config_hash"] = sweep_config_hash(points, ckpt)
    store.write_json_self_hashed(path, spec)
    # the manifest's hash must follow, or the next run would refuse it
    mpath = os.path.join(run_dir, "manifest.json")
    try:
        manifest = store.read_json_self_hashed(mpath)
    except store.StoreCorruptError:
        manifest = None
    if manifest is not None:
        manifest["config_hash"] = spec["config_hash"]
        manifest["total_points"] = len(points)
        store.write_json_self_hashed(mpath, manifest)


def load_results(run_dir: str) -> List[Dict]:
    """All point results present in *run_dir*, in point order."""
    out: List[Dict] = []
    pdir = _points_dir(run_dir)
    if not os.path.isdir(pdir):
        return out
    for name in sorted(os.listdir(pdir)):
        # exactly point-NNNN.json — metric/trace dumps share the stem
        # (point-NNNN.metrics.json etc.) and are not result rows
        if (name.startswith("point-") and name.endswith(".json")
                and name[len("point-"):-len(".json")].isdigit()):
            data = store.read_json(os.path.join(pdir, name))
            if data is not None:
                out.append(data)
    return out

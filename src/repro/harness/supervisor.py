"""Supervised sweep execution: isolate, time-limit, retry, resume.

Long sweeps (Fig. 4/5-style grids at ``REPRO_SCALE=4``) die today if a
single point crashes, OOMs or trips the livelock watchdog.  The
supervisor runs every sweep point in its own subprocess with a
wall-clock timeout, dispatching up to ``SupervisorConfig.jobs`` points
concurrently (default: one per CPU):

* a point that completes writes its result as an atomic JSON file;
* a point that **livelocks** is permanent: the partial result is kept,
  the point is recorded in the failure manifest, no retry;
* a point that **crashes or times out** is transient: it is retried
  with capped exponential backoff up to ``max_retries`` times, then
  recorded in the manifest — and the sweep always continues;
* long points may checkpoint periodically (``checkpoint_cycles``), so a
  crash retry resumes mid-run instead of starting over.

``run_supervised_sweep`` skips points whose result file already exists,
which makes ``resume_sweep`` (the ``repro resume <run-dir>`` command)
a one-liner: re-launch the sweep recorded in ``sweep.json``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import multiprocessing.connection
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.config import CheckpointConfig, SupervisorConfig

#: result-file status values
STATUS_OK = "ok"
STATUS_LIVELOCK = "livelock"


# ---------------------------------------------------------------------------
# point specs and file layout
# ---------------------------------------------------------------------------
def build_sweep_points(schemes: Sequence[str], pattern: str,
                       rates: Sequence[float], seed: int = 1,
                       width: int = 6, height: int = 6,
                       slot_table_size: int = 128,
                       warmup: int = 1500,
                       measure: int = 4000,
                       trace: bool = False,
                       metrics: bool = False,
                       metrics_interval: int = 100) -> List[Dict]:
    """The (scheme x rate) grid as plain-dict point specs.

    With ``trace``/``metrics`` set, every point's worker writes a
    structured trace (JSONL + Chrome format) and/or a metrics
    time-series dump next to its result file (same ``point-NNNN``
    stem, ``.trace.jsonl`` / ``.trace.chrome.json`` / ``.metrics.json``
    suffixes)."""
    point = {"warmup": warmup, "measure": measure, "seed": seed,
             "width": width, "height": height,
             "slot_table_size": slot_table_size}
    if trace:
        point["trace"] = True
    if metrics:
        point["metrics"] = True
        point["metrics_interval"] = metrics_interval
    return [dict(point, scheme=scheme, pattern=pattern, rate=float(rate))
            for scheme in schemes for rate in rates]


def _points_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "points")


def _result_path(run_dir: str, index: int) -> str:
    return os.path.join(_points_dir(run_dir), f"point-{index:04d}.json")


def _ckpt_dir(run_dir: str, index: int) -> str:
    return os.path.join(run_dir, "ckpt", f"point-{index:04d}")


def _write_json(path: str, obj) -> None:
    """Atomic JSON write (tmp + rename), same discipline as snapshots."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _read_json(path: str):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


# ---------------------------------------------------------------------------
# worker (runs in the subprocess; must be module-level for spawn)
# ---------------------------------------------------------------------------
def _run_to_row(run) -> Dict:
    return {
        "scheme": run.scheme, "pattern": run.pattern,
        "offered": run.offered, "accepted": run.accepted,
        "avg_latency": run.avg_latency, "p99_latency": run.p99_latency,
        "cs_fraction": run.cs_fraction,
        "energy_total": run.energy.total,
        "energy_per_message_pj": run.energy_per_message_pj,
        "messages_delivered": run.messages_delivered,
        "cycles": run.cycles, "slot_wheel": run.slot_wheel,
        "note": run.note,
    }


def _point_observability(point: Dict, out_path: str):
    """Observability bundle for one sweep point, or None.

    Output files share the result file's ``point-NNNN`` stem so every
    dump sits next to the JSON row it belongs to."""
    if not (point.get("trace") or point.get("metrics")):
        return None
    from repro.obs import Observability
    stem = out_path[:-5] if out_path.endswith(".json") else out_path
    return Observability(
        trace_jsonl=stem + ".trace.jsonl" if point.get("trace") else None,
        trace_chrome=(stem + ".trace.chrome.json"
                      if point.get("trace") else None),
        metrics_path=stem + ".metrics.json" if point.get("metrics") else None,
        sample_interval=point.get("metrics_interval", 100))


def _worker_main(point: Dict, out_path: str,
                 ckpt_dir: Optional[str],
                 checkpoint_cycles: int) -> None:
    """Execute one sweep point and write its result file.

    The ``_test_fail`` key is a test hook: ``"crash"`` raises,
    ``"hang"`` sleeps past any timeout, ``"livelock"`` raises a
    LivelockError exactly as a watchdog would.
    """
    from repro.harness.runner import run_synthetic
    from repro.sim.kernel import LivelockError

    fail_mode = point.get("_test_fail")
    if fail_mode == "crash":
        raise RuntimeError("injected crash (test hook)")
    if fail_mode == "hang":
        time.sleep(3600)

    obs = _point_observability(point, out_path)
    status = STATUS_OK
    try:
        if fail_mode == "livelock":
            raise LivelockError(0, 1, 1, {"injected": True})
        run = run_synthetic(
            point["scheme"], point["pattern"], point["rate"],
            warmup=point.get("warmup", 1500),
            measure=point.get("measure", 4000),
            seed=point.get("seed", 1),
            width=point.get("width", 6), height=point.get("height", 6),
            slot_table_size=point.get("slot_table_size", 128),
            checkpoint_dir=ckpt_dir, checkpoint_cycles=checkpoint_cycles,
            observability=obs)
        row = _run_to_row(run)
        if run.failed:
            status = STATUS_LIVELOCK
    except LivelockError as exc:
        status = STATUS_LIVELOCK
        row = {"scheme": point["scheme"], "pattern": point["pattern"],
               "offered": point["rate"], "note": f"livelock@{exc.cycle}"}
    result = {"status": status, "point": point, "row": row}
    if obs is not None:
        result["obs"] = {k: v for k, v in (
            ("trace_jsonl", obs.trace_jsonl),
            ("trace_chrome", obs.trace_chrome),
            ("metrics", obs.metrics_path)) if v}
    _write_json(out_path, result)


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------
def _backoff_delay(sup: SupervisorConfig, attempt: int) -> float:
    return min(sup.backoff_cap_s,
               sup.backoff_s * (sup.backoff_factor ** attempt))


def _classify(timed_out: bool, result) -> str:
    """Outcome of one subprocess attempt."""
    if result is not None and result.get("status") == STATUS_OK:
        return "ok"
    if result is not None and result.get("status") == STATUS_LIVELOCK:
        return "livelock"
    return "timeout" if timed_out else "crash"


def run_supervised_sweep(points: Sequence[Dict], run_dir: str,
                         sup: Optional[SupervisorConfig] = None,
                         ckpt: Optional[CheckpointConfig] = None,
                         progress=None) -> Dict:
    """Run every point under supervision; returns the sweep summary.

    Up to ``sup.jobs`` points run concurrently (0 means one per CPU);
    retry, timeout and backoff semantics are per point and identical to
    a serial run — a point waiting out its retry backoff does not hold
    up any other point.  Results live in per-index files, so the sweep
    summary and the manifest are ordered by point index regardless of
    the order in which workers finish.

    Already-completed points (valid result file present in *run_dir*)
    are skipped, so calling this again on the same directory resumes a
    killed sweep — including one killed mid-way through a parallel run.
    The failure manifest (``manifest.json``) is rewritten atomically
    after every point finalisation, so it is always consistent on disk.
    """
    sup = sup or SupervisorConfig(enabled=True)
    ckpt = ckpt or CheckpointConfig()
    os.makedirs(run_dir, exist_ok=True)
    _write_json(os.path.join(run_dir, "sweep.json"), {
        "points": list(points),
        "supervisor": dataclasses.asdict(sup),
        "checkpoint": dataclasses.asdict(ckpt),
    })

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    jobs = sup.jobs if sup.jobs > 0 else (os.cpu_count() or 1)

    failures: List[Dict] = []
    completed = 0
    skipped = 0
    pending: List[int] = []          # fresh points, index order
    for index in range(len(points)):
        if _read_json(_result_path(run_dir, index)) is not None:
            skipped += 1
            completed += 1
        else:
            pending.append(index)
    pending.reverse()                # pop() from the tail = lowest index
    active: Dict[int, Dict] = {}     # index -> {proc, deadline, attempts}
    waiting: List[Dict] = []         # backoff queue: {resume, index, attempts}

    def _launch(index: int, attempts: int) -> None:
        proc = ctx.Process(
            target=_worker_main,
            args=(dict(points[index]), _result_path(run_dir, index),
                  _ckpt_dir(run_dir, index) if ckpt.enabled else None,
                  ckpt.interval_cycles if ckpt.enabled else 0))
        proc.start()
        active[index] = {"proc": proc, "attempts": attempts,
                         "deadline": time.monotonic() + sup.timeout_s}

    def _write_manifest() -> None:
        _write_json(os.path.join(run_dir, "manifest.json"), {
            "total_points": len(points),
            "completed": completed,
            "failures": sorted(failures, key=lambda f: f["index"]),
        })

    while pending or waiting or active:
        now = time.monotonic()
        # backoff-expired retries launch before fresh points: a point
        # already attempted should not starve behind the rest of the grid
        waiting.sort(key=lambda w: (w["resume"], w["index"]))
        while waiting and len(active) < jobs and waiting[0]["resume"] <= now:
            entry = waiting.pop(0)
            _launch(entry["index"], entry["attempts"] + 1)
        while pending and len(active) < jobs:
            _launch(pending.pop(), 1)

        for index in sorted(active):
            entry = active[index]
            proc = entry["proc"]
            timed_out = False
            if proc.is_alive():
                if now < entry["deadline"]:
                    continue
                timed_out = True
                proc.terminate()
                proc.join(5.0)
                if proc.is_alive():  # pragma: no cover - stuck in syscall
                    proc.kill()
                    proc.join()
            else:
                proc.join()
            del active[index]
            result = _read_json(_result_path(run_dir, index))
            outcome = _classify(timed_out, result)
            attempts = entry["attempts"]
            if outcome not in ("ok", "livelock") and attempts <= sup.max_retries:
                # transient failure: re-queue with capped backoff
                waiting.append({
                    "resume": now + _backoff_delay(sup, attempts - 1),
                    "index": index, "attempts": attempts})
                continue
            if progress is not None:
                progress(index, points[index], outcome, attempts)
            if outcome == "ok":
                completed += 1
            else:
                failures.append({
                    "index": index, "point": dict(points[index]),
                    "outcome": outcome, "attempts": attempts,
                })
                if outcome == "livelock":
                    completed += 1   # partial result on disk; continue
            _write_manifest()

        if active:
            # wake on the first worker exit, next deadline or next retry
            horizon = min(e["deadline"] for e in active.values())
            if waiting:
                horizon = min(horizon, min(w["resume"] for w in waiting))
            timeout = max(0.0, min(horizon - time.monotonic(), 1.0))
            multiprocessing.connection.wait(
                [e["proc"].sentinel for e in active.values()], timeout)
        elif waiting:
            resume = min(w["resume"] for w in waiting)
            delay = resume - time.monotonic()
            if delay > 0:
                time.sleep(delay)

    # final manifest even when every point was skipped
    _write_manifest()
    failures.sort(key=lambda f: f["index"])
    return {"total": len(points), "completed": completed,
            "skipped": skipped, "failures": failures,
            "results": load_results(run_dir)}


def resume_sweep(run_dir: str, jobs: Optional[int] = None) -> Dict:
    """Pick up a killed supervised sweep where it left off.

    *jobs*, when given, overrides the concurrency recorded in
    ``sweep.json`` (the machine resuming the sweep may not be the one
    that started it)."""
    spec = _read_json(os.path.join(run_dir, "sweep.json"))
    if spec is None:
        raise FileNotFoundError(
            f"{run_dir}: no sweep.json — not a supervised-sweep directory")
    sup = SupervisorConfig(**spec["supervisor"])
    if jobs is not None:
        sup = dataclasses.replace(sup, jobs=jobs)
    ckpt = CheckpointConfig(**spec["checkpoint"])
    return run_supervised_sweep(spec["points"], run_dir, sup, ckpt)


def load_results(run_dir: str) -> List[Dict]:
    """All point results present in *run_dir*, in point order."""
    out: List[Dict] = []
    pdir = _points_dir(run_dir)
    if not os.path.isdir(pdir):
        return out
    for name in sorted(os.listdir(pdir)):
        # exactly point-NNNN.json — metric/trace dumps share the stem
        # (point-NNNN.metrics.json etc.) and are not result rows
        if (name.startswith("point-") and name.endswith(".json")
                and name[len("point-"):-len(".json")].isdigit()):
            data = _read_json(os.path.join(pdir, name))
            if data is not None:
                out.append(data)
    return out

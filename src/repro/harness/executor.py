"""Pluggable worker executors for the sweep fabric.

The supervisor (:mod:`repro.harness.supervisor`) never touches process
objects directly: it submits :class:`WorkSpec` descriptions to an
:class:`Executor` and from then on owns only a *lease* on the point —
liveness is judged by heartbeat files the worker writes, not by the
executor's ability to observe an exit.  That split is what makes the
scheduler executor-agnostic: a local subprocess pool today, SSH or
container workers later, with identical retry/lease/reclaim semantics.

An executor reports each handle as ``RUNNING``, ``EXITED`` or ``LOST``.
``LOST`` models transports that can stop knowing (an SSH connection
drop, a vanished container host): the supervisor treats it exactly
like ``RUNNING`` and relies on lease expiry to reclaim the point — a
worker that dies without an observable exit status wedges nothing.
"""

from __future__ import annotations

import enum
import multiprocessing
import multiprocessing.connection
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class WorkerStatus(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    #: the executor can no longer observe the worker (transport loss);
    #: only lease expiry can reclaim the point
    LOST = "lost"


@dataclass
class WorkSpec:
    """Everything an executor needs to run one sweep-point attempt."""

    index: int
    point: Dict
    out_path: str                    #: result JSON destination
    ckpt_dir: Optional[str]          #: per-point snapshot dir (or None)
    checkpoint_cycles: int
    heartbeat_path: Optional[str] = None
    heartbeat_interval_s: float = 1.0
    stderr_path: Optional[str] = None
    #: owning job id (service layer); lets :meth:`Executor.kill_job`
    #: terminate every worker of one job without touching the others
    job: Optional[str] = None
    extra: Dict = field(default_factory=dict)


class Executor:
    """Abstract worker transport.

    Handles returned by :meth:`submit` are opaque to the supervisor;
    every other method takes them back.  Implementations must make
    :meth:`kill` and :meth:`reap` idempotent and safe on workers that
    already exited — reclaim paths call them unconditionally.
    """

    name = "abstract"

    def submit(self, spec: WorkSpec):
        raise NotImplementedError

    def poll(self, handle) -> WorkerStatus:
        raise NotImplementedError

    def kill(self, handle) -> None:
        raise NotImplementedError

    def reap(self, handle) -> None:
        """Release transport resources for a finished/killed handle."""

    def kill_job(self, job: str) -> int:
        """Best-effort kill of every live worker tagged with *job*.

        Returns the number of workers signalled.  The service layer
        uses this for deadline/cancel enforcement: the supervisor loop
        then observes the exits and (with its
        :class:`~repro.harness.supervisor.SweepControl` cancelled)
        finalises instead of retrying.  Transports that do not track
        jobs may return 0 — lease expiry still reclaims the points.
        """
        return 0

    def pid(self, handle) -> Optional[int]:
        """Worker OS pid when known (used by lease files and chaos)."""
        return None

    def wait_any(self, handles: Sequence, timeout: float) -> None:
        """Block until some worker may have changed state.

        The default is a bounded sleep — correct for any transport,
        since the supervisor re-polls and checks heartbeats afterwards.
        """
        time.sleep(max(0.0, min(timeout, 0.05)))


def _worker_entry(spec: WorkSpec) -> None:
    """Subprocess entry point (module-level so spawn can import it)."""
    from repro.harness.supervisor import run_worker
    run_worker(spec)


class LocalProcessExecutor(Executor):
    """One local subprocess per attempt (fork where available).

    This is PR 5's worker model behind the new interface: exits are
    observable through process sentinels, so ``wait_any`` blocks on
    them instead of polling.
    """

    name = "local-process"

    def __init__(self, context: Optional[str] = None) -> None:
        if context is None:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                self._ctx = multiprocessing.get_context("spawn")
        else:
            self._ctx = multiprocessing.get_context(context)
        # job tag -> live handles; submit/reap may race with a service
        # thread calling kill_job, hence the lock
        self._jobs: Dict[str, List] = {}
        self._jobs_lock = threading.Lock()

    def submit(self, spec: WorkSpec):
        proc = self._ctx.Process(target=_worker_entry, args=(spec,))
        proc.start()
        if spec.job is not None:
            with self._jobs_lock:
                self._jobs.setdefault(spec.job, []).append(proc)
        return proc

    def poll(self, handle) -> WorkerStatus:
        try:
            alive = handle.is_alive()
        except ValueError:               # handle already reaped (closed)
            alive = False
        return WorkerStatus.RUNNING if alive else WorkerStatus.EXITED

    def kill(self, handle) -> None:
        try:
            if not handle.is_alive():
                return
            handle.terminate()
            handle.join(5.0)
            if handle.is_alive():  # pragma: no cover - stuck in syscall
                handle.kill()
        except ValueError:               # already reaped: nothing to kill
            pass

    def reap(self, handle) -> None:
        with self._jobs_lock:
            for handles in self._jobs.values():
                if handle in handles:
                    handles.remove(handle)
        try:
            handle.join()
            handle.close()
        except ValueError:               # second reap: already closed
            pass

    def kill_job(self, job: str) -> int:
        with self._jobs_lock:
            handles = list(self._jobs.get(job, []))
        killed = 0
        for handle in handles:
            try:
                if handle.is_alive():
                    handle.kill()        # SIGKILL: deadline/cancel paths
                    killed += 1
            except ValueError:
                pass
        return killed

    def pid(self, handle) -> Optional[int]:
        try:
            return handle.pid
        except ValueError:  # pragma: no cover - reaped handle
            return None

    def wait_any(self, handles: Sequence, timeout: float) -> None:
        sentinels = []
        for handle in handles:
            try:
                sentinels.append(handle.sentinel)
            except ValueError:  # pragma: no cover - already closed
                pass
        if sentinels:
            multiprocessing.connection.wait(sentinels,
                                            max(0.0, timeout))
        elif timeout > 0:  # pragma: no cover - no active handles
            time.sleep(min(timeout, 0.05))

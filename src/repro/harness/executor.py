"""Pluggable worker executors for the sweep fabric.

The supervisor (:mod:`repro.harness.supervisor`) never touches process
objects directly: it submits :class:`WorkSpec` descriptions to an
:class:`Executor` and from then on owns only a *lease* on the point —
liveness is judged by heartbeat files the worker writes, not by the
executor's ability to observe an exit.  That split is what makes the
scheduler executor-agnostic: a local subprocess pool today, SSH or
container workers later, with identical retry/lease/reclaim semantics.

An executor reports each handle as ``RUNNING``, ``EXITED`` or ``LOST``.
``LOST`` models transports that can stop knowing (an SSH connection
drop, a vanished container host): the supervisor treats it exactly
like ``RUNNING`` and relies on lease expiry to reclaim the point — a
worker that dies without an observable exit status wedges nothing.
"""

from __future__ import annotations

import enum
import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


class WorkerStatus(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    #: the executor can no longer observe the worker (transport loss);
    #: only lease expiry can reclaim the point
    LOST = "lost"


@dataclass
class WorkSpec:
    """Everything an executor needs to run one sweep-point attempt."""

    index: int
    point: Dict
    out_path: str                    #: result JSON destination
    ckpt_dir: Optional[str]          #: per-point snapshot dir (or None)
    checkpoint_cycles: int
    heartbeat_path: Optional[str] = None
    heartbeat_interval_s: float = 1.0
    stderr_path: Optional[str] = None
    extra: Dict = field(default_factory=dict)


class Executor:
    """Abstract worker transport.

    Handles returned by :meth:`submit` are opaque to the supervisor;
    every other method takes them back.  Implementations must make
    :meth:`kill` and :meth:`reap` idempotent and safe on workers that
    already exited — reclaim paths call them unconditionally.
    """

    name = "abstract"

    def submit(self, spec: WorkSpec):
        raise NotImplementedError

    def poll(self, handle) -> WorkerStatus:
        raise NotImplementedError

    def kill(self, handle) -> None:
        raise NotImplementedError

    def reap(self, handle) -> None:
        """Release transport resources for a finished/killed handle."""

    def pid(self, handle) -> Optional[int]:
        """Worker OS pid when known (used by lease files and chaos)."""
        return None

    def wait_any(self, handles: Sequence, timeout: float) -> None:
        """Block until some worker may have changed state.

        The default is a bounded sleep — correct for any transport,
        since the supervisor re-polls and checks heartbeats afterwards.
        """
        time.sleep(max(0.0, min(timeout, 0.05)))


def _worker_entry(spec: WorkSpec) -> None:
    """Subprocess entry point (module-level so spawn can import it)."""
    from repro.harness.supervisor import run_worker
    run_worker(spec)


class LocalProcessExecutor(Executor):
    """One local subprocess per attempt (fork where available).

    This is PR 5's worker model behind the new interface: exits are
    observable through process sentinels, so ``wait_any`` blocks on
    them instead of polling.
    """

    name = "local-process"

    def __init__(self, context: Optional[str] = None) -> None:
        if context is None:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                self._ctx = multiprocessing.get_context("spawn")
        else:
            self._ctx = multiprocessing.get_context(context)

    def submit(self, spec: WorkSpec):
        proc = self._ctx.Process(target=_worker_entry, args=(spec,))
        proc.start()
        return proc

    def poll(self, handle) -> WorkerStatus:
        return WorkerStatus.RUNNING if handle.is_alive() \
            else WorkerStatus.EXITED

    def kill(self, handle) -> None:
        if handle.is_alive():
            handle.terminate()
            handle.join(5.0)
            if handle.is_alive():  # pragma: no cover - stuck in syscall
                handle.kill()

    def reap(self, handle) -> None:
        handle.join()
        handle.close()

    def pid(self, handle) -> Optional[int]:
        return handle.pid

    def wait_any(self, handles: Sequence, timeout: float) -> None:
        sentinels = []
        for handle in handles:
            try:
                sentinels.append(handle.sentinel)
            except ValueError:  # pragma: no cover - already closed
                pass
        if sentinels:
            multiprocessing.connection.wait(sentinels,
                                            max(0.0, timeout))
        elif timeout > 0:  # pragma: no cover - no active handles
            time.sleep(min(timeout, 0.05))
